//! Workspace facade crate.
//!
//! Exists so the repository-level integration tests in `tests/` and the examples in
//! `examples/` have a package to hang off; it simply re-exports the `soteria`
//! top-level crate.

pub use soteria::*;
