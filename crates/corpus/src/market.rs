//! The market dataset: 35 official apps (O1–O35) and 30 community-contributed
//! third-party apps (TP1–TP30), plus the interacting app groups G.1–G.3 (Sec. 6,
//! Tables 2–4).
//!
//! The original market sources are not redistributable, so the corpus is a synthetic
//! re-creation: the apps named in Tables 3 and 4 are hand-authored to exhibit exactly
//! the violations the paper reports, and the remaining apps are generated from benign
//! templates covering the same device and functionality spectrum (security and safety,
//! green living, convenience, home automation, personal care).

use crate::generator::benign_templates;
use crate::{CorpusApp, GroundTruth};

/// A group of apps installed together (Table 4).
#[derive(Debug, Clone)]
pub struct MarketGroup {
    /// Group identifier (G.1–G.3).
    pub id: &'static str,
    /// Member app identifiers.
    pub members: Vec<&'static str>,
    /// Properties the paper reports as violated by the group.
    pub expected: Vec<&'static str>,
}

/// The 35 official (vetted) apps. None of them violates a property individually.
pub fn official_apps() -> Vec<CorpusApp> {
    let mut apps: Vec<CorpusApp> = Vec::new();
    let special: &[(&str, &str)] = &[
        ("O3", O3),
        ("O4", O4),
        ("O7", O7),
        ("O8", O8),
        ("O9", O9),
        ("O12", O12),
        ("O14", O14),
        ("O16", O16),
        ("O30", O30),
        ("O31", O31),
    ];
    let templates = benign_templates();
    for i in 1..=35u32 {
        let id = format!("O{i}");
        if let Some((_, src)) = special.iter().find(|(sid, _)| *sid == id) {
            apps.push(CorpusApp {
                id,
                source: src.to_string(),
                ground_truth: GroundTruth::clean(),
            });
        } else {
            let template = &templates[(i as usize) % templates.len()];
            apps.push(CorpusApp {
                id: id.clone(),
                source: template.instantiate(&id, i),
                ground_truth: GroundTruth::clean(),
            });
        }
    }
    apps
}

/// The 30 community-contributed third-party apps. TP1–TP9 carry the individual
/// violations of Table 3; TP12, TP19, TP21 and TP22 participate in the groups of
/// Table 4; the rest are benign.
pub fn third_party_apps() -> Vec<CorpusApp> {
    let mut apps: Vec<CorpusApp> = Vec::new();
    let special: &[(&str, &str, GroundTruth)] = &[
        ("TP1", TP1, GroundTruth::violations(&["P.13"])),
        ("TP2", TP2, GroundTruth::violations(&["P.12"])),
        ("TP3", TP3, GroundTruth::violations(&["S.4"])),
        ("TP4", TP4, GroundTruth::violations(&["P.29"])),
        ("TP5", TP5, GroundTruth::violations(&["P.28"])),
        ("TP6", TP6, GroundTruth::violations(&["P.12", "S.1"])),
        ("TP7", TP7, GroundTruth::violations(&["S.1"])),
        ("TP8", TP8, GroundTruth::violations(&["P.1"])),
        ("TP9", TP9, GroundTruth::violations(&["S.2"])),
        ("TP12", TP12, GroundTruth::clean()),
        ("TP19", TP19, GroundTruth::clean()),
        ("TP21", TP21, GroundTruth::clean()),
        ("TP22", TP22, GroundTruth::clean()),
    ];
    let templates = benign_templates();
    for i in 1..=30u32 {
        let id = format!("TP{i}");
        if let Some((_, src, truth)) = special.iter().find(|(sid, _, _)| *sid == id) {
            apps.push(CorpusApp { id, source: src.to_string(), ground_truth: truth.clone() });
        } else {
            let template = &templates[(i as usize + 3) % templates.len()];
            apps.push(CorpusApp {
                id: id.clone(),
                source: template.instantiate(&id, i + 100),
                ground_truth: GroundTruth::clean(),
            });
        }
    }
    apps
}

/// The interacting app groups of Table 4 and the properties they violate.
pub fn market_groups() -> Vec<MarketGroup> {
    vec![
        MarketGroup {
            id: "G.1",
            members: vec!["O3", "O4", "O8", "TP12"],
            expected: vec!["S.1", "S.2", "S.3"],
        },
        MarketGroup {
            id: "G.2",
            members: vec!["O14", "O9", "O16", "TP3", "TP2"],
            expected: vec!["S.2", "S.4"],
        },
        MarketGroup {
            id: "G.3",
            members: vec!["O7", "TP3", "O30", "TP21", "O31", "TP22", "O12", "TP19"],
            expected: vec!["P.12", "P.13", "P.14", "P.17", "S.1", "S.2"],
        },
    ]
}

// --------------------------------------------------------------------------- official

/// O3: turns the hallway switch on when the entrance contact opens.
const O3: &str = r#"
definition(name: "O3", category: "Convenience")
preferences {
    section("devices") {
        input "entrance_contact", "capability.contactSensor", required: true
        input "hall_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(entrance_contact, "contact.open", openHandler)
}
def openHandler(evt) {
    hall_switch.on()
}
"#;

/// O4: turns the hallway switch off when the contact opens and on when it closes.
const O4: &str = r#"
definition(name: "O4", category: "Green Living")
preferences {
    section("devices") {
        input "entrance_contact", "capability.contactSensor", required: true
        input "hall_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(entrance_contact, "contact.open", openHandler)
    subscribe(entrance_contact, "contact.closed", closedHandler)
}
def openHandler(evt) {
    hall_switch.off()
}
def closedHandler(evt) {
    hall_switch.on()
}
"#;

/// O7: switches the location mode to away when the goodbye switch is turned off.
const O7: &str = r#"
definition(name: "O7", category: "Mode Magic")
preferences {
    section("devices") {
        input "goodbye_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(goodbye_switch, "switch.off", goodbyeHandler)
}
def goodbyeHandler(evt) {
    setLocationMode("away")
}
"#;

/// O8: turns the hallway switch off when the contact closes.
const O8: &str = r#"
definition(name: "O8", category: "Green Living")
preferences {
    section("devices") {
        input "entrance_contact", "capability.contactSensor", required: true
        input "hall_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(entrance_contact, "contact.closed", closedHandler)
}
def closedHandler(evt) {
    hall_switch.off()
}
"#;

/// O9: turns the hallway switch on when motion is detected.
const O9: &str = r#"
definition(name: "O9", category: "Convenience")
preferences {
    section("devices") {
        input "hall_motion", "capability.motionSensor", required: true
        input "hall_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(hall_motion, "motion.active", motionHandler)
}
def motionHandler(evt) {
    hall_switch.on()
}
"#;

/// O12: applies the user-configured heating setpoint on location-mode changes.
const O12: &str = r#"
definition(name: "O12", category: "Green Living")
preferences {
    section("devices") {
        input "ther", "capability.thermostat", required: true
        input "heating_temp", "number", title: "Heating setpoint", required: true
    }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    ther.setHeatingSetpoint(heating_temp)
}
"#;

/// O14: turns the hallway switch off when the entrance contact opens.
const O14: &str = r#"
definition(name: "O14", category: "Green Living")
preferences {
    section("devices") {
        input "entrance_contact", "capability.contactSensor", required: true
        input "hall_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(entrance_contact, "contact.open", openHandler)
}
def openHandler(evt) {
    hall_switch.off()
}
"#;

/// O16: turns the hallway switch on when motion is detected (night-light variant).
const O16: &str = r#"
definition(name: "O16", category: "Convenience")
preferences {
    section("devices") {
        input "hall_motion", "capability.motionSensor", required: true
        input "hall_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(hall_motion, "motion.active", nightLightHandler)
}
def nightLightHandler(evt) {
    hall_switch.on()
}
"#;

/// O30: powers down the heater outlet and disarms the security system when the
/// location mode changes (energy-saving scene).
const O30: &str = r#"
definition(name: "O30", category: "Green Living")
preferences {
    section("devices") {
        input "security", "capability.securitySystem", required: true
        input "heater_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    heater_switch.off()
    security.disarm()
}
"#;

/// O31: powers up the comfort devices (A/C, coffee machine, TV) when the location mode
/// changes (welcome scene).
const O31: &str = r#"
definition(name: "O31", category: "Convenience")
preferences {
    section("devices") {
        input "ac_switch", "capability.switch", required: true
        input "coffee_switch", "capability.switch", required: true
        input "tv_player", "capability.musicPlayer", required: true
    }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    ac_switch.on()
    coffee_switch.on()
    tv_player.play()
}
"#;

// ------------------------------------------------------------------------ third party

/// TP1: starts the music player when the user leaves home (violates P.13).
const TP1: &str = r#"
definition(name: "TP1", category: "Convenience")
preferences {
    section("devices") {
        input "speaker", "capability.musicPlayer", required: true
        input "presence", "capability.presenceSensor", required: true
    }
}
def installed() {
    subscribe(presence, "presence.not present", awayHandler)
}
def awayHandler(evt) {
    speaker.play()
}
"#;

/// TP2: turns the lights on when nobody is present, and on app touch (violates P.12).
const TP2: &str = r#"
definition(name: "TP2", category: "Safety & Security")
preferences {
    section("devices") {
        input "front_lights", "capability.switch", required: true
        input "presence", "capability.presenceSensor", required: true
    }
}
def installed() {
    subscribe(presence, "presence.not present", vacancyHandler)
    subscribe(app, appTouch, touchHandler)
}
def vacancyHandler(evt) {
    front_lights.on()
}
def touchHandler(evt) {
    front_lights.on()
}
"#;

/// TP3: changes the location to different modes when the switch turns off and when
/// motion becomes inactive (violates S.4).
const TP3: &str = r#"
definition(name: "TP3", category: "Mode Magic")
preferences {
    section("devices") {
        input "goodbye_switch", "capability.switch", required: true
        input "hall_motion", "capability.motionSensor", required: true
    }
}
def installed() {
    subscribe(goodbye_switch, "switch.off", switchOffHandler)
    subscribe(hall_motion, "motion.inactive", motionStoppedHandler)
}
def switchOffHandler(evt) {
    setLocationMode("away")
}
def motionStoppedHandler(evt) {
    setLocationMode("home")
}
"#;

/// TP4: sounds the alarm when the flood sensor reports *no* water (violates P.29).
const TP4: &str = r#"
definition(name: "TP4", category: "Safety & Security")
preferences {
    section("devices") {
        input "flood_sensor", "capability.waterSensor", required: true
        input "siren", "capability.alarm", required: true
    }
}
def installed() {
    subscribe(flood_sensor, "water.dry", dryHandler)
    subscribe(flood_sensor, "water.wet", wetHandler)
}
def dryHandler(evt) {
    siren.siren()
}
def wetHandler(evt) {
    siren.off()
}
"#;

/// TP5: starts the music player when the household enters the sleeping mode
/// (violates P.28).
const TP5: &str = r#"
definition(name: "TP5", category: "Convenience")
preferences {
    section("devices") {
        input "speaker", "capability.musicPlayer", required: true
    }
}
def installed() {
    subscribe(location, "mode.sleeping", sleepHandler)
}
def sleepHandler(evt) {
    speaker.play()
}
"#;

/// TP6: cycles the lights (off then on) when nobody is at home, leaving them on
/// (violates P.12 and S.1).
const TP6: &str = r#"
definition(name: "TP6", category: "Safety & Security")
preferences {
    section("devices") {
        input "living_lights", "capability.switch", required: true
        input "presence", "capability.presenceSensor", required: true
    }
}
def installed() {
    subscribe(presence, "presence.not present", simulateOccupancy)
}
def simulateOccupancy(evt) {
    living_lights.off()
    living_lights.on()
}
"#;

/// TP7: toggles the lights on and off in the same handler when the app icon is tapped
/// (violates S.1).
const TP7: &str = r#"
definition(name: "TP7", category: "Convenience")
preferences {
    section("devices") {
        input "party_lights", "capability.switch", required: true
    }
}
def installed() {
    subscribe(app, appTouch, blinkHandler)
}
def blinkHandler(evt) {
    party_lights.on()
    party_lights.off()
}
"#;

/// TP8: unlocks the door at sunrise and locks it at sunset (violates P.1).
const TP8: &str = r#"
definition(name: "TP8", category: "Convenience")
preferences {
    section("devices") {
        input "front_door", "capability.lock", required: true
        input "presence", "capability.presenceSensor", title: "Only when present?", required: false
    }
}
def installed() {
    subscribe(location, "sunrise", sunriseHandler)
    subscribe(location, "sunset", sunsetHandler)
}
def sunriseHandler(evt) {
    front_door.unlock()
}
def sunsetHandler(evt) {
    front_door.lock()
}
"#;

/// TP9: locks the door twice when it closes (violates S.2).
const TP9: &str = r#"
definition(name: "TP9", category: "Safety & Security")
preferences {
    section("devices") {
        input "front_door", "capability.lock", required: true
        input "door_contact", "capability.contactSensor", required: true
    }
}
def installed() {
    subscribe(door_contact, "contact.closed", closedHandler)
}
def closedHandler(evt) {
    front_door.lock()
    front_door.lock()
}
"#;

/// TP12: turns the hallway switch off when the contact closes (clean alone; conflicts
/// inside G.1).
const TP12: &str = r#"
definition(name: "TP12", category: "Green Living")
preferences {
    section("devices") {
        input "entrance_contact", "capability.contactSensor", required: true
        input "hall_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(entrance_contact, "contact.closed", closedHandler)
}
def closedHandler(evt) {
    hall_switch.off()
}
"#;

/// TP19: applies the user-configured cooling setpoint on location-mode changes.
const TP19: &str = r#"
definition(name: "TP19", category: "Green Living")
preferences {
    section("devices") {
        input "ther", "capability.thermostat", required: true
        input "cooling_temp", "number", title: "Cooling setpoint", required: true
    }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    ther.setCoolingSetpoint(cooling_temp)
}
"#;

/// TP21: disarms the security system and powers down the smoke-detector outlet when
/// the location mode changes.
const TP21: &str = r#"
definition(name: "TP21", category: "Green Living")
preferences {
    section("devices") {
        input "security", "capability.securitySystem", required: true
        input "detector_outlet", "capability.switch", required: true
    }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    detector_outlet.off()
    security.disarm()
}
"#;

/// TP22: powers up the heater and the coffee machine when the location mode changes.
const TP22: &str = r#"
definition(name: "TP22", category: "Convenience")
preferences {
    section("devices") {
        input "heater_switch", "capability.switch", required: true
        input "coffee_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    heater_switch.on()
    coffee_switch.on()
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_match_table2() {
        assert_eq!(official_apps().len(), 35);
        assert_eq!(third_party_apps().len(), 30);
    }

    #[test]
    fn every_market_app_parses_with_its_id_as_name() {
        for app in official_apps().iter().chain(third_party_apps().iter()) {
            let program = soteria_lang::parse(&app.source)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", app.id));
            assert_eq!(program.app_name(), Some(app.id.as_str()), "app {}", app.id);
            assert!(program.inputs().iter().any(|i| i.is_device()), "{} has no devices", app.id);
        }
    }

    #[test]
    fn table3_apps_have_expected_ground_truth() {
        let tps = third_party_apps();
        let tp6 = tps.iter().find(|a| a.id == "TP6").unwrap();
        assert_eq!(tp6.ground_truth.expected_properties(), vec!["P.12", "S.1"]);
        let tp9 = tps.iter().find(|a| a.id == "TP9").unwrap();
        assert_eq!(tp9.ground_truth.expected_properties(), vec!["S.2"]);
        // Official apps are all expected to be clean.
        assert!(official_apps().iter().all(|a| a.ground_truth.expectations.is_empty()));
    }

    #[test]
    fn groups_reference_existing_members() {
        let ids: Vec<String> = official_apps()
            .iter()
            .chain(third_party_apps().iter())
            .map(|a| a.id.clone())
            .collect();
        for group in market_groups() {
            assert!(group.members.len() >= 4);
            for member in &group.members {
                assert!(ids.contains(&member.to_string()), "{member} missing from corpus");
            }
        }
    }

    #[test]
    fn functionality_spectrum_covers_multiple_categories() {
        let categories: std::collections::BTreeSet<String> = official_apps()
            .iter()
            .chain(third_party_apps().iter())
            .filter_map(|a| {
                soteria_lang::parse(&a.source).ok().and_then(|p| p.category().map(String::from))
            })
            .collect();
        assert!(categories.len() >= 4, "categories: {categories:?}");
    }
}
