//! Benign app templates used to fill out the market corpus.
//!
//! Each template is a realistic SmartThings-style automation that satisfies every
//! property in the catalogue; the generator varies device handle names and thresholds
//! so the corpus covers a spread of devices, sizes, and functionality.

/// A benign app template.
#[derive(Debug, Clone, Copy)]
pub struct BenignTemplate {
    /// Template name (used in documentation and stats).
    pub name: &'static str,
    /// The SmartThings market category the generated app declares.
    pub category: &'static str,
    build: fn(&str, &str, u32) -> String,
}

impl BenignTemplate {
    /// Instantiates the template for an app id, deriving handle suffixes and
    /// thresholds from `seed`.
    pub fn instantiate(&self, id: &str, seed: u32) -> String {
        let suffix = ["a", "b", "c", "d", "e"][(seed % 5) as usize];
        (self.build)(id, suffix, seed)
    }
}

/// The benign templates used by the corpus generator.
pub fn benign_templates() -> Vec<BenignTemplate> {
    vec![
        BenignTemplate { name: "motion-light", category: "Convenience", build: motion_light },
        BenignTemplate { name: "leak-valve", category: "Safety & Security", build: leak_valve },
        BenignTemplate { name: "smoke-siren", category: "Safety & Security", build: smoke_siren },
        BenignTemplate { name: "presence-lock", category: "Safety & Security", build: presence_lock },
        BenignTemplate { name: "contact-light", category: "Convenience", build: contact_light },
        BenignTemplate { name: "garage-arrival", category: "Convenience", build: garage_arrival },
        BenignTemplate { name: "door-notify", category: "Home Automation", build: door_notify },
        BenignTemplate { name: "battery-notify", category: "Personal Care", build: battery_notify },
        BenignTemplate { name: "energy-monitor", category: "Green Living", build: energy_monitor },
        BenignTemplate { name: "humidity-fan", category: "Green Living", build: humidity_fan },
        BenignTemplate { name: "mode-security", category: "Safety & Security", build: mode_security },
        BenignTemplate { name: "camera-motion", category: "Safety & Security", build: camera_motion },
        BenignTemplate { name: "sunset-porch", category: "Convenience", build: sunset_porch },
        BenignTemplate { name: "thermostat-away", category: "Green Living", build: thermostat_away },
    ]
}

fn motion_light(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Convenience")
preferences {{
    section("devices") {{
        input "motion_{suffix}", "capability.motionSensor", required: true
        input "light_{suffix}", "capability.switch", required: true
    }}
}}
def installed() {{
    subscribe(motion_{suffix}, "motion.active", activeHandler)
    subscribe(motion_{suffix}, "motion.inactive", inactiveHandler)
}}
def activeHandler(evt) {{
    light_{suffix}.on()
}}
def inactiveHandler(evt) {{
    light_{suffix}.off()
}}
"#
    )
}

fn leak_valve(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Safety & Security")
preferences {{
    section("devices") {{
        input "moisture_{suffix}", "capability.waterSensor", required: true
        input "main_valve_{suffix}", "capability.valve", required: true
    }}
}}
def installed() {{
    subscribe(moisture_{suffix}, "water.wet", wetHandler)
}}
def wetHandler(evt) {{
    main_valve_{suffix}.close()
    sendPush("water detected, valve closed")
}}
"#
    )
}

fn smoke_siren(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Safety & Security")
preferences {{
    section("devices") {{
        input "smoke_{suffix}", "capability.smokeDetector", required: true
        input "siren_{suffix}", "capability.alarm", required: true
    }}
}}
def installed() {{
    subscribe(smoke_{suffix}, "smoke", smokeHandler)
}}
def smokeHandler(evt) {{
    if (evt.value == "detected") {{
        siren_{suffix}.siren()
    }}
    if (evt.value == "clear") {{
        siren_{suffix}.off()
    }}
}}
"#
    )
}

fn presence_lock(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Safety & Security")
preferences {{
    section("devices") {{
        input "everyone_{suffix}", "capability.presenceSensor", required: true
        input "door_{suffix}", "capability.lock", required: true
    }}
}}
def installed() {{
    subscribe(everyone_{suffix}, "presence.not present", leftHandler)
    subscribe(everyone_{suffix}, "presence.present", arrivedHandler)
}}
def leftHandler(evt) {{
    door_{suffix}.lock()
}}
def arrivedHandler(evt) {{
    door_{suffix}.unlock()
}}
"#
    )
}

fn contact_light(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Convenience")
preferences {{
    section("devices") {{
        input "closet_contact_{suffix}", "capability.contactSensor", required: true
        input "closet_light_{suffix}", "capability.switch", required: true
    }}
}}
def installed() {{
    subscribe(closet_contact_{suffix}, "contact.open", openHandler)
    subscribe(closet_contact_{suffix}, "contact.closed", closedHandler)
}}
def openHandler(evt) {{
    closet_light_{suffix}.on()
}}
def closedHandler(evt) {{
    closet_light_{suffix}.off()
}}
"#
    )
}

fn garage_arrival(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Convenience")
preferences {{
    section("devices") {{
        input "car_presence_{suffix}", "capability.presenceSensor", required: true
        input "garage_{suffix}", "capability.garageDoorControl", required: true
    }}
}}
def installed() {{
    subscribe(car_presence_{suffix}, "presence.present", arrivedHandler)
    subscribe(car_presence_{suffix}, "presence.not present", leftHandler)
}}
def arrivedHandler(evt) {{
    garage_{suffix}.open()
}}
def leftHandler(evt) {{
    garage_{suffix}.close()
}}
"#
    )
}

fn door_notify(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Home Automation")
preferences {{
    section("devices") {{
        input "door_contact_{suffix}", "capability.contactSensor", required: true
        input "phone_{suffix}", "phone", title: "Phone number", required: false
    }}
}}
def installed() {{
    subscribe(door_contact_{suffix}, "contact.open", openHandler)
}}
def openHandler(evt) {{
    if (phone_{suffix}) {{
        sendSms(phone_{suffix}, "the door was opened")
    }} else {{
        sendPush("the door was opened")
    }}
}}
"#
    )
}

fn battery_notify(id: &str, suffix: &str, seed: u32) -> String {
    let threshold = 10 + (seed % 4) * 5;
    format!(
        r#"
definition(name: "{id}", category: "Personal Care")
preferences {{
    section("devices") {{
        input "sensor_battery_{suffix}", "capability.battery", required: true
        input "low_threshold_{suffix}", "number", title: "Warn below", defaultValue: {threshold}
    }}
}}
def installed() {{
    subscribe(sensor_battery_{suffix}, "battery", batteryHandler)
}}
def batteryHandler(evt) {{
    def level = sensor_battery_{suffix}.currentValue("battery")
    if (level < low_threshold_{suffix}) {{
        sendPush("battery is low")
    }}
}}
"#
    )
}

fn energy_monitor(id: &str, suffix: &str, seed: u32) -> String {
    let high = 40 + (seed % 5) * 10;
    let low = 3 + (seed % 3);
    format!(
        r#"
definition(name: "{id}", category: "Green Living")
preferences {{
    section("devices") {{
        input "meter_{suffix}", "capability.powerMeter", required: true
        input "outlet_{suffix}", "capability.switch", required: true
    }}
}}
def installed() {{
    subscribe(meter_{suffix}, "power", powerHandler)
}}
def powerHandler(evt) {{
    def usage = meter_{suffix}.currentValue("power")
    if (usage > {high}) {{
        outlet_{suffix}.off()
    }}
    if (usage < {low}) {{
        outlet_{suffix}.on()
    }}
}}
"#
    )
}

fn humidity_fan(id: &str, suffix: &str, seed: u32) -> String {
    let threshold = 55 + (seed % 4) * 5;
    format!(
        r#"
definition(name: "{id}", category: "Green Living")
preferences {{
    section("devices") {{
        input "humidity_{suffix}", "capability.relativeHumidityMeasurement", required: true
        input "fan_{suffix}", "capability.switch", required: true
    }}
}}
def installed() {{
    subscribe(humidity_{suffix}, "humidity", humidityHandler)
}}
def humidityHandler(evt) {{
    def reading = humidity_{suffix}.currentValue("humidity")
    if (reading > {threshold}) {{
        fan_{suffix}.on()
    }} else {{
        fan_{suffix}.off()
    }}
}}
"#
    )
}

fn mode_security(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Safety & Security")
preferences {{
    section("devices") {{
        input "alarm_system_{suffix}", "capability.securitySystem", required: true
    }}
}}
def installed() {{
    subscribe(location, "mode.away", awayHandler)
    subscribe(location, "mode.home", homeHandler)
}}
def awayHandler(evt) {{
    alarm_system_{suffix}.armAway()
}}
def homeHandler(evt) {{
    alarm_system_{suffix}.disarm()
}}
"#
    )
}

fn camera_motion(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Safety & Security")
preferences {{
    section("devices") {{
        input "yard_motion_{suffix}", "capability.motionSensor", required: true
        input "yard_camera_{suffix}", "capability.imageCapture", required: true
    }}
}}
def installed() {{
    subscribe(yard_motion_{suffix}, "motion.active", motionHandler)
}}
def motionHandler(evt) {{
    yard_camera_{suffix}.take()
}}
"#
    )
}

fn sunset_porch(id: &str, suffix: &str, _seed: u32) -> String {
    format!(
        r#"
definition(name: "{id}", category: "Convenience")
preferences {{
    section("devices") {{
        input "porch_light_{suffix}", "capability.switch", required: true
    }}
}}
def installed() {{
    subscribe(location, "sunset", sunsetHandler)
    subscribe(location, "sunrise", sunriseHandler)
}}
def sunsetHandler(evt) {{
    porch_light_{suffix}.on()
}}
def sunriseHandler(evt) {{
    porch_light_{suffix}.off()
}}
"#
    )
}

fn thermostat_away(id: &str, suffix: &str, seed: u32) -> String {
    let default_temp = 62 + (seed % 6);
    format!(
        r#"
definition(name: "{id}", category: "Green Living")
preferences {{
    section("devices") {{
        input "thermostat_{suffix}", "capability.thermostat", required: true
        input "eco_temp_{suffix}", "number", title: "Eco setpoint", defaultValue: {default_temp}
    }}
}}
def installed() {{
    subscribe(location, "mode", modeHandler)
}}
def modeHandler(evt) {{
    thermostat_{suffix}.setHeatingSetpoint(eco_temp_{suffix})
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_instantiate_and_parse() {
        for (i, template) in benign_templates().iter().enumerate() {
            let source = template.instantiate("Example", i as u32);
            let program = soteria_lang::parse(&source)
                .unwrap_or_else(|e| panic!("template {} fails to parse: {e}", template.name));
            assert_eq!(program.app_name(), Some("Example"));
            assert!(program.inputs().iter().any(|d| d.is_device()));
            assert!(program.methods().count() >= 2);
        }
    }

    #[test]
    fn seeds_vary_handles_and_thresholds() {
        let template = benign_templates()[8]; // energy-monitor
        let a = template.instantiate("X", 1);
        let b = template.instantiate("X", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn there_are_enough_templates_for_the_corpus_spread() {
        assert!(benign_templates().len() >= 12);
    }
}
