//! Evaluation corpora for the Soteria reproduction (Sec. 6 of the paper).
//!
//! * [`running`] — the three running example apps of Sec. 3 / Appendix A;
//! * [`market`] — the synthetic re-creation of the 65-app market dataset (35 official
//!   O1–O35 + 30 third-party TP1–TP30) and the interacting groups G.1–G.3;
//! * [`maliot`] — the 17-app MalIoT test suite with per-app ground truth;
//! * [`generator`] — the benign templates used to fill out the market corpus.

pub mod generator;
pub mod maliot;
pub mod market;
pub mod running;

pub use generator::{benign_templates, BenignTemplate};
pub use maliot::{maliot_groups, maliot_suite};
pub use market::{market_groups, official_apps, third_party_apps, MarketGroup};
pub use running::running_apps;

/// One expected property violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// Property identifier in the paper's notation (`"S.1"`, `"P.30"`, ...).
    pub property: String,
    /// True if the paper reports the finding as a false positive (MalIoT App5).
    pub false_positive: bool,
}

/// Ground truth attached to a corpus app.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// Properties expected to be violated.
    pub expectations: Vec<Expectation>,
    /// If set, the violations only manifest when the app is installed together with
    /// the listed apps.
    pub multi_app_group: Option<Vec<String>>,
    /// If set, the app's flaw is outside the static analysis' scope (with the reason).
    pub out_of_scope: Option<String>,
}

impl GroundTruth {
    /// No expected violations.
    pub fn clean() -> Self {
        GroundTruth::default()
    }

    /// Individual-app violations.
    pub fn violations(properties: &[&str]) -> Self {
        GroundTruth {
            expectations: properties
                .iter()
                .map(|p| Expectation { property: p.to_string(), false_positive: false })
                .collect(),
            ..Default::default()
        }
    }

    /// A violation the paper classifies as a false positive.
    pub fn false_positive(property: &str) -> Self {
        GroundTruth {
            expectations: vec![Expectation {
                property: property.to_string(),
                false_positive: true,
            }],
            ..Default::default()
        }
    }

    /// Violations that only appear when installed together with `group`.
    pub fn multi_app(properties: &[&str], group: &[&str]) -> Self {
        GroundTruth {
            expectations: properties
                .iter()
                .map(|p| Expectation { property: p.to_string(), false_positive: false })
                .collect(),
            multi_app_group: Some(group.iter().map(|s| s.to_string()).collect()),
            ..Default::default()
        }
    }

    /// The app's flaw cannot be found statically (dynamic permissions, data leaks,
    /// run-time reflection targets).
    pub fn out_of_scope(reason: &str) -> Self {
        GroundTruth { out_of_scope: Some(reason.to_string()), ..Default::default() }
    }

    /// The expected property identifiers, sorted.
    pub fn expected_properties(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.expectations.iter().map(|e| e.property.as_str()).collect();
        out.sort_unstable();
        out
    }
}

/// One app of a corpus: its identifier, DSL source, and ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusApp {
    /// Identifier (`"O3"`, `"TP12"`, `"App5"`, ...).
    pub id: String,
    /// SmartApp DSL source code.
    pub source: String,
    /// Expected analysis outcome.
    pub ground_truth: GroundTruth,
}

/// The whole market corpus (official followed by third-party apps).
pub fn all_market_apps() -> Vec<CorpusApp> {
    let mut apps = official_apps();
    apps.extend(third_party_apps());
    apps
}

/// Looks an app up by id across every corpus — running examples first, then the
/// MalIoT suite, then the market apps. Used by `soteria-serve`'s `corpus:` job
/// requests.
pub fn find_app(id: &str) -> Option<(String, String)> {
    if let Some((name, source)) = running_apps().into_iter().find(|(name, _)| *name == id) {
        return Some((name.to_string(), source.to_string()));
    }
    maliot_suite()
        .into_iter()
        .chain(all_market_apps())
        .find(|app| app.id == id)
        .map(|app| (app.id, app.source))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_constructors() {
        assert!(GroundTruth::clean().expectations.is_empty());
        let v = GroundTruth::violations(&["S.1", "P.12"]);
        assert_eq!(v.expected_properties(), vec!["P.12", "S.1"]);
        assert!(GroundTruth::false_positive("P.10").expectations[0].false_positive);
        let m = GroundTruth::multi_app(&["P.3"], &["App12", "App13"]);
        assert_eq!(m.multi_app_group.as_ref().unwrap().len(), 2);
        assert!(GroundTruth::out_of_scope("leak").out_of_scope.is_some());
    }

    #[test]
    fn full_market_corpus_has_65_apps() {
        assert_eq!(all_market_apps().len(), 65);
    }
}
