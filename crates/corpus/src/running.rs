//! The paper's three running example apps (Sec. 3 and Appendix A), re-authored in the
//! SmartApp DSL.

/// The Smoke-Alarm app (Appendix A.1): sounds the alarm and opens the water valve when
/// smoke is detected, clears both when smoke clears, and turns on a switch when the
/// smoke-detector battery is low.
pub const SMOKE_ALARM: &str = r#"
definition(name: "Smoke-Alarm", category: "Safety & Security", author: "Soteria")

preferences {
    section("Select smoke detector: ") {
        input "smoke_detector", "capability.smokeDetector", title: "Which detector?", required: true
    }
    section("Select switch for low battery notification: ") {
        input "the_switch", "capability.switch", title: "Which switch?", required: true
    }
    section("Select alarm device: ") {
        input "the_alarm", "capability.alarm", title: "Which alarm?", required: true
    }
    section("Select water valve: ") {
        input "the_valve", "capability.valve", title: "Which valve?", required: true
    }
    section("Select battery settings: ") {
        input "the_battery", "capability.battery", title: "Which battery?", required: true
    }
    section("Low battery warning: ") {
        input "thrshld", "number", title: "Low Battery Threshold", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

private initialize() {
    subscribe(smoke_detector, "smoke", smokeHandler)
    subscribe(the_battery, "battery", batteryHandler)
}

def smokeHandler(evt) {
    log.trace("smoke event")
    def String theMessage
    if (evt.value == "tested") {
        theMessage = "smoke detector tested"
    } else if (evt.value == "clear") {
        theMessage = "clear of smoke"
        the_alarm.off()
        the_valve.close()
    } else if (evt.value == "detected") {
        theMessage = "smoke detected"
        the_alarm.siren()
        the_valve.open()
    }
    log.warn("$theMessage")
}

def batteryHandler(evt) {
    def check = thrshld
    def battLevel = findBatteryLevel()
    if (battLevel < check) {
        the_switch.on()
    }
}

def findBatteryLevel() {
    return the_battery.currentValue("battery").integerValue
}
"#;

/// The Water-Leak-Detector app (Appendix A.2): shuts the main water valve when the
/// moisture sensor reports a leak and notifies the user.
pub const WATER_LEAK_DETECTOR: &str = r#"
definition(name: "Water-Leak-Detector", category: "Safety & Security", author: "Soteria")

preferences {
    section("When there's water detected...") {
        input "water_sensor", "capability.waterSensor", title: "Where?"
        input "valve_device", "capability.valve", title: "Valve device"
    }
    section("Send a notification to...") {
        input("recipients", "contact", title: "Recipients", description: "Send notifications to") {
            input "phone", "phone", title: "Phone number?", required: false
        }
    }
}

def installed() {
    subscribe(water_sensor, "water.wet", waterWetHandler)
}

def updated() {
    unsubscribe()
    subscribe(water_sensor, "water.wet", waterWetHandler)
}

def waterWetHandler(evt) {
    def deltaSeconds = 60
    def timeAgo = new Date(now() - (1000 * deltaSeconds))
    def recentEvents = water_sensor.eventsSince(timeAgo)
    valve_device.close()
    def alreadySentSms = recentEvents.count { it.value == "wet" } > 1
    if (alreadySentSms) {
        log.debug("SMS already sent")
    } else {
        def msg = "water sensor is wet"
        if (location.contactBookEnabled) {
            sendNotificationToContacts(msg, recipients)
        } else {
            sendPush(msg)
            if (phone) {
                sendSms(phone, msg)
            }
        }
    }
}
"#;

/// The Thermostat-Energy-Control app (Appendix A.3): locks the door and sets the
/// heating setpoint on mode changes, and switches the heater outlet off/on around the
/// configured energy-consumption thresholds.
pub const THERMOSTAT_ENERGY_CONTROL: &str = r#"
definition(name: "Thermostat-Energy-Control", category: "Green Living", author: "Soteria")

preferences {
    section("Control") {
        input "ther", "capability.thermostat", title: "Thermostat", required: true
    }
    section("Select the door lock:") {
        input "the_lock", "capability.lock", required: true
    }
    section("Select the thermostat energy meter to monitor:") {
        input "power_meter", "capability.powerMeter", title: "Energy Meters", required: true
        input "price_kwh", "number", title: "threshold value for energy usage", required: true
    }
    section("Select the heater outlet switch:") {
        input "the_switch", "capability.switch", title: "Outlets", required: true
    }
    section("Notifications") {
        input("recipients", "contact", title: "Send notifications to", required: false) {
            input "phoneNumber", "phone", title: "Warn with text message (optional)", required: false
        }
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    unschedule()
    initialize()
}

def initialize() {
    subscribe(location, "mode", modeChangeHandler)
    subscribe(power_meter, "power", powerHandler)
}

def modeChangeHandler(evt) {
    def temp = 68
    setTemp(temp)
    the_lock.lock()
}

def setTemp(t) {
    ther.setHeatingSetpoint(t)
    def msg = "heating point set, door is locked"
    send(msg)
}

def powerHandler(evt) {
    def above_thrshld_val = 50
    def below_thrshld_val = 5
    power_val = get_power()
    if (power_val > above_thrshld_val) {
        def msg = "energy usage above threshold"
        the_switch.off()
        send(msg)
    }
    if (power_val < below_thrshld_val) {
        def msg = "energy usage below threshold"
        the_switch.on()
        send(msg)
    }
}

def get_power() {
    latest_power = power_meter.currentValue("power")
    return latest_power
}

def send(msg) {
    if (location.contactBookEnabled) {
        if (recipients) {
            sendNotificationToContacts(msg, recipients)
        }
    }
    if (phoneNumber) {
        sendSms(phoneNumber, msg)
    }
}
"#;

/// A deliberately buggy variant of the Smoke-Alarm used in Sec. 3's motivating
/// example: the alarm is silenced again right after it sounds.
pub const BUGGY_SMOKE_ALARM: &str = r#"
definition(name: "Buggy-Smoke-Alarm", category: "Safety & Security")

preferences {
    section("devices") {
        input "smoke_detector", "capability.smokeDetector", required: true
        input "the_alarm", "capability.alarm", required: true
    }
}

def installed() {
    subscribe(smoke_detector, "smoke", smokeHandler)
}

def smokeHandler(evt) {
    if (evt.value == "detected") {
        the_alarm.siren()
        the_alarm.off()
    }
}
"#;

/// The running examples as `(id, source)` pairs — the shape the service job
/// queue and the `soteria-serve` request protocol take.
pub fn running_apps() -> Vec<(&'static str, &'static str)> {
    vec![
        ("SmokeAlarm", SMOKE_ALARM),
        ("WaterLeakDetector", WATER_LEAK_DETECTOR),
        ("ThermostatEnergyControl", THERMOSTAT_ENERGY_CONTROL),
        ("BuggySmokeAlarm", BUGGY_SMOKE_ALARM),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_examples_parse() {
        for src in [SMOKE_ALARM, WATER_LEAK_DETECTOR, THERMOSTAT_ENERGY_CONTROL, BUGGY_SMOKE_ALARM] {
            let program = soteria_lang::parse(src).expect("running example parses");
            assert!(program.app_name().is_some());
            assert!(program.methods().count() >= 1);
        }
    }

    #[test]
    fn smoke_alarm_declares_six_inputs() {
        let program = soteria_lang::parse(SMOKE_ALARM).unwrap();
        assert_eq!(program.inputs().len(), 6);
    }
}
