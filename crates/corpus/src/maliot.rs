//! MalIoT: the open-source test corpus of flawed IoT apps (Sec. 6.2, Appendix C).
//!
//! Seventeen hand-crafted apps containing safety and security violations in individual
//! apps and in multi-app environments, re-authored in the SmartApp DSL. Each app
//! carries its ground truth: the properties expected to be violated, whether the
//! violation only manifests in a multi-app group, and the special cases (the App5
//! reflection false positive and the App9/App10/App11 out-of-scope apps).

use crate::{CorpusApp, GroundTruth};

fn app(id: &'static str, source: &'static str, truth: GroundTruth) -> CorpusApp {
    CorpusApp { id: id.to_string(), source: source.to_string(), ground_truth: truth }
}

/// The 17 MalIoT apps in order.
pub fn maliot_suite() -> Vec<CorpusApp> {
    vec![
        app("App1", APP1, GroundTruth::violations(&["P.2"])),
        app("App2", APP2, GroundTruth::violations(&["P.9"])),
        app("App3", APP3, GroundTruth::violations(&["S.2"])),
        app("App4", APP4, GroundTruth::violations(&["S.1"])),
        app("App5", APP5, GroundTruth::false_positive("P.10")),
        app("App6", APP6, GroundTruth::violations(&["P.1", "P.12"])),
        app("App7", APP7, GroundTruth::violations(&["S.4"])),
        app("App8", APP8, GroundTruth::violations(&["S.5", "P.1"])),
        app("App9", APP9, GroundTruth::out_of_scope("requires dynamic analysis of the reflective mode change")),
        app("App10", APP10, GroundTruth::out_of_scope("dynamic device permissions are outside the threat model")),
        app("App11", APP11, GroundTruth::out_of_scope("sensitive data leaks are outside the threat model")),
        app("App12", APP12, GroundTruth::multi_app(&["P.3"], &["App12", "App13", "App14"])),
        app("App13", APP13, GroundTruth::multi_app(&["P.3"], &["App12", "App13", "App14"])),
        app("App14", APP14, GroundTruth::multi_app(&["P.3"], &["App12", "App13", "App14"])),
        app("App15", APP15, GroundTruth::multi_app(&["S.1"], &["App1", "App15"])),
        app("App16", APP16, GroundTruth::multi_app(&["P.14"], &["App16", "App17"])),
        app("App17", APP17, GroundTruth::violations(&["P.14"])),
    ]
}

/// The multi-app groups of the MalIoT suite, as `(group name, member ids, expected
/// violated properties)`.
pub fn maliot_groups() -> Vec<(&'static str, Vec<&'static str>, Vec<&'static str>)> {
    vec![
        ("MalIoT-G1", vec!["App12", "App13", "App14"], vec!["P.3"]),
        ("MalIoT-G2", vec!["App1", "App15"], vec!["S.1"]),
        ("MalIoT-G3", vec!["App16", "App17"], vec!["P.14"]),
    ]
}

/// App1: the lights are turned off at night when motion is detected (violates P.2).
const APP1: &str = r#"
definition(name: "App1", category: "Convenience")
preferences {
    section("devices") {
        input "the_light", "capability.switch", required: true
        input "the_motion", "capability.motionSensor", required: true
    }
}
def installed() {
    subscribe(the_motion, "motion.active", motionActiveHandler)
}
def motionActiveHandler(evt) {
    the_light.off()
}
"#;

/// App2: the security system is disarmed when nobody is at home (violates P.9), with a
/// state-variable guard requiring predicate analysis.
const APP2: &str = r#"
definition(name: "App2", category: "Safety & Security")
preferences {
    section("devices") {
        input "security", "capability.securitySystem", required: true
        input "presence", "capability.presenceSensor", required: true
    }
}
def installed() {
    subscribe(presence, "presence.not present", departureHandler)
}
def departureHandler(evt) {
    state.departures = state.departures + 1
    if (state.departures > 0) {
        security.disarm()
    }
}
"#;

/// App3: a battery-operated switch is commanded off repeatedly (violates S.2).
const APP3: &str = r#"
definition(name: "App3", category: "Green Living")
preferences {
    section("devices") {
        input "battery_switch", "capability.switch", required: true
        input "the_battery", "capability.battery", required: true
    }
}
def installed() {
    runIn(30, drainHandler)
}
def drainHandler() {
    battery_switch.off()
    battery_switch.off()
}
"#;

/// App4: the energy-saver handler turns the switch off and back on in the same path
/// (violates S.1).
const APP4: &str = r#"
definition(name: "App4", category: "Green Living")
preferences {
    section("devices") {
        input "the_outlet", "capability.switch", required: true
        input "delay_minutes", "number", title: "Turn off after (minutes)", required: true
    }
}
def installed() {
    subscribe(app, appTouch, saveEnergyHandler)
    runIn(60, saveEnergyHandler)
}
def saveEnergyHandler(evt) {
    the_outlet.off()
    the_outlet.on()
}
"#;

/// App5: sounds the alarm on smoke but also contains a method (only reachable through
/// call by reflection) that silences it; Soteria's over-approximation reports a P.10
/// violation that is a false positive.
const APP5: &str = r#"
definition(name: "App5", category: "Safety & Security")
preferences {
    section("devices") {
        input "smoke_detector", "capability.smokeDetector", required: true
        input "the_alarm", "capability.alarm", required: true
    }
}
def installed() {
    subscribe(smoke_detector, "smoke.detected", smokeHandler)
}
def smokeHandler(evt) {
    the_alarm.siren()
    state.mode = "alerting"
    dispatch()
}
def dispatch() {
    httpGet("http://example.org/policy") { resp ->
        if (resp.status == 200) {
            name = resp.data.toString()
        }
    }
    "$name"()
}
def keepSirening() {
    the_alarm.siren()
}
def silenceAlarm() {
    the_alarm.off()
}
"#;

/// App6: when the user leaves, the porch light level changes and the door is unlocked
/// a few minutes later (violates P.1 and leaves devices on while away).
const APP6: &str = r#"
definition(name: "App6", category: "Convenience")
preferences {
    section("devices") {
        input "porch_light", "capability.switch", required: true
        input "front_door", "capability.lock", required: true
        input "presence", "capability.presenceSensor", required: true
    }
}
def installed() {
    subscribe(presence, "presence.not present", departedHandler)
}
def departedHandler(evt) {
    porch_light.on()
    runIn(300, unlockForPets)
}
def unlockForPets() {
    front_door.unlock()
}
"#;

/// App7: the switch turns on when the user arrives and off at a user-specified time;
/// the two events may occur together (violates S.4).
const APP7: &str = r#"
definition(name: "App7", category: "Convenience")
preferences {
    section("devices") {
        input "the_switch", "capability.switch", required: true
        input "presence", "capability.presenceSensor", required: true
        input "off_time", "time", title: "Turn off at", required: true
    }
}
def installed() {
    subscribe(presence, "presence.present", arrivedHandler)
    schedule(off_time, scheduledOffHandler)
}
def arrivedHandler(evt) {
    the_switch.on()
}
def scheduledOffHandler() {
    the_switch.off()
}
"#;

/// App8: the presence handler has a case for the user leaving but the app never
/// subscribes that event (violates S.5), so the door is never locked while the user is
/// away (violates P.1).
const APP8: &str = r#"
definition(name: "App8", category: "Safety & Security")
preferences {
    section("devices") {
        input "front_door", "capability.lock", required: true
        input "presence", "capability.presenceSensor", required: true
        input "mailbox", "capability.contactSensor", required: true
    }
}
def installed() {
    subscribe(presence, "presence.present", presenceHandler)
    subscribe(mailbox, "contact.open", mailboxHandler)
}
def presenceHandler(evt) {
    if (evt.value == "present") {
        front_door.unlock()
    }
    if (evt.value == "not present") {
        front_door.lock()
    }
}
def mailboxHandler(evt) {
    sendPush("mailbox opened")
}
"#;

/// App9: the location mode is set through a string fetched over HTTP and invoked by
/// reflection; deciding whether the mode is wrong requires dynamic analysis.
const APP9: &str = r#"
definition(name: "App9", category: "Convenience")
preferences {
    section("devices") {
        input "the_switch", "capability.switch", required: true
    }
}
def installed() {
    subscribe(the_switch, "switch.off", offHandler)
}
def offHandler(evt) {
    fetchMode()
}
def fetchMode() {
    httpGet("http://example.org/mode") { resp ->
        if (resp.status == 200) {
            target_mode = resp.data.toString()
        }
    }
    setLocationMode(target_mode)
}
"#;

/// App10: dynamic device permissions selected through preference pages; outside the
/// scope of the static analysis.
const APP10: &str = r#"
definition(name: "App10", category: "Convenience")
preferences {
    page(name: "firstPage") {
        section("pick a sensor type") {
            input "sensor_type", "enum", title: "Sensor?", required: true
        }
        section("devices") {
            input "chosen_device", "capability.switch", required: false
        }
    }
}
def installed() {
    subscribe(chosen_device, "switch.on", onHandler)
}
def onHandler(evt) {
    log.debug("dynamic device turned on")
}
"#;

/// App11: notifies the user when the kids leave home, but also texts an attacker's
/// number; data leaks are outside Soteria's threat model.
const APP11: &str = r#"
definition(name: "App11", category: "Family")
preferences {
    section("devices") {
        input "kids_presence", "capability.presenceSensor", required: true
        input "parent_phone", "phone", title: "Parent phone", required: true
    }
}
def installed() {
    subscribe(kids_presence, "presence.not present", leftHandler)
}
def leftHandler(evt) {
    sendSms(parent_phone, "the kids left home")
    sendSms("5550100", "the kids left home")
}
"#;

/// App12: turns on the light switches when the smoke alarm sounds.
const APP12: &str = r#"
definition(name: "App12", category: "Safety & Security")
preferences {
    section("devices") {
        input "smoke_detector", "capability.smokeDetector", required: true
        input "hall_light", "capability.switch", required: true
    }
}
def installed() {
    subscribe(smoke_detector, "smoke.detected", smokeHandler)
}
def smokeHandler(evt) {
    hall_light.on()
}
"#;

/// App13: changes the mode from away to home when the light switch turns on.
const APP13: &str = r#"
definition(name: "App13", category: "Convenience")
preferences {
    section("devices") {
        input "hall_light", "capability.switch", required: true
    }
}
def installed() {
    subscribe(hall_light, "switch.on", lightOnHandler)
}
def lightOnHandler(evt) {
    setLocationMode("home")
}
"#;

/// App14: locks the front door when the home mode is set.
const APP14: &str = r#"
definition(name: "App14", category: "Safety & Security")
preferences {
    section("devices") {
        input "front_door", "capability.lock", required: true
    }
}
def installed() {
    subscribe(location, "mode.home", homeModeHandler)
}
def homeModeHandler(evt) {
    front_door.lock()
}
"#;

/// App15: turns the lights on when motion is detected (conflicts with App1, which
/// turns them off on the same event).
const APP15: &str = r#"
definition(name: "App15", category: "Convenience")
preferences {
    section("devices") {
        input "the_light", "capability.switch", required: true
        input "the_motion", "capability.motionSensor", required: true
    }
}
def installed() {
    subscribe(the_motion, "motion.active", motionActiveHandler)
}
def motionActiveHandler(evt) {
    the_light.on()
}
"#;

/// App16: changes the mode to sleeping when the bedroom light is turned off.
const APP16: &str = r#"
definition(name: "App16", category: "Convenience")
preferences {
    section("devices") {
        input "bedroom_light", "capability.switch", required: true
    }
}
def installed() {
    subscribe(bedroom_light, "switch.off", lightsOutHandler)
}
def lightsOutHandler(evt) {
    setLocationMode("sleeping")
}
"#;

/// App17: turns off all plugged devices, including the security system, when the
/// sleeping mode is set (violates P.14).
const APP17: &str = r#"
definition(name: "App17", category: "Green Living")
preferences {
    section("devices") {
        input "security", "capability.securitySystem", required: true
        input "tv_outlet", "capability.switch", required: true
        input "camera_outlet", "capability.switch", required: true
    }
}
def installed() {
    subscribe(location, "mode.sleeping", sleepingHandler)
}
def sleepingHandler(evt) {
    tv_outlet.off()
    camera_outlet.off()
    security.disarm()
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maliot_has_seventeen_apps_that_parse() {
        let suite = maliot_suite();
        assert_eq!(suite.len(), 17);
        for app in &suite {
            let program = soteria_lang::parse(&app.source)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", app.id));
            assert_eq!(program.app_name(), Some(app.id.as_str()));
        }
    }

    #[test]
    fn ground_truth_shape_matches_the_paper() {
        let suite = maliot_suite();
        let out_of_scope = suite.iter().filter(|a| a.ground_truth.out_of_scope.is_some()).count();
        let false_positives = suite
            .iter()
            .filter(|a| a.ground_truth.expectations.iter().any(|e| e.false_positive))
            .count();
        assert_eq!(out_of_scope, 3, "App9, App10, App11");
        assert_eq!(false_positives, 1, "App5");
        // Every remaining app has at least one expected violation.
        assert!(suite
            .iter()
            .filter(|a| a.ground_truth.out_of_scope.is_none())
            .all(|a| !a.ground_truth.expectations.is_empty()));
    }

    #[test]
    fn groups_reference_existing_apps() {
        let suite = maliot_suite();
        for (name, members, expected) in maliot_groups() {
            assert!(!name.is_empty());
            assert!(!expected.is_empty());
            for member in members {
                assert!(suite.iter().any(|a| a.id == member), "{member} missing");
            }
        }
    }
}
