//! Path-sensitive symbolic execution of event handlers (Sec. 4.2.2).
//!
//! The executor starts at the entry of an event handler, performs forward symbolic
//! execution along all paths, accumulates path conditions, records device-state
//! effects, merges paths ESP-style when their end states agree, and discards
//! infeasible paths with the simple custom path-condition checker. Calls by reflection
//! are over-approximated by inlining every method of the app as a possible target.

use crate::config::AnalysisConfig;
use crate::effects::{AttrChange, HandlerPath, HandlerSummary, TransitionSpec};
use crate::predicate::{Atom, PathCondition};
use crate::symbolic::SymValue;
use soteria_capability::{CapabilityRegistry, EffectValue};
use soteria_ir::AppIr;
use soteria_lang::{Arg, BinOp, Expr, LValue, Stmt, UnaryOp};
use std::collections::BTreeMap;

/// Methods that send user notifications; they do not change device state.
const NOTIFICATION_METHODS: &[&str] =
    &["sendSms", "sendPush", "sendNotification", "sendNotificationToContacts", "sendSmsMessage", "sendPushMessage"];

/// Methods that never change device state and are skipped by the executor.
const NEUTRAL_METHODS: &[&str] = &[
    "subscribe", "unsubscribe", "unschedule", "log", "debug", "trace", "info", "warn", "error",
    "runIn", "runOnce", "schedule", "runEvery1Minute", "runEvery5Minutes", "runEvery10Minutes",
    "runEvery15Minutes", "runEvery30Minutes", "runEvery1Hour", "runEvery3Hours", "now",
    "getSunriseAndSunset", "timeOfDayIsBetween", "refresh", "poll",
];

/// The ESP merge key of a path: its observable effects and environment, without the
/// path condition.
type MergeKey = (Vec<AttrChange>, Vec<(String, SymValue)>, bool, Option<SymValue>);

/// One in-flight execution path.
#[derive(Debug, Clone, PartialEq)]
struct PathState {
    env: BTreeMap<String, SymValue>,
    cond: PathCondition,
    effects: Vec<AttrChange>,
    sends_notification: bool,
    via_reflection: bool,
    returned: Option<SymValue>,
}

impl PathState {
    fn initial() -> Self {
        PathState {
            env: BTreeMap::new(),
            cond: PathCondition::top(),
            effects: Vec::new(),
            sends_notification: false,
            via_reflection: false,
            returned: None,
        }
    }

    /// The part of the state compared by ESP merging: everything except the condition.
    fn merge_key(&self) -> MergeKey {
        (
            self.effects.clone(),
            self.env.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            self.sends_notification,
            self.returned.clone(),
        )
    }
}

/// Path-sensitive symbolic executor for one app.
pub struct SymbolicExecutor<'a> {
    ir: &'a AppIr,
    registry: &'a CapabilityRegistry,
    config: AnalysisConfig,
}

impl<'a> SymbolicExecutor<'a> {
    /// Creates an executor over an app IR.
    pub fn new(ir: &'a AppIr, registry: &'a CapabilityRegistry, config: AnalysisConfig) -> Self {
        SymbolicExecutor { ir, registry, config }
    }

    /// Analyzes one event handler and produces its path summary.
    pub fn analyze_handler(&self, handler: &str) -> HandlerSummary {
        let mut summary = HandlerSummary { handler: handler.to_string(), ..Default::default() };
        let Some(method) = self.ir.program.method(handler) else {
            return summary;
        };
        let mut merges = 0usize;
        let mut pruned = 0usize;
        let states = self.exec_stmts(
            &method.body.stmts,
            vec![PathState::initial()],
            0,
            &mut merges,
            &mut pruned,
        );
        summary.paths_merged = merges;
        summary.infeasible_paths_pruned = pruned;

        let mut paths: Vec<HandlerPath> = states
            .into_iter()
            .map(|s| HandlerPath {
                condition: s.cond,
                effects: s.effects,
                sends_notification: s.sends_notification,
                via_reflection: s.via_reflection,
            })
            .collect();
        paths.dedup();

        if !self.config.path_sensitive {
            // Ablation: collapse to one flow-insensitive path with every effect.
            let mut all_effects = Vec::new();
            let mut notified = false;
            for p in &paths {
                for e in &p.effects {
                    if !all_effects.contains(e) {
                        all_effects.push(e.clone());
                    }
                }
                notified |= p.sends_notification;
            }
            paths = vec![HandlerPath {
                condition: PathCondition::top(),
                effects: all_effects,
                sends_notification: notified,
                via_reflection: paths.iter().any(|p| p.via_reflection),
            }];
        }
        summary.paths = paths;
        summary.evt_value_cases = self.collect_evt_value_cases(handler);
        summary
    }

    /// Analyzes every entry point and produces the transition specifications of the
    /// whole app (one per subscription × feasible handler path).
    pub fn transition_specs(&self) -> Vec<TransitionSpec> {
        let mut specs = Vec::new();
        let mut summaries: BTreeMap<String, HandlerSummary> = BTreeMap::new();
        for sub in &self.ir.subscriptions {
            let summary = summaries
                .entry(sub.handler.clone())
                .or_insert_with(|| self.analyze_handler(&sub.handler));
            for path in &summary.paths {
                // Attribute-level subscriptions (`subscribe(dev, "smoke", h)`) are
                // refined to value-specific events when the path dispatches on
                // `evt.value` (Sec. 4.2.3, "Platform-specific Interfaces").
                let mut event = sub.event.clone();
                let needs_value = matches!(
                    &event.kind,
                    soteria_capability::EventKind::Device { value: None, .. }
                        | soteria_capability::EventKind::Mode { value: None }
                );
                if needs_value {
                    let dispatched = path.condition.atoms.iter().find_map(|atom| {
                        let atom = atom.normalised();
                        if atom.op == BinOp::Eq && atom.lhs == SymValue::EventValue {
                            atom.rhs
                                .as_const()
                                .and_then(|c| c.as_symbol().map(|s| s.to_string()))
                        } else {
                            None
                        }
                    });
                    if let Some(value) = dispatched {
                        match &mut event.kind {
                            soteria_capability::EventKind::Device { value: v, .. } => {
                                *v = Some(value);
                            }
                            soteria_capability::EventKind::Mode { value: v } => {
                                *v = Some(value);
                            }
                            _ => {}
                        }
                    }
                }
                specs.push(TransitionSpec {
                    event,
                    handler: sub.handler.clone(),
                    condition: path.condition.clone(),
                    effects: path.effects.clone(),
                    via_reflection: path.via_reflection,
                });
            }
        }
        specs
    }

    /// Summaries of every entry point, keyed by handler name.
    pub fn handler_summaries(&self) -> BTreeMap<String, HandlerSummary> {
        let mut out = BTreeMap::new();
        for handler in self.ir.entry_points() {
            out.insert(handler.to_string(), self.analyze_handler(handler));
        }
        out
    }

    // ----------------------------------------------------------------- statements

    fn exec_stmts(
        &self,
        stmts: &[Stmt],
        mut states: Vec<PathState>,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<PathState> {
        for stmt in stmts {
            let mut next = Vec::new();
            for st in states {
                if st.returned.is_some() {
                    next.push(st);
                    continue;
                }
                next.extend(self.exec_stmt(stmt, st, depth, merges, pruned));
            }
            next.truncate(self.config.max_paths);
            states = next;
        }
        states
    }

    fn exec_stmt(
        &self,
        stmt: &Stmt,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<PathState> {
        match stmt {
            Stmt::LocalDef { name, init, .. } => match init {
                Some(expr) => self
                    .eval_expr(expr, st, depth, merges, pruned)
                    .into_iter()
                    .map(|(mut s, v)| {
                        s.env.insert(name.clone(), v);
                        s
                    })
                    .collect(),
                None => {
                    let mut s = st;
                    s.env.insert(name.clone(), SymValue::Unknown(format!("uninit:{name}")));
                    vec![s]
                }
            },
            Stmt::Assign { target, value, .. } => self
                .eval_expr(value, st, depth, merges, pruned)
                .into_iter()
                .map(|(mut s, v)| {
                    match target {
                        LValue::Ident(name) => {
                            s.env.insert(name.clone(), v);
                        }
                        LValue::StateField(field) => {
                            s.env.insert(format!("state.{field}"), v);
                        }
                        LValue::Property { .. } => {}
                    }
                    s
                })
                .collect(),
            Stmt::Return { value, .. } => match value {
                Some(expr) => self
                    .eval_expr(expr, st, depth, merges, pruned)
                    .into_iter()
                    .map(|(mut s, v)| {
                        s.returned = Some(v);
                        s
                    })
                    .collect(),
                None => {
                    let mut s = st;
                    s.returned = Some(SymValue::Unknown("void".to_string()));
                    vec![s]
                }
            },
            Stmt::If { cond, then_block, else_block, .. } => {
                self.exec_if(cond, then_block, else_block.as_ref(), st, depth, merges, pruned)
            }
            Stmt::Expr { expr, .. } => self
                .eval_expr(expr, st, depth, merges, pruned)
                .into_iter()
                .map(|(s, _)| s)
                .collect(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_if(
        &self,
        cond: &Expr,
        then_block: &soteria_lang::Block,
        else_block: Option<&soteria_lang::Block>,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<PathState> {
        let mut out = Vec::new();
        for (base, true_atoms, false_atoms) in self.eval_condition(cond, st, depth, merges, pruned)
        {
            // True branch.
            let mut then_states = Vec::new();
            let then_cond = base.cond.and_all(&true_atoms);
            if !self.config.prune_infeasible || then_cond.is_feasible() {
                let mut s = base.clone();
                s.cond = then_cond;
                then_states = self.exec_stmts(&then_block.stmts, vec![s], depth, merges, pruned);
            } else {
                *pruned += 1;
            }
            // False branch.
            let mut else_states = Vec::new();
            let else_cond = base.cond.and_all(&false_atoms);
            if !self.config.prune_infeasible || else_cond.is_feasible() {
                let mut s = base.clone();
                s.cond = else_cond;
                else_states = match else_block {
                    Some(b) => self.exec_stmts(&b.stmts, vec![s], depth, merges, pruned),
                    None => vec![s],
                };
            } else {
                *pruned += 1;
            }

            // ESP-style merging: when the end states of the two branches agree on
            // everything but the path condition, keep a single merged path whose
            // condition rolls back to the pre-branch condition.
            if self.config.esp_merge
                && !then_states.is_empty()
                && then_states.len() == else_states.len()
            {
                let then_keys: Vec<_> = then_states.iter().map(|s| s.merge_key()).collect();
                let else_keys: Vec<_> = else_states.iter().map(|s| s.merge_key()).collect();
                if then_keys == else_keys {
                    *merges += then_states.len();
                    for mut s in then_states {
                        s.cond = base.cond.clone();
                        out.push(s);
                    }
                    continue;
                }
            }
            out.extend(then_states);
            out.extend(else_states);
        }
        out
    }

    /// Evaluates a branch condition into `(state, true-branch atoms, false-branch
    /// atoms)` triples. Conditions the custom checker cannot interpret produce opaque
    /// atoms that never prune paths.
    fn eval_condition(
        &self,
        cond: &Expr,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, Vec<Atom>, Vec<Atom>)> {
        match cond {
            Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
                let mut out = Vec::new();
                for (s1, lv) in self.eval_expr(lhs, st, depth, merges, pruned) {
                    for (s2, rv) in self.eval_expr(rhs, s1, depth, merges, pruned) {
                        let atom = Atom::new(lv.clone(), *op, rv.clone());
                        let neg = atom.negated();
                        out.push((s2, vec![atom], vec![neg]));
                    }
                }
                out
            }
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                let mut out = Vec::new();
                for (s, lt, lf) in self.eval_condition(lhs, st, depth, merges, pruned) {
                    for (s2, rt, _rf) in self.eval_condition(rhs, s.clone(), depth, merges, pruned)
                    {
                        let mut true_atoms = lt.clone();
                        true_atoms.extend(rt);
                        // The negation of a conjunction is a disjunction, which the
                        // simple checker cannot represent; use an opaque atom.
                        let false_atoms = vec![opaque_atom("neg-of-conjunction")];
                        let _ = &lf;
                        out.push((s2, true_atoms, false_atoms));
                    }
                }
                out
            }
            Expr::Binary { op: BinOp::Or, lhs, rhs } => {
                let mut out = Vec::new();
                for (s, _lt, lf) in self.eval_condition(lhs, st, depth, merges, pruned) {
                    for (s2, _rt, rf) in self.eval_condition(rhs, s.clone(), depth, merges, pruned)
                    {
                        // True branch of a disjunction is opaque; false branch is the
                        // conjunction of both negations.
                        let mut false_atoms = lf.clone();
                        false_atoms.extend(rf);
                        out.push((s2, vec![opaque_atom("disjunction")], false_atoms));
                    }
                }
                out
            }
            Expr::Unary { op: UnaryOp::Not, operand } => self
                .eval_condition(operand, st, depth, merges, pruned)
                .into_iter()
                .map(|(s, t, f)| (s, f, t))
                .collect(),
            other => {
                // Truthiness test of an arbitrary value (`if (phone) { ... }`).
                self.eval_expr(other, st, depth, merges, pruned)
                    .into_iter()
                    .map(|(s, v)| {
                        let atom = Atom::new(v.clone(), BinOp::NotEq, SymValue::string("null"));
                        (s, vec![atom.clone()], vec![atom.negated()])
                    })
                    .collect()
            }
        }
    }

    // ---------------------------------------------------------------- expressions

    #[allow(clippy::only_used_in_recursion)]
    fn eval_expr(
        &self,
        expr: &Expr,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, SymValue)> {
        match expr {
            Expr::Number(n) => vec![(st, SymValue::number(*n))],
            Expr::Str(s) => vec![(st, SymValue::string(s.clone()))],
            Expr::Bool(b) => vec![(st, SymValue::string(if *b { "true" } else { "false" }))],
            Expr::Null => vec![(st, SymValue::string("null"))],
            Expr::GString { text, .. } => {
                vec![(st, SymValue::Unknown(format!("gstring:{text}")))]
            }
            Expr::Ident(name) => {
                let value = self.resolve_ident(name, &st);
                vec![(st, value)]
            }
            Expr::Property { object, name } => self.eval_property(object, name, st, depth, merges, pruned),
            Expr::MethodCall { object, method, args, closure } => {
                self.eval_call(object.as_deref(), method, args, closure.as_deref(), st, depth, merges, pruned)
            }
            Expr::DynamicCall { .. } => self.eval_reflection(st, depth, merges, pruned),
            Expr::Unary { op, operand } => self
                .eval_expr(operand, st, depth, merges, pruned)
                .into_iter()
                .map(|(s, v)| {
                    let value = match op {
                        UnaryOp::Neg => match v.as_number() {
                            Some(n) => SymValue::number(-n),
                            None => SymValue::Unknown("neg".to_string()),
                        },
                        UnaryOp::Not => SymValue::Unknown("not".to_string()),
                    };
                    (s, value)
                })
                .collect(),
            Expr::Binary { op, lhs, rhs } => {
                let mut out = Vec::new();
                for (s1, lv) in self.eval_expr(lhs, st, depth, merges, pruned) {
                    for (s2, rv) in self.eval_expr(rhs, s1, depth, merges, pruned) {
                        let value = if op.is_comparison() || *op == BinOp::And || *op == BinOp::Or
                        {
                            SymValue::Unknown("bool-expr".to_string())
                        } else {
                            let arith = SymValue::Arith {
                                op: *op,
                                lhs: Box::new(lv.clone()),
                                rhs: Box::new(rv.clone()),
                            };
                            match arith.as_number() {
                                Some(n) => SymValue::number(n),
                                None => arith,
                            }
                        };
                        out.push((s2, value));
                    }
                }
                out
            }
            Expr::Elvis { value, default } => {
                let results = self.eval_expr(value, st, depth, merges, pruned);
                results
                    .into_iter()
                    .flat_map(|(s, v)| match v {
                        SymValue::Unknown(_) => self
                            .eval_expr(default, s, depth, merges, pruned)
                            .into_iter()
                            .collect::<Vec<_>>(),
                        other => vec![(s, other)],
                    })
                    .collect()
            }
            Expr::Ternary { cond: _, then, els } => {
                // Ternaries are rare in the corpus; both arms are explored and the
                // value is joined conservatively.
                let mut out = self.eval_expr(then, st.clone(), depth, merges, pruned);
                out.extend(self.eval_expr(els, st, depth, merges, pruned));
                out
            }
            Expr::Index { object, .. } => self
                .eval_expr(object, st, depth, merges, pruned)
                .into_iter()
                .map(|(s, _)| (s, SymValue::Unknown("index".to_string())))
                .collect(),
            Expr::List(_) => vec![(st, SymValue::Unknown("list".to_string()))],
            Expr::Closure(_) => vec![(st, SymValue::Unknown("closure".to_string()))],
            Expr::New { class, .. } => vec![(st, SymValue::Unknown(format!("new:{class}")))],
        }
    }

    fn resolve_ident(&self, name: &str, st: &PathState) -> SymValue {
        if let Some(v) = st.env.get(name) {
            return v.clone();
        }
        if self.ir.user_inputs.iter().any(|u| u.handle == name) {
            return SymValue::UserInput(name.to_string());
        }
        if self.ir.permissions.iter().any(|p| p.handle == name) {
            return SymValue::Unknown(format!("device:{name}"));
        }
        SymValue::Unknown(format!("ident:{name}"))
    }

    fn eval_property(
        &self,
        object: &Expr,
        name: &str,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, SymValue)> {
        // `evt.value` and `evt.<anything>`.
        if let Expr::Ident(obj) = object {
            if obj == "evt" {
                let value = if name == "value" {
                    SymValue::EventValue
                } else {
                    SymValue::Unknown(format!("evt.{name}"))
                };
                return vec![(st, value)];
            }
            if obj == "state" || obj == "atomicState" {
                let key = format!("state.{name}");
                let value =
                    st.env.get(&key).cloned().unwrap_or(SymValue::StateVar(name.to_string()));
                return vec![(st, value)];
            }
            if obj == "location" && name == "mode" {
                return vec![(
                    st,
                    SymValue::DeviceAttr { handle: "location".into(), attribute: "mode".into() },
                )];
            }
            // `device.currentTemperature`-style platform-specific attribute reads.
            if self.ir.permissions.iter().any(|p| p.handle == obj.as_str()) {
                if let Some(attr) = name.strip_prefix("current") {
                    if !attr.is_empty() {
                        return vec![(
                            st,
                            SymValue::DeviceAttr {
                                handle: obj.clone(),
                                attribute: decapitalise(attr),
                            },
                        )];
                    }
                }
            }
        }
        // Passthrough conversions (`x.integerValue`, `x.intValue`).
        if matches!(name, "integerValue" | "intValue" | "value") {
            return self.eval_expr(object, st, depth, merges, pruned);
        }
        self.eval_expr(object, st, depth, merges, pruned)
            .into_iter()
            .map(|(s, _)| (s, SymValue::Unknown(format!("prop:{name}"))))
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_call(
        &self,
        object: Option<&Expr>,
        method: &str,
        args: &[Arg],
        closure: Option<&soteria_lang::Closure>,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, SymValue)> {
        match object {
            None => self.eval_bare_call(method, args, closure, st, depth, merges, pruned),
            Some(Expr::Ident(handle)) => {
                self.eval_receiver_call(handle, method, args, closure, st, depth, merges, pruned)
            }
            Some(other) => {
                // Calls on computed receivers (`resp.data.toString()`, `events.count {..}`)
                // have no device-state effect; passthrough conversions keep the value.
                let results = self.eval_expr(other, st, depth, merges, pruned);
                if matches!(method, "toString" | "toInteger" | "toFloat" | "intValue") {
                    results
                } else {
                    results
                        .into_iter()
                        .map(|(s, _)| (s, SymValue::Unknown(format!("call:{method}"))))
                        .collect()
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_bare_call(
        &self,
        method: &str,
        args: &[Arg],
        closure: Option<&soteria_lang::Closure>,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, SymValue)> {
        if NOTIFICATION_METHODS.contains(&method) {
            let mut s = st;
            s.sends_notification = true;
            return vec![(s, SymValue::Unknown("notification".to_string()))];
        }
        if method == "setLocationMode" {
            return self.apply_mode_change(args, st, depth, merges, pruned);
        }
        if NEUTRAL_METHODS.contains(&method) {
            // Evaluate the arguments for completeness but drop effects of closures
            // scheduled for later execution (their handlers are separate entry points).
            return vec![(st, SymValue::Unknown(format!("neutral:{method}")))];
        }
        // User-defined method: inline up to the configured depth.
        if let Some(callee) = self.ir.program.method(method) {
            if depth < self.config.inline_depth {
                return self.inline_method(callee, args, st, depth, merges, pruned);
            }
            return vec![(st, SymValue::Unknown(format!("depth-limit:{method}")))];
        }
        // Platform calls with callbacks (`httpGet(url) { resp -> ... }`) execute the
        // callback body for its effects, with parameters unknown.
        if let Some(cl) = closure {
            let mut s = st;
            for p in &cl.params {
                s.env.insert(p.clone(), SymValue::Unknown(format!("closure-param:{p}")));
            }
            let states = self.exec_stmts(&cl.body.stmts, vec![s], depth, merges, pruned);
            return states
                .into_iter()
                .map(|mut s| {
                    s.returned = None;
                    (s, SymValue::Unknown(format!("callback:{method}")))
                })
                .collect();
        }
        vec![(st, SymValue::Unknown(format!("extern:{method}")))]
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_receiver_call(
        &self,
        handle: &str,
        method: &str,
        args: &[Arg],
        closure: Option<&soteria_lang::Closure>,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, SymValue)> {
        // Logger calls (`log.debug(...)`) and similar.
        if handle == "log" {
            return vec![(st, SymValue::Unknown("log".to_string()))];
        }
        if handle == "location" && (method == "setMode" || method == "mode") {
            return self.apply_mode_change(args, st, depth, merges, pruned);
        }
        let Some(capability) = self.ir.capability_of(handle).map(|s| s.to_string()) else {
            // Unknown receiver: evaluate closure callbacks if present, otherwise no-op.
            if let Some(cl) = closure {
                let mut s = st;
                for p in &cl.params {
                    s.env.insert(p.clone(), SymValue::Unknown(format!("closure-param:{p}")));
                }
                let states = self.exec_stmts(&cl.body.stmts, vec![s], depth, merges, pruned);
                return states
                    .into_iter()
                    .map(|mut s| {
                        s.returned = None;
                        (s, SymValue::Unknown(format!("callback:{method}")))
                    })
                    .collect();
            }
            return vec![(st, SymValue::Unknown(format!("recv:{handle}.{method}")))];
        };

        // Attribute reads.
        if matches!(method, "currentValue" | "currentState" | "latestValue" | "latestState") {
            let attribute = args
                .first()
                .and_then(|a| a.value.as_str())
                .map(|s| s.to_string())
                .unwrap_or_else(|| "value".to_string());
            return vec![(
                st,
                SymValue::DeviceAttr { handle: handle.to_string(), attribute },
            )];
        }

        // Device actions from the capability reference.
        if let Some(effects) = self.registry.action_effects(&capability, method) {
            let effects = effects.to_vec();
            // Evaluate arguments (multiplying paths if evaluation forks).
            let mut arg_states: Vec<(PathState, Vec<SymValue>)> = vec![(st, Vec::new())];
            for arg in args {
                let mut next = Vec::new();
                for (s, values) in arg_states {
                    for (s2, v) in self.eval_expr(&arg.value, s, depth, merges, pruned) {
                        let mut values = values.clone();
                        values.push(v);
                        next.push((s2, values));
                    }
                }
                arg_states = next;
            }
            return arg_states
                .into_iter()
                .map(|(mut s, values)| {
                    for effect in &effects {
                        let value = match &effect.value {
                            EffectValue::Const(v) => SymValue::Const(v.clone()),
                            EffectValue::Argument(i) => values
                                .get(*i)
                                .cloned()
                                .unwrap_or_else(|| SymValue::Unknown("missing-arg".to_string())),
                        };
                        s.effects.push(AttrChange {
                            handle: handle.to_string(),
                            capability: capability.clone(),
                            attribute: effect.attribute.clone(),
                            value,
                        });
                    }
                    (s, SymValue::Unknown(format!("action:{method}")))
                })
                .collect();
        }
        // Unknown device command (e.g. `refresh()`): state-neutral.
        vec![(st, SymValue::Unknown(format!("device-call:{handle}.{method}")))]
    }

    fn apply_mode_change(
        &self,
        args: &[Arg],
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, SymValue)> {
        let arg = args.first().map(|a| &a.value);
        let values = match arg {
            Some(expr) => self.eval_expr(expr, st, depth, merges, pruned),
            None => vec![(st, SymValue::Unknown("mode".to_string()))],
        };
        values
            .into_iter()
            .map(|(mut s, v)| {
                s.effects.push(AttrChange {
                    handle: "location".to_string(),
                    capability: "location".to_string(),
                    attribute: "mode".to_string(),
                    value: v,
                });
                (s, SymValue::Unknown("setLocationMode".to_string()))
            })
            .collect()
    }

    fn inline_method(
        &self,
        callee: &soteria_lang::MethodDef,
        args: &[Arg],
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, SymValue)> {
        // Evaluate arguments in the caller's environment.
        let mut arg_states: Vec<(PathState, Vec<SymValue>)> = vec![(st, Vec::new())];
        for arg in args {
            let mut next = Vec::new();
            for (s, values) in arg_states {
                for (s2, v) in self.eval_expr(&arg.value, s, depth, merges, pruned) {
                    let mut values = values.clone();
                    values.push(v);
                    next.push((s2, values));
                }
            }
            arg_states = next;
        }
        let mut out = Vec::new();
        for (caller_state, values) in arg_states {
            let caller_env = caller_state.env.clone();
            let mut callee_state = caller_state;
            // Callee environment: parameters plus the persistent state fields.
            let mut callee_env: BTreeMap<String, SymValue> = caller_env
                .iter()
                .filter(|(k, _)| k.starts_with("state."))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            for (i, param) in callee.params.iter().enumerate() {
                callee_env.insert(
                    param.clone(),
                    values.get(i).cloned().unwrap_or_else(|| {
                        SymValue::Unknown(format!("param:{param}"))
                    }),
                );
            }
            callee_state.env = callee_env;
            let results =
                self.exec_stmts(&callee.body.stmts, vec![callee_state], depth + 1, merges, pruned);
            for mut s in results {
                let ret = s
                    .returned
                    .take()
                    .unwrap_or_else(|| SymValue::Unknown(format!("void:{}", callee.name)));
                // Restore the caller's locals, keeping updated persistent state fields.
                let mut restored = caller_env.clone();
                for (k, v) in &s.env {
                    if k.starts_with("state.") {
                        restored.insert(k.clone(), v.clone());
                    }
                }
                s.env = restored;
                out.push((s, ret));
            }
        }
        out
    }

    /// Reflection over-approximation: a `"$name"()` call may target any method of the
    /// app (Sec. 4.2.3), so every method is inlined on its own alternative path.
    fn eval_reflection(
        &self,
        st: PathState,
        depth: usize,
        merges: &mut usize,
        pruned: &mut usize,
    ) -> Vec<(PathState, SymValue)> {
        if !self.config.reflection_over_approx || depth >= self.config.inline_depth {
            return vec![(st, SymValue::Unknown("reflection".to_string()))];
        }
        let mut out = vec![(st.clone(), SymValue::Unknown("reflection:none".to_string()))];
        for method in self.ir.program.methods() {
            // Lifecycle methods are not interesting reflection targets.
            if matches!(method.name.as_str(), "installed" | "updated" | "initialize") {
                continue;
            }
            let results = self.inline_method(method, &[], st.clone(), depth, merges, pruned);
            for (mut s, v) in results {
                s.via_reflection = true;
                out.push((s, v));
            }
        }
        out.truncate(self.config.max_paths);
        out
    }

    /// Scans the handler (and its callees) for comparisons of `evt.value` against
    /// string constants; used by general property S.5.
    fn collect_evt_value_cases(&self, handler: &str) -> Vec<String> {
        let mut cases = Vec::new();
        let graph = self.ir.call_graphs.get(handler);
        let reachable: Vec<String> = match graph {
            Some(g) => g.reachable().into_iter().collect(),
            None => vec![handler.to_string()],
        };
        for name in reachable {
            let Some(method) = self.ir.program.method(&name) else { continue };
            for stmt in &method.body.stmts {
                stmt.walk_exprs(&mut |e| {
                    if let Expr::Binary { op: BinOp::Eq, lhs, rhs } = e {
                        let is_evt_value = |x: &Expr| {
                            matches!(x, Expr::Property { object, name }
                                if name == "value" && matches!(object.as_ref(), Expr::Ident(o) if o == "evt"))
                        };
                        if is_evt_value(lhs) {
                            if let Some(s) = rhs.as_str() {
                                cases.push(s.to_string());
                            }
                        } else if is_evt_value(rhs) {
                            if let Some(s) = lhs.as_str() {
                                cases.push(s.to_string());
                            }
                        }
                    }
                });
            }
        }
        cases.sort();
        cases.dedup();
        cases
    }
}

fn opaque_atom(reason: &str) -> Atom {
    Atom::new(
        SymValue::Unknown(reason.to_string()),
        BinOp::Eq,
        SymValue::Unknown("opaque".to_string()),
    )
}

fn decapitalise(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str, handler: &str) -> HandlerSummary {
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("test", src, &registry).unwrap();
        let exec = SymbolicExecutor::new(&ir, &registry, AnalysisConfig::paper());
        exec.analyze_handler(handler)
    }

    const SMOKE_ALARM: &str = r#"
        definition(name: "Smoke-Alarm")
        preferences {
            section("d") {
                input "smoke_detector", "capability.smokeDetector"
                input "the_switch", "capability.switch"
                input "the_alarm", "capability.alarm"
                input "the_valve", "capability.valve"
                input "the_battery", "capability.battery"
                input "thrshld", "number", title: "Low Battery Threshold"
            }
        }
        def installed() {
            subscribe(smoke_detector, "smoke", h1)
            subscribe(the_battery, "battery", h2)
        }
        def h1(evt) {
            if (evt.value == "detected") {
                the_alarm.siren()
                the_valve.open()
            }
            if (evt.value == "clear") {
                the_alarm.off()
                the_valve.close()
            }
        }
        def h2(evt) {
            def check = thrshld
            def batteryLevel = p()
            if (batteryLevel < check) {
                the_switch.on()
            }
        }
        def p() {
            return the_battery.currentValue("battery")
        }
    "#;

    #[test]
    fn smoke_alarm_paths_and_effects() {
        let summary = analyze(SMOKE_ALARM, "h1");
        // Feasible combinations: detected (siren+open), clear (off+close), neither.
        // The detected&&clear combination is pruned as infeasible.
        assert!(summary.infeasible_paths_pruned >= 1);
        let with_siren: Vec<&HandlerPath> = summary
            .paths
            .iter()
            .filter(|p| p.effects.iter().any(|e| e.value == SymValue::string("siren")))
            .collect();
        assert_eq!(with_siren.len(), 1);
        assert!(with_siren[0]
            .effects
            .iter()
            .any(|e| e.attribute == "valve" && e.value == SymValue::string("open")));
        // The empty path (no event match) exists too.
        assert!(summary.paths.iter().any(|p| p.effects.is_empty()));
        assert_eq!(summary.evt_value_cases, vec!["clear".to_string(), "detected".to_string()]);
    }

    #[test]
    fn inlined_helper_resolves_device_read_and_user_input() {
        let summary = analyze(SMOKE_ALARM, "h2");
        let on_path = summary
            .paths
            .iter()
            .find(|p| !p.effects.is_empty())
            .expect("a path that turns on the switch");
        assert_eq!(on_path.effects[0].attribute, "switch");
        // The path condition compares the battery device read against the user input.
        let cond = on_path.condition.to_string();
        assert!(cond.contains("currentValue(the_battery.battery)"), "cond: {cond}");
        assert!(cond.contains("thrshld"), "cond: {cond}");
    }

    #[test]
    fn thermostat_energy_control_predicates() {
        let src = r#"
            definition(name: "Thermostat-Energy-Control")
            preferences {
                section("d") {
                    input "the_switch", "capability.switch"
                    input "power_meter", "capability.powerMeter"
                }
            }
            def installed() { subscribe(power_meter, "power", handler) }
            def handler(evt) {
                def above = 50
                def below = 5
                def power_val = get_power()
                if (power_val > above) {
                    the_switch.off()
                }
                if (power_val < below) {
                    the_switch.on()
                }
            }
            def get_power() {
                def latest_power = power_meter.currentValue("power")
                return latest_power
            }
        "#;
        let summary = analyze(src, "handler");
        // The both-branches-taken path (power > 50 && power < 5) must be pruned, so
        // no feasible path both turns the switch off and on.
        assert!(summary.paths.iter().all(|p| {
            !(p.effects.iter().any(|e| e.value == SymValue::string("off"))
                && p.effects.iter().any(|e| e.value == SymValue::string("on")))
        }));
        assert!(summary.infeasible_paths_pruned >= 1);
        // The off path is guarded by currentValue(power) > 50.
        let off = summary
            .paths
            .iter()
            .find(|p| p.effects.iter().any(|e| e.value == SymValue::string("off")))
            .unwrap();
        assert!(off.condition.to_string().contains("currentValue(power_meter.power) > 50"));
    }

    #[test]
    fn esp_merging_collapses_identical_branches() {
        let src = r#"
            definition(name: "Merge")
            preferences { section("d") { input "sw", "capability.switch" \n input "m", "capability.motionSensor" } }
            def installed() { subscribe(m, "motion.active", h) }
            def h(evt) {
                if (evt.value == "active") {
                    log.debug("motion")
                } else {
                    log.debug("no motion")
                }
                sw.on()
            }
        "#;
        let src = src.replace("\\n", "\n");
        let summary = analyze(&src, "h");
        // Both branches have identical device effects, so ESP merging keeps one path.
        assert_eq!(summary.paths.len(), 1);
        assert!(summary.paths_merged >= 1);
        assert!(summary.paths[0].condition.is_trivial());
    }

    #[test]
    fn mode_change_and_setpoint_effects() {
        let src = r#"
            definition(name: "ThermoMode")
            preferences { section("d") { input "ther", "capability.thermostat"
                input "the_lock", "capability.lock" } }
            def installed() { subscribe(location, "mode", modeChangeHandler) }
            def modeChangeHandler(evt) {
                def temp = 68
                setTemp(temp)
                the_lock.lock()
                setLocationMode("home")
            }
            def setTemp(t) {
                ther.setHeatingSetpoint(t)
            }
        "#;
        let summary = analyze(src, "modeChangeHandler");
        assert_eq!(summary.paths.len(), 1);
        let effects = &summary.paths[0].effects;
        // Dependence through the helper resolves the setpoint to the constant 68.
        assert!(effects.iter().any(|e| e.attribute == "heatingSetpoint"
            && e.value == SymValue::number(68)));
        assert!(effects.iter().any(|e| e.attribute == "lock" && e.value == SymValue::string("locked")));
        assert!(effects.iter().any(|e| e.handle == "location"
            && e.attribute == "mode"
            && e.value == SymValue::string("home")));
    }

    #[test]
    fn state_variable_guard_is_tracked() {
        let src = r#"
            definition(name: "Counter")
            preferences { section("d") { input "theSwitch", "capability.switch" } }
            def installed() { subscribe(theSwitch, "switch.on", turnedOnHandler) }
            def turnedOnHandler(evt) {
                state.counter = state.counter + 1
                if (state.counter > 10) {
                    theSwitch.off()
                }
            }
        "#;
        let summary = analyze(src, "turnedOnHandler");
        let off_path = summary
            .paths
            .iter()
            .find(|p| !p.effects.is_empty())
            .expect("path turning the switch off");
        assert!(off_path.condition.to_string().contains("state.counter"));
    }

    #[test]
    fn reflection_over_approximation_reaches_all_methods() {
        let src = r#"
            definition(name: "Reflect")
            preferences { section("d") { input "the_alarm", "capability.alarm"
                input "smoke", "capability.smokeDetector" } }
            def installed() { subscribe(smoke, "smoke.detected", h) }
            def h(evt) {
                getMethod()
            }
            def getMethod() {
                httpGet("http://example.org") { resp ->
                    name = resp.data
                }
                "$name"()
            }
            def foo() { the_alarm.siren() }
            def bar() { the_alarm.off() }
        "#;
        let summary = analyze(src, "h");
        let values: Vec<String> = summary
            .all_effects()
            .map(|e| e.value.as_const().map(|v| v.to_string()).unwrap_or_default())
            .collect();
        assert!(values.contains(&"siren".to_string()));
        assert!(values.contains(&"off".to_string()));
        assert!(summary.paths.iter().any(|p| p.via_reflection));

        // With the over-approximation disabled, no alarm effect is visible.
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("test", src, &registry).unwrap();
        let mut cfg = AnalysisConfig::paper();
        cfg.reflection_over_approx = false;
        let exec = SymbolicExecutor::new(&ir, &registry, cfg);
        let summary2 = exec.analyze_handler("h");
        assert_eq!(summary2.all_effects().count(), 0);
    }

    #[test]
    fn notification_flag_set() {
        let src = r#"
            definition(name: "Notify")
            preferences { section("d") { input "w", "capability.waterSensor" } }
            def installed() { subscribe(w, "water.wet", h) }
            def h(evt) {
                sendSms("5551234", "wet!")
            }
        "#;
        let summary = analyze(src, "h");
        assert!(summary.paths[0].sends_notification);
        assert!(summary.paths[0].effects.is_empty());
    }

    #[test]
    fn transition_specs_cover_all_subscriptions() {
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("test", SMOKE_ALARM, &registry).unwrap();
        let exec = SymbolicExecutor::new(&ir, &registry, AnalysisConfig::paper());
        let specs = exec.transition_specs();
        assert!(specs.iter().any(|s| s.handler == "h1"));
        assert!(specs.iter().any(|s| s.handler == "h2"));
        // Each spec's display includes the event and its effects.
        let detected = specs
            .iter()
            .find(|s| s.handler == "h1" && !s.effects.is_empty())
            .unwrap();
        assert!(detected.to_string().contains("smoke"));
    }

    #[test]
    fn path_insensitive_ablation_collapses_paths() {
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("test", SMOKE_ALARM, &registry).unwrap();
        let exec = SymbolicExecutor::new(
            &ir,
            &registry,
            AnalysisConfig::without_path_sensitivity(),
        );
        let summary = exec.analyze_handler("h1");
        assert_eq!(summary.paths.len(), 1);
        // The single path contains both the siren and the off effects (the coarse
        // over-approximation the paper describes as producing false positives).
        let values: Vec<&SymValue> = summary.paths[0].effects.iter().map(|e| &e.value).collect();
        assert!(values.contains(&&SymValue::string("siren")));
        assert!(values.contains(&&SymValue::string("off")));
    }
}
