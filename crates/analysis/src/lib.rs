//! Static analyses backing Soteria's state-model extraction (Sec. 4.2).
//!
//! This crate implements, from scratch:
//!
//! * **symbolic values and source labels** ([`SymValue`], [`SourceLabel`]) — constants,
//!   user inputs, device-state reads, persistent state variables;
//! * **path conditions** with the paper's simple custom feasibility checker
//!   ([`PathCondition`], [`Atom`]) — no SMT solver, just comparisons against constants;
//! * **path-sensitive symbolic execution** of event handlers with ESP-style path
//!   merging, infeasible-path pruning, depth-limited inlining, field-sensitive state
//!   variables and the reflection over-approximation ([`SymbolicExecutor`]);
//! * **dependence analysis** (Algorithm 1) identifying the sources of numerical-valued
//!   attributes ([`analyze_numeric_attribute`]);
//! * **property abstraction** collapsing numeric domains to their sources/cut-points
//!   ([`abstract_domains`], [`Abstraction`]).

pub mod abstraction;
pub mod config;
pub mod dependence;
pub mod effects;
pub mod executor;
pub mod predicate;
pub mod symbolic;

pub use abstraction::{abstract_domains, reduction_factor, Abstraction, AttrKey};
pub use config::AnalysisConfig;
pub use dependence::{analyze_numeric_attribute, DepPoint, DependenceResult};
pub use effects::{AttrChange, HandlerPath, HandlerSummary, TransitionSpec};
pub use executor::SymbolicExecutor;
pub use predicate::{Atom, PathCondition};
pub use symbolic::{SourceLabel, SymValue};
