//! Device-state effects and per-handler analysis summaries.

use crate::predicate::PathCondition;
use crate::symbolic::SymValue;
use soteria_capability::Event;
use std::fmt;

/// A single attribute change performed along a path (a device action call, a
/// `setLocationMode` call, or an abstract-attribute change).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrChange {
    /// Device handle (or `"location"` for mode changes).
    pub handle: String,
    /// Device capability (or `"location"`).
    pub capability: String,
    /// Attribute written.
    pub attribute: String,
    /// The written value (constant for most actions, symbolic for `set*` commands).
    pub value: SymValue,
}

impl AttrChange {
    /// True if `other` writes the same attribute of the same device with a *different*
    /// constant value (a conflicting change — general property S.1/S.4).
    pub fn conflicts_with(&self, other: &AttrChange) -> bool {
        self.handle == other.handle
            && self.attribute == other.attribute
            && match (self.value.as_const(), other.value.as_const()) {
                (Some(a), Some(b)) => a != b,
                // Symbolic writes to the same attribute are treated as potentially
                // conflicting only if the expressions differ.
                _ => self.value != other.value,
            }
    }

    /// True if `other` writes the same attribute of the same device with the *same*
    /// value (a repeated change — general property S.2/S.3).
    pub fn repeats(&self, other: &AttrChange) -> bool {
        self.handle == other.handle
            && self.attribute == other.attribute
            && self.value == other.value
    }
}

impl fmt::Display for AttrChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} := {}", self.handle, self.attribute, self.value)
    }
}

/// One feasible execution path of an event handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerPath {
    /// The path condition that must hold for this path to execute.
    pub condition: PathCondition,
    /// Attribute changes in execution order (duplicates preserved — S.2 needs them).
    pub effects: Vec<AttrChange>,
    /// True if the path sends a user notification (push/SMS); informational only —
    /// data-leak analysis is outside Soteria's scope (MalIoT App11).
    pub sends_notification: bool,
    /// True if this path was produced by the reflection over-approximation (it inlines
    /// a method only reachable through a `"$name"()` call).
    pub via_reflection: bool,
}

impl HandlerPath {
    /// The effects deduplicated to their final value per attribute, i.e. what the path
    /// leaves the devices at.
    pub fn net_effects(&self) -> Vec<AttrChange> {
        let mut out: Vec<AttrChange> = Vec::new();
        for e in &self.effects {
            if let Some(existing) =
                out.iter_mut().find(|x| x.handle == e.handle && x.attribute == e.attribute)
            {
                *existing = e.clone();
            } else {
                out.push(e.clone());
            }
        }
        out
    }
}

/// Analysis summary of one event handler: its feasible paths and the `evt.value`
/// cases it dispatches on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HandlerSummary {
    /// The handler method name.
    pub handler: String,
    /// All feasible paths through the handler.
    pub paths: Vec<HandlerPath>,
    /// String values the handler compares `evt.value` against (general property S.5
    /// checks these against the subscribed events).
    pub evt_value_cases: Vec<String>,
    /// Number of paths discarded as infeasible by the path-condition checker.
    pub infeasible_paths_pruned: usize,
    /// Number of path merges performed by the ESP-style merging.
    pub paths_merged: usize,
}

impl HandlerSummary {
    /// All attribute changes across all paths.
    pub fn all_effects(&self) -> impl Iterator<Item = &AttrChange> {
        self.paths.iter().flat_map(|p| p.effects.iter())
    }

    /// True if any path actuates the given device attribute.
    pub fn touches(&self, handle: &str, attribute: &str) -> bool {
        self.all_effects().any(|e| e.handle == handle && e.attribute == attribute)
    }
}

/// A state transition specification extracted from a handler path: the triggering
/// event plus the path's condition and effects (Sec. 4.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionSpec {
    /// The event triggering the handler.
    pub event: Event,
    /// The handler that runs.
    pub handler: String,
    /// The guarding path condition.
    pub condition: PathCondition,
    /// The attribute changes the transition performs.
    pub effects: Vec<AttrChange>,
    /// True if the transition only exists under the reflection over-approximation.
    pub via_reflection: bool,
}

impl fmt::Display for TransitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let effects: Vec<String> = self.effects.iter().map(|e| e.to_string()).collect();
        write!(
            f,
            "{} [{}] -> {{{}}}",
            self.event,
            self.condition,
            effects.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change(handle: &str, attr: &str, value: &str) -> AttrChange {
        AttrChange {
            handle: handle.into(),
            capability: "switch".into(),
            attribute: attr.into(),
            value: SymValue::string(value),
        }
    }

    #[test]
    fn conflict_and_repeat_detection() {
        let on = change("sw", "switch", "on");
        let off = change("sw", "switch", "off");
        let on2 = change("sw", "switch", "on");
        let other = change("sw2", "switch", "off");
        assert!(on.conflicts_with(&off));
        assert!(!on.conflicts_with(&on2));
        assert!(on.repeats(&on2));
        assert!(!on.repeats(&off));
        assert!(!on.conflicts_with(&other));
    }

    #[test]
    fn net_effects_keep_last_write() {
        let path = HandlerPath {
            condition: PathCondition::top(),
            effects: vec![
                change("sw", "switch", "on"),
                change("valve", "valve", "open"),
                change("sw", "switch", "off"),
            ],
            sends_notification: false,
            via_reflection: false,
        };
        let net = path.net_effects();
        assert_eq!(net.len(), 2);
        assert_eq!(net[0].value, SymValue::string("off"));
        assert_eq!(net[1].attribute, "valve");
    }

    #[test]
    fn summary_queries() {
        let summary = HandlerSummary {
            handler: "h".into(),
            paths: vec![HandlerPath {
                condition: PathCondition::top(),
                effects: vec![change("sw", "switch", "on")],
                sends_notification: false,
                via_reflection: false,
            }],
            evt_value_cases: vec!["active".into()],
            infeasible_paths_pruned: 0,
            paths_merged: 0,
        };
        assert!(summary.touches("sw", "switch"));
        assert!(!summary.touches("sw", "level"));
        assert_eq!(summary.all_effects().count(), 1);
    }
}
