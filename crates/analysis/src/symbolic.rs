//! Symbolic values used by the path-sensitive analysis.
//!
//! Soteria labels the sources of values flowing into device actions and predicates as
//! "developer-defined" (constants), "user-defined" (install-time inputs),
//! "device-state" (attribute reads), or "state-variable" (persistent `state` object
//! fields) — Sec. 4.2.2 "Labeling Transitions with Predicates".

use soteria_capability::AttributeValue;
use soteria_lang::BinOp;
use std::fmt;

/// Source classification of a symbolic value (predicate/transition labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceLabel {
    /// A constant hard-coded by the developer.
    DeveloperDefined,
    /// A value entered by the user at install time.
    UserDefined,
    /// A device attribute read (`currentValue(...)`).
    DeviceState,
    /// A persistent `state` / `atomicState` field.
    StateVariable,
    /// The triggering event's value (`evt.value`).
    EventValue,
    /// A value the analysis cannot track precisely.
    Unknown,
}

impl fmt::Display for SourceLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SourceLabel::DeveloperDefined => "developer-defined",
            SourceLabel::UserDefined => "user-defined",
            SourceLabel::DeviceState => "device-state",
            SourceLabel::StateVariable => "state-variable",
            SourceLabel::EventValue => "event-value",
            SourceLabel::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

/// A symbolic value tracked by the executor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SymValue {
    /// A concrete constant (number or string).
    Const(AttributeValue),
    /// An install-time user input, by handle name.
    UserInput(String),
    /// A device attribute read.
    DeviceAttr {
        /// Device handle.
        handle: String,
        /// Attribute name.
        attribute: String,
    },
    /// A persistent state variable (`state.<field>`).
    StateVar(String),
    /// The value carried by the triggering event (`evt.value`).
    EventValue,
    /// An arithmetic combination of symbolic values.
    Arith {
        /// Operator (`+`, `-`, `*`, `/`, `%`).
        op: BinOp,
        /// Left operand.
        lhs: Box<SymValue>,
        /// Right operand.
        rhs: Box<SymValue>,
    },
    /// An untracked value with a short description of its origin.
    Unknown(String),
}

impl SymValue {
    /// A numeric constant.
    pub fn number(n: i64) -> Self {
        SymValue::Const(AttributeValue::Number(n))
    }

    /// A string constant.
    pub fn string(s: impl Into<String>) -> Self {
        SymValue::Const(AttributeValue::Symbol(s.into()))
    }

    /// Returns the concrete constant if the value is a constant.
    pub fn as_const(&self) -> Option<&AttributeValue> {
        match self {
            SymValue::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the numeric constant payload, folding constant arithmetic.
    pub fn as_number(&self) -> Option<i64> {
        match self {
            SymValue::Const(AttributeValue::Number(n)) => Some(*n),
            SymValue::Arith { op, lhs, rhs } => {
                let (l, r) = (lhs.as_number()?, rhs.as_number()?);
                match op {
                    BinOp::Add => Some(l + r),
                    BinOp::Sub => Some(l - r),
                    BinOp::Mul => Some(l * r),
                    BinOp::Div => {
                        if r == 0 {
                            None
                        } else {
                            Some(l / r)
                        }
                    }
                    BinOp::Rem => {
                        if r == 0 {
                            None
                        } else {
                            Some(l % r)
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// The source label of the value, used for predicate labeling.
    pub fn source_label(&self) -> SourceLabel {
        match self {
            SymValue::Const(_) => SourceLabel::DeveloperDefined,
            SymValue::UserInput(_) => SourceLabel::UserDefined,
            SymValue::DeviceAttr { .. } => SourceLabel::DeviceState,
            SymValue::StateVar(_) => SourceLabel::StateVariable,
            SymValue::EventValue => SourceLabel::EventValue,
            SymValue::Arith { lhs, rhs, .. } => {
                // An arithmetic value inherits the "most external" operand label:
                // user input dominates device state, which dominates constants.
                let labels = [lhs.source_label(), rhs.source_label()];
                if labels.contains(&SourceLabel::Unknown) {
                    SourceLabel::Unknown
                } else if labels.contains(&SourceLabel::UserDefined) {
                    SourceLabel::UserDefined
                } else if labels.contains(&SourceLabel::StateVariable) {
                    SourceLabel::StateVariable
                } else if labels.contains(&SourceLabel::DeviceState) {
                    SourceLabel::DeviceState
                } else {
                    SourceLabel::DeveloperDefined
                }
            }
            SymValue::Unknown(_) => SourceLabel::Unknown,
        }
    }

    /// Leaf sources of the value (constants, user inputs, device reads, state vars).
    /// These are the "sources" Algorithm 1's dependence analysis computes.
    pub fn sources(&self) -> Vec<&SymValue> {
        match self {
            SymValue::Arith { lhs, rhs, .. } => {
                let mut out = lhs.sources();
                out.extend(rhs.sources());
                out
            }
            other => vec![other],
        }
    }

    /// A stable textual key used to compare predicate subjects (the "same identifier"
    /// requirement of the custom path-condition checker).
    pub fn key(&self) -> String {
        match self {
            SymValue::Const(v) => format!("const:{v}"),
            SymValue::UserInput(h) => format!("user:{h}"),
            SymValue::DeviceAttr { handle, attribute } => format!("dev:{handle}.{attribute}"),
            SymValue::StateVar(f) => format!("state:{f}"),
            SymValue::EventValue => "evt.value".to_string(),
            SymValue::Arith { op, lhs, rhs } => format!("({} {} {})", lhs.key(), op, rhs.key()),
            SymValue::Unknown(d) => format!("unknown:{d}"),
        }
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymValue::Const(v) => write!(f, "{v}"),
            SymValue::UserInput(h) => write!(f, "${h}"),
            SymValue::DeviceAttr { handle, attribute } => {
                write!(f, "currentValue({handle}.{attribute})")
            }
            SymValue::StateVar(field) => write!(f, "state.{field}"),
            SymValue::EventValue => write!(f, "evt.value"),
            SymValue::Arith { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            SymValue::Unknown(d) => write!(f, "?{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let v = SymValue::Arith {
            op: BinOp::Add,
            lhs: Box::new(SymValue::number(10)),
            rhs: Box::new(SymValue::Arith {
                op: BinOp::Mul,
                lhs: Box::new(SymValue::number(5)),
                rhs: Box::new(SymValue::number(2)),
            }),
        };
        assert_eq!(v.as_number(), Some(20));
        assert_eq!(SymValue::string("on").as_number(), None);
        let div_zero = SymValue::Arith {
            op: BinOp::Div,
            lhs: Box::new(SymValue::number(5)),
            rhs: Box::new(SymValue::number(0)),
        };
        assert_eq!(div_zero.as_number(), None);
    }

    #[test]
    fn source_labels() {
        assert_eq!(SymValue::number(68).source_label(), SourceLabel::DeveloperDefined);
        assert_eq!(SymValue::UserInput("thrshld".into()).source_label(), SourceLabel::UserDefined);
        assert_eq!(
            SymValue::DeviceAttr { handle: "pm".into(), attribute: "power".into() }.source_label(),
            SourceLabel::DeviceState
        );
        assert_eq!(SymValue::StateVar("counter".into()).source_label(), SourceLabel::StateVariable);
        // `user input + 10` is user-defined overall (paper footnote 3).
        let v = SymValue::Arith {
            op: BinOp::Add,
            lhs: Box::new(SymValue::UserInput("y".into())),
            rhs: Box::new(SymValue::number(10)),
        };
        assert_eq!(v.source_label(), SourceLabel::UserDefined);
    }

    #[test]
    fn sources_flatten_arithmetic() {
        let v = SymValue::Arith {
            op: BinOp::Add,
            lhs: Box::new(SymValue::UserInput("y".into())),
            rhs: Box::new(SymValue::number(10)),
        };
        let sources = v.sources();
        assert_eq!(sources.len(), 2);
        assert!(sources.contains(&&SymValue::UserInput("y".into())));
    }

    #[test]
    fn display_and_keys() {
        let v = SymValue::DeviceAttr { handle: "power_meter".into(), attribute: "power".into() };
        assert_eq!(v.to_string(), "currentValue(power_meter.power)");
        assert_eq!(v.key(), "dev:power_meter.power");
        assert_eq!(SymValue::EventValue.key(), "evt.value");
        assert_eq!(SourceLabel::DeviceState.to_string(), "device-state");
    }
}
