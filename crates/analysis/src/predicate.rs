//! Path conditions and the simple custom feasibility checker.
//!
//! The paper observes that predicates in IoT apps are "extremely simple in the form of
//! comparisons between variables and constants (such as `x = c` and `x > c`)" and so
//! implements a custom checker for path conditions instead of a general SMT solver
//! (Sec. 4.2.1). This module reproduces that checker.

use crate::symbolic::{SourceLabel, SymValue};
use soteria_capability::AttributeValue;
use soteria_lang::BinOp;
use std::collections::BTreeMap;
use std::fmt;

/// One atomic comparison in a path condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Left-hand side (the tracked subject).
    pub lhs: SymValue,
    /// Comparison operator.
    pub op: BinOp,
    /// Right-hand side.
    pub rhs: SymValue,
}

impl Atom {
    /// Builds an atom.
    pub fn new(lhs: SymValue, op: BinOp, rhs: SymValue) -> Self {
        Atom { lhs, op, rhs }
    }

    /// The logically negated atom (`x > c` becomes `x <= c`).
    pub fn negated(&self) -> Atom {
        match self.op.negate_comparison() {
            Some(op) => Atom { lhs: self.lhs.clone(), op, rhs: self.rhs.clone() },
            None => Atom {
                // Non-comparison operators only appear in opaque atoms; represent the
                // negation as inequality with an unknown, which never prunes paths.
                lhs: self.lhs.clone(),
                op: BinOp::NotEq,
                rhs: SymValue::Unknown("negated-opaque".to_string()),
            },
        }
    }

    /// Normalises the atom so that a trackable subject is on the left and a constant on
    /// the right, when possible.
    pub fn normalised(&self) -> Atom {
        if self.lhs.as_const().is_some() && self.rhs.as_const().is_none() {
            let flipped = match self.op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            };
            Atom { lhs: self.rhs.clone(), op: flipped, rhs: self.lhs.clone() }
        } else {
            self.clone()
        }
    }

    /// Source labels of both operands (used for transition labeling).
    pub fn source_labels(&self) -> (SourceLabel, SourceLabel) {
        (self.lhs.source_label(), self.rhs.source_label())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A conjunction of atoms collected along one execution path.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct PathCondition {
    /// The conjunct atoms, in the order they were collected.
    pub atoms: Vec<Atom>,
}

impl PathCondition {
    /// The trivially true condition.
    pub fn top() -> Self {
        PathCondition::default()
    }

    /// Extends the condition with one more atom.
    pub fn and(&self, atom: Atom) -> Self {
        let mut atoms = self.atoms.clone();
        atoms.push(atom);
        PathCondition { atoms }
    }

    /// Extends the condition with several atoms.
    pub fn and_all(&self, extra: &[Atom]) -> Self {
        let mut atoms = self.atoms.clone();
        atoms.extend(extra.iter().cloned());
        PathCondition { atoms }
    }

    /// True if the condition has no atoms.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The paper's custom feasibility check: group atoms by subject (same identifier /
    /// device read / user input), derive numeric interval and symbolic equality
    /// constraints against constants, and report a contradiction when the constraints
    /// cannot be satisfied simultaneously. Opaque atoms never cause infeasibility.
    pub fn is_feasible(&self) -> bool {
        #[derive(Default)]
        struct Constraint {
            lower: Option<i64>,          // exclusive lower bound
            lower_inc: Option<i64>,      // inclusive lower bound
            upper: Option<i64>,          // exclusive upper bound
            upper_inc: Option<i64>,      // inclusive upper bound
            eq_num: Option<i64>,
            neq_nums: Vec<i64>,
            eq_sym: Option<String>,
            neq_syms: Vec<String>,
        }

        // Pairwise contradiction check for comparisons of the same subject against the
        // same (possibly symbolic) right-hand side: `x < t` and `x >= t` cannot hold
        // together even when `t` is a user input rather than a constant.
        let normalised: Vec<Atom> = self.atoms.iter().map(|a| a.normalised()).collect();
        for (i, a) in normalised.iter().enumerate() {
            for b in normalised.iter().skip(i + 1) {
                if a.lhs.key() == b.lhs.key()
                    && a.rhs.key() == b.rhs.key()
                    && !matches!(a.lhs, SymValue::Unknown(_))
                    && ops_contradict(a.op, b.op)
                {
                    return false;
                }
            }
        }

        let mut per_subject: BTreeMap<String, Constraint> = BTreeMap::new();
        for atom in &self.atoms {
            let atom = atom.normalised();
            // Only comparisons of a non-constant subject against a constant are
            // interpreted; everything else is treated as opaque (always satisfiable).
            let Some(rhs_const) = atom.rhs.as_const().cloned().or_else(|| {
                atom.rhs.as_number().map(AttributeValue::Number)
            }) else {
                continue;
            };
            if atom.lhs.as_const().is_some() {
                // Constant vs constant: evaluate directly.
                if let (Some(l), Some(r)) = (atom.lhs.as_number(), atom.rhs.as_number()) {
                    let holds = match atom.op {
                        BinOp::Eq => l == r,
                        BinOp::NotEq => l != r,
                        BinOp::Lt => l < r,
                        BinOp::Le => l <= r,
                        BinOp::Gt => l > r,
                        BinOp::Ge => l >= r,
                        _ => true,
                    };
                    if !holds {
                        return false;
                    }
                } else if let (Some(l), Some(r)) =
                    (atom.lhs.as_const(), atom.rhs.as_const())
                {
                    let holds = match atom.op {
                        BinOp::Eq => l == r,
                        BinOp::NotEq => l != r,
                        _ => true,
                    };
                    if !holds {
                        return false;
                    }
                }
                continue;
            }
            let entry = per_subject.entry(atom.lhs.key()).or_default();
            match (&rhs_const, atom.op) {
                (AttributeValue::Number(n), BinOp::Eq) => {
                    if let Some(prev) = entry.eq_num {
                        if prev != *n {
                            return false;
                        }
                    }
                    entry.eq_num = Some(*n);
                }
                (AttributeValue::Number(n), BinOp::NotEq) => entry.neq_nums.push(*n),
                (AttributeValue::Number(n), BinOp::Lt) => {
                    entry.upper = Some(entry.upper.map_or(*n, |u| u.min(*n)));
                }
                (AttributeValue::Number(n), BinOp::Le) => {
                    entry.upper_inc = Some(entry.upper_inc.map_or(*n, |u| u.min(*n)));
                }
                (AttributeValue::Number(n), BinOp::Gt) => {
                    entry.lower = Some(entry.lower.map_or(*n, |l| l.max(*n)));
                }
                (AttributeValue::Number(n), BinOp::Ge) => {
                    entry.lower_inc = Some(entry.lower_inc.map_or(*n, |l| l.max(*n)));
                }
                (AttributeValue::Symbol(s), BinOp::Eq) => {
                    if let Some(prev) = &entry.eq_sym {
                        if prev != s {
                            return false;
                        }
                    }
                    entry.eq_sym = Some(s.clone());
                }
                (AttributeValue::Symbol(s), BinOp::NotEq) => entry.neq_syms.push(s.clone()),
                _ => {}
            }
        }

        for c in per_subject.values() {
            // Effective bounds: tightest of inclusive/exclusive forms.
            let min_allowed = match (c.lower, c.lower_inc) {
                (Some(l), Some(li)) => Some((l + 1).max(li)),
                (Some(l), None) => Some(l + 1),
                (None, Some(li)) => Some(li),
                (None, None) => None,
            };
            let max_allowed = match (c.upper, c.upper_inc) {
                (Some(u), Some(ui)) => Some((u - 1).min(ui)),
                (Some(u), None) => Some(u - 1),
                (None, Some(ui)) => Some(ui),
                (None, None) => None,
            };
            if let (Some(lo), Some(hi)) = (min_allowed, max_allowed) {
                if lo > hi {
                    return false;
                }
            }
            if let Some(eq) = c.eq_num {
                if let Some(lo) = min_allowed {
                    if eq < lo {
                        return false;
                    }
                }
                if let Some(hi) = max_allowed {
                    if eq > hi {
                        return false;
                    }
                }
                if c.neq_nums.contains(&eq) {
                    return false;
                }
            }
            if let Some(eq) = &c.eq_sym {
                if c.neq_syms.contains(eq) {
                    return false;
                }
            }
        }
        true
    }

    /// Source labels appearing in the condition (deduplicated), used to label the
    /// transition in the state model.
    pub fn source_labels(&self) -> Vec<SourceLabel> {
        let mut labels: Vec<SourceLabel> = self
            .atoms
            .iter()
            .flat_map(|a| {
                let (l, r) = a.source_labels();
                [l, r]
            })
            .filter(|l| *l != SourceLabel::Unknown)
            .collect();
        labels.sort_by_key(|l| format!("{l}"));
        labels.dedup();
        labels
    }
}

/// True if two comparison operators over the same operands cannot hold simultaneously.
fn ops_contradict(a: BinOp, b: BinOp) -> bool {
    use BinOp::{Eq, Ge, Gt, Le, Lt, NotEq};
    matches!(
        (a, b),
        (Eq, NotEq)
            | (NotEq, Eq)
            | (Eq, Lt)
            | (Lt, Eq)
            | (Eq, Gt)
            | (Gt, Eq)
            | (Lt, Gt)
            | (Gt, Lt)
            | (Lt, Ge)
            | (Ge, Lt)
            | (Le, Gt)
            | (Gt, Le)
    )
}

impl fmt::Display for PathCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(" && "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power() -> SymValue {
        SymValue::DeviceAttr { handle: "pm".into(), attribute: "power".into() }
    }

    #[test]
    fn contradictory_numeric_bounds_are_infeasible() {
        // The paper's example: x > 1 && x < 0 is infeasible.
        let pc = PathCondition::top()
            .and(Atom::new(power(), BinOp::Gt, SymValue::number(1)))
            .and(Atom::new(power(), BinOp::Lt, SymValue::number(0)));
        assert!(!pc.is_feasible());

        // x > 50 && x < 5 (Thermostat-Energy-Control's two branches) is infeasible.
        let pc2 = PathCondition::top()
            .and(Atom::new(power(), BinOp::Gt, SymValue::number(50)))
            .and(Atom::new(power(), BinOp::Lt, SymValue::number(5)));
        assert!(!pc2.is_feasible());
    }

    #[test]
    fn compatible_bounds_are_feasible() {
        let pc = PathCondition::top()
            .and(Atom::new(power(), BinOp::Gt, SymValue::number(5)))
            .and(Atom::new(power(), BinOp::Lt, SymValue::number(50)));
        assert!(pc.is_feasible());
        assert!(PathCondition::top().is_feasible());
    }

    #[test]
    fn equality_conflicts() {
        let ev = SymValue::EventValue;
        let pc = PathCondition::top()
            .and(Atom::new(ev.clone(), BinOp::Eq, SymValue::string("detected")))
            .and(Atom::new(ev.clone(), BinOp::Eq, SymValue::string("clear")));
        assert!(!pc.is_feasible());

        let pc2 = PathCondition::top()
            .and(Atom::new(ev.clone(), BinOp::Eq, SymValue::string("detected")))
            .and(Atom::new(ev.clone(), BinOp::NotEq, SymValue::string("detected")));
        assert!(!pc2.is_feasible());

        let pc3 = PathCondition::top()
            .and(Atom::new(ev.clone(), BinOp::Eq, SymValue::string("detected")))
            .and(Atom::new(ev, BinOp::NotEq, SymValue::string("clear")));
        assert!(pc3.is_feasible());
    }

    #[test]
    fn numeric_equality_vs_bounds() {
        let bat = SymValue::DeviceAttr { handle: "b".into(), attribute: "battery".into() };
        let pc = PathCondition::top()
            .and(Atom::new(bat.clone(), BinOp::Eq, SymValue::number(80)))
            .and(Atom::new(bat, BinOp::Lt, SymValue::number(10)));
        assert!(!pc.is_feasible());
    }

    #[test]
    fn inclusive_bounds_edge_cases() {
        let x = SymValue::UserInput("x".into());
        // x >= 5 && x <= 5 is feasible (x = 5)…
        let pc = PathCondition::top()
            .and(Atom::new(x.clone(), BinOp::Ge, SymValue::number(5)))
            .and(Atom::new(x.clone(), BinOp::Le, SymValue::number(5)));
        assert!(pc.is_feasible());
        // …but x > 5 && x <= 5 is not.
        let pc2 = PathCondition::top()
            .and(Atom::new(x.clone(), BinOp::Gt, SymValue::number(5)))
            .and(Atom::new(x, BinOp::Le, SymValue::number(5)));
        assert!(!pc2.is_feasible());
    }

    #[test]
    fn opaque_atoms_never_prune() {
        let pc = PathCondition::top().and(Atom::new(
            SymValue::Unknown("http-response".into()),
            BinOp::Eq,
            SymValue::Unknown("other".into()),
        ));
        assert!(pc.is_feasible());
    }

    #[test]
    fn constant_vs_constant_is_evaluated() {
        let pc = PathCondition::top().and(Atom::new(
            SymValue::number(3),
            BinOp::Gt,
            SymValue::number(10),
        ));
        assert!(!pc.is_feasible());
        let pc2 = PathCondition::top().and(Atom::new(
            SymValue::string("on"),
            BinOp::Eq,
            SymValue::string("off"),
        ));
        assert!(!pc2.is_feasible());
    }

    #[test]
    fn normalisation_flips_constant_on_left() {
        let a = Atom::new(SymValue::number(50), BinOp::Lt, power());
        let n = a.normalised();
        assert_eq!(n.lhs, power());
        assert_eq!(n.op, BinOp::Gt);
    }

    #[test]
    fn negation() {
        let a = Atom::new(power(), BinOp::Gt, SymValue::number(50));
        assert_eq!(a.negated().op, BinOp::Le);
        let eq = Atom::new(SymValue::EventValue, BinOp::Eq, SymValue::string("wet"));
        assert_eq!(eq.negated().op, BinOp::NotEq);
    }

    #[test]
    fn display_and_labels() {
        let pc = PathCondition::top()
            .and(Atom::new(power(), BinOp::Gt, SymValue::number(50)))
            .and(Atom::new(SymValue::UserInput("thr".into()), BinOp::Lt, SymValue::number(10)));
        let s = pc.to_string();
        assert!(s.contains("currentValue(pm.power) > 50"));
        let labels = pc.source_labels();
        assert!(labels.contains(&SourceLabel::DeviceState));
        assert!(labels.contains(&SourceLabel::DeveloperDefined));
        assert!(labels.contains(&SourceLabel::UserDefined));
        assert_eq!(PathCondition::top().to_string(), "true");
    }
}
