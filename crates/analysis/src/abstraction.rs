//! Property abstraction of numerical-valued device attributes (Sec. 4.2.1).
//!
//! A thermostat with 45 temperature values and a power meter with 100 energy levels
//! would otherwise yield thousands of states. Soteria's property abstraction keeps one
//! abstract value per *source* that can flow into an actuated numeric attribute (plus
//! one value representing "the rest"), and partitions read-only numeric attributes at
//! the comparison cut-points used in path predicates.

use crate::dependence::analyze_numeric_attribute;
use crate::effects::TransitionSpec;
use crate::symbolic::SymValue;
use soteria_capability::{AttributeDomain, AttributeValue, CapabilityRegistry};
use soteria_ir::AppIr;

use std::collections::BTreeMap;

/// Key identifying one device attribute of the app: `(device handle, attribute)`.
pub type AttrKey = (String, String);

/// The abstract value domain of every device attribute of an app.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Abstraction {
    /// Abstract domains per attribute. Enumerated domains are kept exact; numeric
    /// domains are reduced to their sources / cut-point intervals plus `other`.
    pub domains: BTreeMap<AttrKey, Vec<AttributeValue>>,
    /// Concrete (unreduced) cardinality per attribute, for the Fig. 11 comparison.
    pub unreduced: BTreeMap<AttrKey, usize>,
}

impl Abstraction {
    /// Number of states before reduction (product of concrete attribute domain sizes).
    pub fn states_before(&self) -> usize {
        self.unreduced.values().product::<usize>().max(1)
    }

    /// Number of states after reduction (product of abstract domain sizes).
    pub fn states_after(&self) -> usize {
        self.domains.values().map(|d| d.len().max(1)).product::<usize>().max(1)
    }

    /// The abstract domain of one attribute.
    pub fn domain(&self, handle: &str, attribute: &str) -> Option<&[AttributeValue]> {
        self.domains.get(&(handle.to_string(), attribute.to_string())).map(|v| v.as_slice())
    }

    /// Maps a concrete written value onto the abstract domain of the attribute: exact
    /// abstract values are kept, anything else collapses to `other`.
    pub fn abstract_value(&self, handle: &str, attribute: &str, value: &SymValue) -> AttributeValue {
        let key = (handle.to_string(), attribute.to_string());
        let Some(domain) = self.domains.get(&key) else {
            return concrete_of(value);
        };
        // Symbolic (user input / state variable) writes map onto the user-defined
        // abstract value when one exists.
        if value.as_const().is_none() && value.as_number().is_none() {
            if let Some(user) = domain.iter().find(|v| v.as_symbol() == Some("user-defined")) {
                return user.clone();
            }
        }
        let concrete = concrete_of(value);
        if domain.contains(&concrete) {
            concrete
        } else {
            AttributeValue::symbol("other")
        }
    }
}

fn concrete_of(value: &SymValue) -> AttributeValue {
    match value.as_number() {
        Some(n) => AttributeValue::Number(n),
        None => match value.as_const() {
            Some(v) => v.clone(),
            None => AttributeValue::symbol("other"),
        },
    }
}

/// Computes the abstraction of every device attribute of an app.
///
/// `specs` are the app's transition specifications (used to harvest the comparison
/// cut-points of read-only numeric attributes). Passing an empty slice is allowed and
/// simply skips cut-point partitioning.
pub fn abstract_domains(
    ir: &AppIr,
    registry: &CapabilityRegistry,
    specs: &[TransitionSpec],
) -> Abstraction {
    let mut abstraction = Abstraction::default();
    for permission in &ir.permissions {
        let Some(capability) = registry.capability(&permission.capability) else { continue };
        for attr in &capability.attributes {
            let key = (permission.handle.clone(), attr.name.clone());
            abstraction.unreduced.insert(key.clone(), attr.domain.cardinality());
            match &attr.domain {
                AttributeDomain::Enumerated(values) => {
                    abstraction.domains.insert(
                        key,
                        values.iter().map(|v| AttributeValue::symbol(v.clone())).collect(),
                    );
                }
                AttributeDomain::Numeric { .. } => {
                    let dependence = analyze_numeric_attribute(
                        ir,
                        registry,
                        &permission.handle,
                        &attr.name,
                    );
                    let mut values: Vec<AttributeValue> = dependence
                        .constant_sources()
                        .into_iter()
                        .map(AttributeValue::Number)
                        .collect();
                    if dependence.has_symbolic_source() {
                        values.push(AttributeValue::symbol("user-defined"));
                    }
                    if values.is_empty() {
                        // Read-only numeric attribute: partition at predicate cut-points.
                        let cutpoints = cutpoints_for(specs, &permission.handle, &attr.name);
                        values = interval_values(&cutpoints);
                    } else {
                        values.push(AttributeValue::symbol("other"));
                    }
                    abstraction.domains.insert(key, values);
                }
            }
        }
    }
    // Location mode becomes a state attribute when the app subscribes to or changes it.
    if ir.subscribes_to_mode() || ir.changes_mode() {
        let modes = registry
            .enumerated_domain("location", "mode")
            .unwrap_or_else(|| vec!["home".into(), "away".into()]);
        let key = ("location".to_string(), "mode".to_string());
        abstraction.unreduced.insert(key.clone(), modes.len());
        abstraction
            .domains
            .insert(key, modes.into_iter().map(AttributeValue::Symbol).collect());
    }
    abstraction
}

/// Collects the numeric constants an attribute is compared against in any transition's
/// path condition.
fn cutpoints_for(specs: &[TransitionSpec], handle: &str, attribute: &str) -> Vec<i64> {
    let mut out = Vec::new();
    for spec in specs {
        for atom in &spec.condition.atoms {
            let atom = atom.normalised();
            let subject_matches = matches!(
                &atom.lhs,
                SymValue::DeviceAttr { handle: h, attribute: a } if h == handle && a == attribute
            );
            if subject_matches && atom.op.is_comparison() {
                if let Some(n) = atom.rhs.as_number() {
                    out.push(n);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds interval abstract values from sorted cut-points: `c1 < c2 < …` produce the
/// symbols `"<c1"`, `"c1..c2"`, …, `">=cn"`. No cut-points produce the single value
/// `"any"`.
fn interval_values(cutpoints: &[i64]) -> Vec<AttributeValue> {
    if cutpoints.is_empty() {
        return vec![AttributeValue::symbol("any")];
    }
    let mut values = Vec::with_capacity(cutpoints.len() + 1);
    values.push(AttributeValue::symbol(format!("<{}", cutpoints[0])));
    for window in cutpoints.windows(2) {
        values.push(AttributeValue::symbol(format!("{}..{}", window[0], window[1])));
    }
    values.push(AttributeValue::symbol(format!(">={}", cutpoints[cutpoints.len() - 1])));
    values
}

/// The ratio of reduction achieved (before / after), reported in the Fig. 11
/// reproduction.
pub fn reduction_factor(abstraction: &Abstraction) -> f64 {
    abstraction.states_before() as f64 / abstraction.states_after() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::executor::SymbolicExecutor;

    fn analyze(src: &str) -> (Abstraction, usize, usize) {
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("t", src, &registry).unwrap();
        let exec = SymbolicExecutor::new(&ir, &registry, AnalysisConfig::paper());
        let specs = exec.transition_specs();
        let a = abstract_domains(&ir, &registry, &specs);
        let before = a.states_before();
        let after = a.states_after();
        (a, before, after)
    }

    #[test]
    fn thermostat_setpoint_reduces_to_two_states() {
        // The paper's example: the heating setpoint is always set to the constant 68,
        // so its 45-value domain reduces to {68, other}.
        let src = r#"
            definition(name: "Thermo")
            preferences { section("d") { input "ther", "capability.thermostat" } }
            def installed() { subscribe(location, "mode", h) }
            def h(evt) {
                def temp = 68
                setTemp(temp)
            }
            def setTemp(t) { ther.setHeatingSetpoint(t) }
        "#;
        let (a, before, after) = analyze(src);
        let domain = a.domain("ther", "heatingSetpoint").unwrap();
        assert_eq!(domain, &[AttributeValue::Number(68), AttributeValue::symbol("other")]);
        assert!(before > after, "before={before} after={after}");
        assert!(reduction_factor(&a) > 10.0);
    }

    #[test]
    fn power_meter_partitions_at_predicate_cutpoints() {
        let src = r#"
            definition(name: "Energy")
            preferences { section("d") {
                input "the_switch", "capability.switch"
                input "power_meter", "capability.powerMeter"
            } }
            def installed() { subscribe(power_meter, "power", handler) }
            def handler(evt) {
                def power_val = power_meter.currentValue("power")
                if (power_val > 50) { the_switch.off() }
                if (power_val < 5) { the_switch.on() }
            }
        "#;
        let (a, before, after) = analyze(src);
        let domain = a.domain("power_meter", "power").unwrap();
        // Cut-points 5 and 50 yield three intervals.
        assert_eq!(domain.len(), 3);
        assert!(before >= 100);
        assert_eq!(after, 2 * 3); // switch × power intervals
    }

    #[test]
    fn unactuated_unread_numeric_attribute_collapses_to_one_value() {
        let src = r#"
            definition(name: "BatteryApp")
            preferences { section("d") {
                input "the_battery", "capability.battery"
                input "sw", "capability.switch"
            } }
            def installed() { subscribe(sw, "switch.on", h) }
            def h(evt) { }
        "#;
        let (a, _, after) = analyze(src);
        assert_eq!(a.domain("the_battery", "battery").unwrap().len(), 1);
        assert_eq!(after, 2);
    }

    #[test]
    fn user_defined_source_keeps_symbolic_value() {
        let src = r#"
            definition(name: "UserSetpoint")
            preferences { section("d") {
                input "ther", "capability.thermostat"
                input "target", "number"
            } }
            def installed() { subscribe(location, "mode", h) }
            def h(evt) { ther.setHeatingSetpoint(target) }
        "#;
        let (a, _, _) = analyze(src);
        let domain = a.domain("ther", "heatingSetpoint").unwrap();
        assert!(domain.contains(&AttributeValue::symbol("user-defined")));
        // A symbolic write maps to the user-defined abstract value; a concrete write of
        // a value outside the domain maps to `other`.
        assert_eq!(
            a.abstract_value("ther", "heatingSetpoint", &SymValue::UserInput("target".into())),
            AttributeValue::symbol("user-defined")
        );
        assert_eq!(
            a.abstract_value("ther", "heatingSetpoint", &SymValue::number(72)),
            AttributeValue::symbol("other")
        );
    }

    #[test]
    fn mode_included_when_subscribed() {
        let src = r#"
            definition(name: "ModeApp")
            preferences { section("d") { input "sw", "capability.switch" } }
            def installed() { subscribe(location, "mode", h) }
            def h(evt) { sw.on() }
        "#;
        let (a, _, _) = analyze(src);
        assert!(a.domain("location", "mode").is_some());
    }

    #[test]
    fn interval_labels() {
        assert_eq!(interval_values(&[]), vec![AttributeValue::symbol("any")]);
        assert_eq!(
            interval_values(&[5, 50]),
            vec![
                AttributeValue::symbol("<5"),
                AttributeValue::symbol("5..50"),
                AttributeValue::symbol(">=50"),
            ]
        );
    }

    #[test]
    fn abstract_value_exact_match_kept() {
        let src = r#"
            definition(name: "Thermo")
            preferences { section("d") { input "ther", "capability.thermostat" } }
            def installed() { subscribe(location, "mode", h) }
            def h(evt) { ther.setHeatingSetpoint(68) }
        "#;
        let (a, _, _) = analyze(src);
        assert_eq!(
            a.abstract_value("ther", "heatingSetpoint", &SymValue::number(68)),
            AttributeValue::Number(68)
        );
    }
}
