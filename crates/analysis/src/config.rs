//! Analysis configuration (and ablation switches).

/// Configuration of the path-sensitive analysis.
///
/// The defaults correspond to the paper's system; the flags exist so the benches can
/// ablate individual design choices (path sensitivity, ESP merging, infeasible-path
/// pruning, the reflection over-approximation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Explore paths separately and label transitions with path predicates
    /// (Sec. 4.2.2). When false, one flow-insensitive path collecting every effect is
    /// produced (the "earlier version of Soteria" with coarse labels).
    pub path_sensitive: bool,
    /// Merge paths whose end states agree, following the ESP algorithm.
    pub esp_merge: bool,
    /// Discard paths whose path condition is unsatisfiable according to the simple
    /// custom checker.
    pub prune_infeasible: bool,
    /// Over-approximate calls by reflection to every method of the app (Sec. 4.2.3).
    /// When false, reflective calls are treated as no-ops.
    pub reflection_over_approx: bool,
    /// Maximum method-inlining depth (the paper uses depth-one call-site sensitivity
    /// for matching calls and returns; inlining two levels covers the corpus's
    /// handler → helper → getter chains).
    pub inline_depth: usize,
    /// Hard cap on the number of concurrently tracked paths per handler.
    pub max_paths: usize,
    /// Worker threads for the analysis fan-out sites (batch app analysis, property
    /// sweeps, union lifts). `0` means auto: the `SOTERIA_THREADS` environment
    /// variable if set, otherwise the machine's available parallelism. Results are
    /// byte-identical at every value.
    pub threads: usize,
    /// State-count threshold for the property-level check fan-out
    /// (`soteria_checker::check_all_parallel`). `0` means auto: the
    /// `SOTERIA_SHARD_STATES` environment variable if set, otherwise
    /// `soteria_checker::PARALLEL_UNIVERSE` (2,048 states). Like `threads`,
    /// thresholds only move work between schedules — results are byte-identical
    /// at every value.
    pub property_shard_states: usize,
    /// State-count threshold for in-formula fixpoint sharding
    /// (`ModelChecker::with_sharding`). `0` means auto: `SOTERIA_SHARD_STATES`
    /// if set, otherwise `soteria_checker::FIXPOINT_SHARD_STATES` (16,384
    /// states). Byte-identical at every value.
    pub fixpoint_shard_states: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            path_sensitive: true,
            esp_merge: true,
            prune_infeasible: true,
            reflection_over_approx: true,
            inline_depth: 3,
            max_paths: 256,
            threads: 0,
            property_shard_states: 0,
            fixpoint_shard_states: 0,
        }
    }
}

impl AnalysisConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Ablation: path-insensitive analysis.
    pub fn without_path_sensitivity() -> Self {
        AnalysisConfig { path_sensitive: false, ..Self::default() }
    }

    /// Ablation: no ESP merging.
    pub fn without_esp_merge() -> Self {
        AnalysisConfig { esp_merge: false, ..Self::default() }
    }

    /// Ablation: no infeasible-path pruning.
    pub fn without_pruning() -> Self {
        AnalysisConfig { prune_infeasible: false, ..Self::default() }
    }

    /// A stable 64-bit fingerprint of every configuration field that can change
    /// an analysis *result* (FNV-1a over a fixed field encoding).
    ///
    /// `threads` and the two sharding thresholds are deliberately excluded:
    /// worker counts and shard thresholds only change scheduling, never output
    /// (the determinism gates enforce this), so a result computed at one
    /// setting is valid for all of them. The service's content-addressed cache
    /// keys on this fingerprint plus the app source.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let fields: [u64; 6] = [
            self.path_sensitive as u64,
            self.esp_merge as u64,
            self.prune_infeasible as u64,
            self.reflection_over_approx as u64,
            self.inline_depth as u64,
            self.max_paths as u64,
        ];
        let mut hash = FNV_OFFSET;
        for field in fields {
            for byte in field.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AnalysisConfig::paper();
        assert!(c.path_sensitive);
        assert!(c.esp_merge);
        assert!(c.prune_infeasible);
        assert!(c.reflection_over_approx);
        assert!(c.max_paths >= 64);
    }

    #[test]
    fn ablations_flip_one_flag() {
        assert!(!AnalysisConfig::without_path_sensitivity().path_sensitive);
        assert!(!AnalysisConfig::without_esp_merge().esp_merge);
        assert!(!AnalysisConfig::without_pruning().prune_infeasible);
    }

    #[test]
    fn fingerprint_ignores_threads_but_tracks_result_fields() {
        let base = AnalysisConfig::paper();
        let threaded = AnalysisConfig { threads: 8, ..base.clone() };
        assert_eq!(base.fingerprint(), threaded.fingerprint());
        let sharded = AnalysisConfig {
            property_shard_states: 1,
            fixpoint_shard_states: 1,
            ..base.clone()
        };
        assert_eq!(base.fingerprint(), sharded.fingerprint());
        assert_ne!(base.fingerprint(), AnalysisConfig::without_esp_merge().fingerprint());
        assert_ne!(
            base.fingerprint(),
            AnalysisConfig { inline_depth: base.inline_depth + 1, ..base.clone() }.fingerprint()
        );
    }
}
