//! Backward dependence analysis for numerical-valued device attributes (Algorithm 1).
//!
//! The goal of the algorithm is to identify the set of possible *sources* that a
//! numerical-valued attribute can take during the execution of an app. The worklist is
//! initialised with the identifiers used in the arguments of device action calls that
//! change the attribute; definitions are followed backwards (including through
//! parameter passing, treated as inter-procedural definitions), and the dependence
//! relation `dep` is recorded. The resulting sources are developer-defined constants,
//! user inputs, device-state reads, or persistent state variables.

use crate::symbolic::SymValue;
use soteria_capability::{CapabilityRegistry, EffectValue};
use soteria_ir::AppIr;
use soteria_lang::{Expr, Stmt};
use std::collections::BTreeSet;

/// A use or definition point: `(method, identifier)` — the paper labels worklist
/// entries with node information; the method name plus identifier is sufficient at the
/// granularity our corpus requires.
pub type DepPoint = (String, String);

/// Result of the dependence analysis for one `(device handle, attribute)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependenceResult {
    /// The dependence relation: `(use point, definition point)` pairs.
    pub dep: Vec<(DepPoint, DepPoint)>,
    /// The sources that may flow into the attribute.
    pub sources: Vec<SymValue>,
}

impl DependenceResult {
    /// The constant numeric source values (each becomes its own abstract state).
    pub fn constant_sources(&self) -> Vec<i64> {
        let mut out: Vec<i64> = self.sources.iter().filter_map(|s| s.as_number()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if any source is a user input or another non-constant value, in which case
    /// the abstract domain keeps a symbolic "user/other" value.
    pub fn has_symbolic_source(&self) -> bool {
        self.sources.iter().any(|s| s.as_number().is_none())
    }
}

/// Runs Algorithm 1 for the numeric `attribute` of device `handle`.
pub fn analyze_numeric_attribute(
    ir: &AppIr,
    registry: &CapabilityRegistry,
    handle: &str,
    attribute: &str,
) -> DependenceResult {
    let mut result = DependenceResult::default();
    let mut worklist: Vec<(String, Expr)> = Vec::new();

    // Initialise the worklist with the arguments of device action calls that set the
    // attribute (Algorithm 1, lines 2–4).
    let Some(capability) = ir.capability_of(handle) else { return result };
    for method in ir.program.methods() {
        for stmt in &method.body.stmts {
            stmt.walk_exprs(&mut |e| {
                let Expr::MethodCall { object: Some(obj), method: action, args, .. } = e else {
                    return;
                };
                let Expr::Ident(obj_handle) = obj.as_ref() else { return };
                if obj_handle != handle {
                    return;
                }
                let Some(effects) = registry.action_effects(capability, action) else { return };
                for effect in effects {
                    if effect.attribute != attribute {
                        continue;
                    }
                    if let EffectValue::Argument(i) = effect.value {
                        if let Some(arg) = args.get(i) {
                            worklist.push((method.name.clone(), arg.value.clone()));
                        }
                    }
                }
            });
        }
    }

    // Worklist loop (Algorithm 1, lines 5–12).
    let mut done: BTreeSet<DepPoint> = BTreeSet::new();
    while let Some((method, expr)) = worklist.pop() {
        match &expr {
            Expr::Number(n) => result.sources.push(SymValue::number(*n)),
            Expr::Str(s) => result.sources.push(SymValue::string(s.clone())),
            Expr::Ident(id) => {
                let point = (method.clone(), id.clone());
                if done.contains(&point) {
                    continue;
                }
                done.insert(point.clone());
                resolve_identifier(ir, &method, id, &point, &mut worklist, &mut result);
            }
            Expr::Binary { lhs, rhs, .. } => {
                // Simple arithmetic (`x = y + 10`): both operands are followed.
                worklist.push((method.clone(), lhs.as_ref().clone()));
                worklist.push((method.clone(), rhs.as_ref().clone()));
            }
            Expr::Elvis { value, default } => {
                worklist.push((method.clone(), value.as_ref().clone()));
                worklist.push((method.clone(), default.as_ref().clone()));
            }
            Expr::Property { object, name } => {
                if let Expr::Ident(o) = object.as_ref() {
                    if o == "state" || o == "atomicState" {
                        result.sources.push(SymValue::StateVar(name.clone()));
                        continue;
                    }
                    if ir.capability_of(o).is_some() && name.starts_with("current") {
                        result.sources.push(SymValue::DeviceAttr {
                            handle: o.clone(),
                            attribute: name.trim_start_matches("current").to_lowercase(),
                        });
                        continue;
                    }
                }
                result.sources.push(SymValue::Unknown(format!("prop:{name}")));
            }
            Expr::MethodCall { object, method: callee, args, .. } => {
                resolve_call(ir, &method, object.as_deref(), callee, args, &mut worklist, &mut result);
            }
            other => {
                result.sources.push(SymValue::Unknown(format!("{other:?}")));
            }
        }
    }

    result.sources.sort();
    result.sources.dedup();
    result.dep.sort();
    result.dep.dedup();
    result
}

/// Resolves one identifier use to its definitions (Algorithm 1, line 8) within the
/// method, through user inputs, and through parameter passing.
fn resolve_identifier(
    ir: &AppIr,
    method: &str,
    id: &str,
    use_point: &DepPoint,
    worklist: &mut Vec<(String, Expr)>,
    result: &mut DependenceResult,
) {
    // User inputs are terminal sources.
    if ir.user_inputs.iter().any(|u| u.handle == id) {
        result.sources.push(SymValue::UserInput(id.to_string()));
        return;
    }
    let Some(def) = ir.program.method(method) else {
        result.sources.push(SymValue::Unknown(format!("ident:{id}")));
        return;
    };
    let mut found_def = false;
    let mut defs: Vec<Expr> = Vec::new();
    collect_defs(&def.body.stmts, id, &mut defs);
    for rhs in defs {
        found_def = true;
        if let Expr::Ident(rhs_id) = &rhs {
            result.dep.push((use_point.clone(), (method.to_string(), rhs_id.clone())));
        }
        worklist.push((method.to_string(), rhs));
    }
    // Parameter passing is treated as an inter-procedural definition: find call sites
    // of `method` in other methods and follow the corresponding argument.
    if let Some(param_idx) = def.params.iter().position(|p| p == id) {
        for caller in ir.program.methods() {
            for stmt in &caller.body.stmts {
                stmt.walk_exprs(&mut |e| {
                    if let Expr::MethodCall { object: None, method: callee, args, .. } = e {
                        if callee == method {
                            if let Some(arg) = args.get(param_idx) {
                                found_def = true;
                                if let Expr::Ident(arg_id) = &arg.value {
                                    result.dep.push((
                                        use_point.clone(),
                                        (caller.name.clone(), arg_id.clone()),
                                    ));
                                }
                                worklist.push((caller.name.clone(), arg.value.clone()));
                            }
                        }
                    }
                });
            }
        }
    }
    if !found_def {
        result.sources.push(SymValue::Unknown(format!("ident:{id}")));
    }
}

/// Follows a call on the right-hand side of a definition: device reads become sources,
/// app-defined getters are followed through their `return` expressions.
fn resolve_call(
    ir: &AppIr,
    method: &str,
    object: Option<&Expr>,
    callee: &str,
    args: &[soteria_lang::Arg],
    worklist: &mut Vec<(String, Expr)>,
    result: &mut DependenceResult,
) {
    if let Some(Expr::Ident(handle)) = object {
        if ir.capability_of(handle).is_some()
            && matches!(callee, "currentValue" | "currentState" | "latestValue")
        {
            let attr = args
                .first()
                .and_then(|a| a.value.as_str())
                .unwrap_or("value")
                .to_string();
            result.sources.push(SymValue::DeviceAttr { handle: handle.clone(), attribute: attr });
            return;
        }
    }
    if object.is_none() {
        if let Some(target) = ir.program.method(callee) {
            let mut returns = Vec::new();
            collect_returns(&target.body.stmts, &mut returns);
            for r in returns {
                worklist.push((target.name.clone(), r));
            }
            return;
        }
    }
    let _ = method;
    result.sources.push(SymValue::Unknown(format!("call:{callee}")));
}

/// Collects the right-hand sides of every definition of `id` in a statement block.
fn collect_defs(stmts: &[Stmt], id: &str, out: &mut Vec<Expr>) {
    for stmt in stmts {
        match stmt {
            Stmt::LocalDef { name, init: Some(rhs), .. } if name == id => out.push(rhs.clone()),
            Stmt::Assign { target: soteria_lang::LValue::Ident(name), value, .. } if name == id => {
                out.push(value.clone())
            }
            Stmt::If { then_block, else_block, .. } => {
                collect_defs(&then_block.stmts, id, out);
                if let Some(b) = else_block {
                    collect_defs(&b.stmts, id, out);
                }
            }
            _ => {}
        }
    }
}

/// Collects the expressions of every `return` statement in a block.
fn collect_returns(stmts: &[Stmt], out: &mut Vec<Expr>) {
    for stmt in stmts {
        match stmt {
            Stmt::Return { value: Some(e), .. } => out.push(e.clone()),
            Stmt::If { then_block, else_block, .. } => {
                collect_returns(&then_block.stmts, out);
                if let Some(b) = else_block {
                    collect_returns(&b.stmts, out);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const THERMO: &str = r#"
        definition(name: "Thermostat-Energy-Control")
        preferences {
            section("d") {
                input "ther", "capability.thermostat"
                input "user_temp", "number", title: "target"
            }
        }
        def installed() { subscribe(location, "mode", modeChangeHandler) }
        def modeChangeHandler(evt) {
            def temp = 68
            setTemp(temp)
        }
        def setTemp(t) {
            ther.setHeatingSetpoint(t)
        }
    "#;

    fn build(src: &str) -> (AppIr, CapabilityRegistry) {
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("t", src, &registry).unwrap();
        (ir, registry)
    }

    #[test]
    fn paper_fig6_example_resolves_to_constant_68() {
        let (ir, registry) = build(THERMO);
        let result = analyze_numeric_attribute(&ir, &registry, "ther", "heatingSetpoint");
        assert_eq!(result.constant_sources(), vec![68]);
        assert!(!result.has_symbolic_source());
        // The dep relation records (setTemp:t, modeChangeHandler:temp), mirroring the
        // paper's (6:t, 3:temp) entry.
        assert!(result.dep.iter().any(|(u, d)| u.1 == "t" && d.1 == "temp"));
    }

    #[test]
    fn user_input_source_is_kept_symbolic() {
        let src = r#"
            definition(name: "UserTemp")
            preferences {
                section("d") {
                    input "ther", "capability.thermostat"
                    input "user_temp", "number"
                }
            }
            def installed() { subscribe(location, "mode", h) }
            def h(evt) {
                def t = user_temp
                ther.setHeatingSetpoint(t)
            }
        "#;
        let (ir, registry) = build(src);
        let result = analyze_numeric_attribute(&ir, &registry, "ther", "heatingSetpoint");
        assert!(result.constant_sources().is_empty());
        assert!(result.has_symbolic_source());
        assert!(result.sources.contains(&SymValue::UserInput("user_temp".into())));
    }

    #[test]
    fn arithmetic_on_user_input_follows_both_operands() {
        // Footnote 3's pattern: user input stored in y, x = y + 10, attribute set to x.
        let src = r#"
            definition(name: "Arith")
            preferences {
                section("d") {
                    input "the_level", "capability.switchLevel"
                    input "y", "number"
                }
            }
            def installed() { subscribe(location, "mode", h) }
            def h(evt) {
                def x = y + 10
                the_level.setLevel(x)
            }
        "#;
        let (ir, registry) = build(src);
        let result = analyze_numeric_attribute(&ir, &registry, "the_level", "level");
        assert!(result.sources.contains(&SymValue::UserInput("y".into())));
        assert_eq!(result.constant_sources(), vec![10]);
    }

    #[test]
    fn no_action_calls_means_no_sources() {
        let (ir, registry) = build(THERMO);
        let result = analyze_numeric_attribute(&ir, &registry, "ther", "coolingSetpoint");
        assert!(result.sources.is_empty());
        assert!(result.dep.is_empty());
    }

    #[test]
    fn state_variable_source() {
        let src = r#"
            definition(name: "StateSource")
            preferences { section("d") { input "the_level", "capability.switchLevel" } }
            def installed() { subscribe(location, "mode", h) }
            def h(evt) {
                def lvl = state.savedLevel
                the_level.setLevel(lvl)
            }
        "#;
        let (ir, registry) = build(src);
        let result = analyze_numeric_attribute(&ir, &registry, "the_level", "level");
        assert!(result.sources.contains(&SymValue::StateVar("savedLevel".into())));
    }
}
