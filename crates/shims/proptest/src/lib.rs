//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this workspace ships a minimal
//! drop-in covering the surface the pipeline property tests use: the [`Strategy`]
//! trait over integer ranges and tuples, [`ProptestConfig::with_cases`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros. Sampling is a
//! deterministic splitmix64 sequence, so failures reproduce exactly across runs; there
//! is no shrinking.

use std::ops::Range;

/// Deterministic RNG (splitmix64) used to drive sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG with a fixed seed so test runs are reproducible.
    pub fn deterministic() -> Self {
        TestRng { state: 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator, mirroring proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        let len = self.end.saturating_sub(self.start).max(1);
        self.start + (rng.next_u64() as usize) % len
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        let len = self.end.saturating_sub(self.start).max(1);
        self.start + (rng.next_u64() as u32) % len
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        let len = (self.end - self.start).max(1) as u64;
        self.start + (rng.next_u64() % len) as i64
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Per-test configuration, mirroring proptest's type of the same name.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configures the number of cases to run.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Declares property tests: each test body runs once per sampled case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( $(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = $strat;
                let mut rng = $crate::TestRng::deterministic();
                for _ in 0..config.cases {
                    let $pat = $crate::Strategy::sample(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
    ( $( $(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block )* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($pat in $strat) $body )*
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}
