//! Offline stand-in for the Criterion benchmark crate.
//!
//! The build container has no network access to crates.io, so this workspace ships a
//! minimal drop-in with the API surface the benches use: [`Criterion`],
//! [`BenchmarkGroup`], `bench_function`, `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is honest wall-clock
//! measurement (warm-up pass + `sample_size` measured iterations) rather than
//! Criterion's full statistical machinery; each result prints mean/min/max and is
//! appended as a JSON line to `$CRITERION_SHIM_OUT` when that variable is set, which
//! is how `BENCH_pr1.json` is produced.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark identifier (`group/function`).
    pub id: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Number of measured iterations.
    pub iterations: usize,
}

impl Sample {
    fn json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"iterations\":{}}}",
            self.id.replace('"', "'"),
            self.mean.as_nanos(),
            self.min.as_nanos(),
            self.max.as_nanos(),
            self.iterations
        );
        s
    }
}

/// The timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Runs the routine once as warm-up, then `iterations` measured times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and records the result.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher { samples: Vec::new(), iterations: self.sample_size };
        f(&mut bencher);
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let sample = Sample {
            id: full_id,
            mean: total / n as u32,
            min: bencher.samples.iter().min().copied().unwrap_or_default(),
            max: bencher.samples.iter().max().copied().unwrap_or_default(),
            iterations: n,
        };
        println!(
            "{:<60} mean {:>12?}  min {:>12?}  max {:>12?}  ({} iters)",
            sample.id, sample.mean, sample.min, sample.max, sample.iterations
        );
        self.criterion.record(sample);
        self
    }

    /// Flushes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Shim for `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Sample>,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        drop(group);
        self
    }

    fn record(&mut self, sample: Sample) {
        if let Ok(path) = std::env::var("CRITERION_SHIM_OUT") {
            use std::io::Write;
            if let Ok(mut f) =
                std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = writeln!(f, "{}", sample.json());
            }
        }
        self.results.push(sample);
    }

    /// All recorded samples.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }
}

/// Re-export so existing `use std::hint::black_box` call sites keep their meaning if
/// they switch to `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a set of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
