//! Fixed-size bit sets used by the symbolic (set-based) model-checking engine.
//!
//! NuSMV represents state sets with BDDs; for the model sizes Soteria produces (tens
//! to a few thousand states) packed bit vectors give the same fixpoint algorithms with
//! exact semantics and predictable performance.

/// A fixed-capacity set of state indices backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` states.
    pub fn empty(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// The full set over a universe of `len` states.
    pub fn full(len: usize) -> Self {
        let mut set = BitSet { words: vec![u64::MAX; len.div_ceil(64)], len };
        let extra = set.words.len() * 64 - len;
        if extra > 0 {
            if let Some(last) = set.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
        set
    }

    /// The universe size.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts a state index.
    pub fn insert(&mut self, index: usize) {
        debug_assert!(index < self.len);
        self.words[index / 64] |= 1 << (index % 64);
    }

    /// Removes a state index.
    pub fn remove(&mut self, index: usize) {
        debug_assert!(index < self.len);
        self.words[index / 64] &= !(1 << (index % 64));
    }

    /// Membership test.
    pub fn contains(&self, index: usize) -> bool {
        index < self.len && (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Copies `len` bits of `src` starting at `src_start` into this set starting
    /// at `dst_start`; destination bits outside the range are untouched. A
    /// word-level blit — the incremental Kripke rebuild splices the unchanged
    /// regions of every label row through this instead of testing and setting
    /// tens of thousands of bits one at a time.
    pub(crate) fn copy_range(&mut self, src: &BitSet, src_start: usize, dst_start: usize, len: usize) {
        debug_assert!(src_start + len <= src.len && dst_start + len <= self.len);
        let mut copied = 0;
        while copied < len {
            let dst_bit = dst_start + copied;
            let word = dst_bit / 64;
            let bit = dst_bit % 64;
            let chunk = (64 - bit).min(len - copied);
            let bits = src.read_bits(src_start + copied, chunk);
            let mask =
                if chunk == 64 { u64::MAX } else { ((1u64 << chunk) - 1) << bit };
            self.words[word] = (self.words[word] & !mask) | (bits << bit);
            copied += chunk;
        }
    }

    /// Reads `count` (at most 64) bits starting at bit `start`, as the low bits
    /// of the returned word.
    fn read_bits(&self, start: usize, count: usize) -> u64 {
        let word = start / 64;
        let bit = start % 64;
        let lo = self.words[word] >> bit;
        let hi = if bit == 0 || word + 1 >= self.words.len() {
            0
        } else {
            self.words[word + 1] << (64 - bit)
        };
        let v = lo | hi;
        if count == 64 { v } else { v & ((1u64 << count) - 1) }
    }

    /// The smallest member at index `start` or later, if any. A word-skipping
    /// scan — the incremental Kripke rebuild uses it to locate each atom's
    /// first occurrence without walking states.
    pub(crate) fn first_set_at_or_after(&self, start: usize) -> Option<usize> {
        if start >= self.len {
            return None;
        }
        let mut word = start / 64;
        let mut bits = self.words[word] & (u64::MAX << (start % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= self.words.len() {
                return None;
            }
            bits = self.words[word];
        }
    }

    /// Set union (in place).
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Set intersection (in place).
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Set difference (in place): removes every member of `other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The backing words, exposed for the checker's sharded fixpoints: word
    /// index `i` covers states `i * 64 .. (i + 1) * 64`, and bits beyond the
    /// universe are always zero (the representation is canonical, which is what
    /// makes equal sets byte-identical).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Set complement (in place), restricted to the universe.
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        // Clear bits beyond the universe.
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            let mask = u64::MAX >> extra;
            if let Some(last) = self.words.last_mut() {
                *last &= mask;
            }
        }
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over member indices in increasing order.
    ///
    /// The iterator walks the set words and peels bits with `trailing_zeros`, so a
    /// sparse set over a large universe is traversed in O(words + members) rather
    /// than O(universe) membership tests — this is what lets the checker's pre-image
    /// iterate "set words of the target bitset rather than bit-by-bit".
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(i, &word)| WordBits { word, base: i * 64 })
    }
}

/// Iterator over the set bits of one 64-bit word.
struct WordBits {
    word: u64,
    base: usize,
}

impl Iterator for WordBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::empty(100);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1));
        assert!(!s.contains(100));
        assert_eq!(s.count(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn set_operations() {
        let mut a = BitSet::empty(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::empty(10);
        b.insert(2);
        b.insert(3);
        let mut union = a.clone();
        union.union_with(&b);
        assert_eq!(union.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![2]);
        assert!(inter.is_subset_of(&a));
        assert!(inter.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn complement_respects_universe() {
        let mut s = BitSet::empty(70);
        s.insert(0);
        s.insert(69);
        s.complement();
        assert!(!s.contains(0));
        assert!(!s.contains(69));
        assert!(s.contains(1));
        assert_eq!(s.count(), 68);
        // Double complement restores the original.
        s.complement();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 69]);
    }

    #[test]
    fn iter_skips_empty_words() {
        let mut s = BitSet::empty(400);
        for i in [0, 63, 64, 127, 320, 399] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 320, 399]);
        assert_eq!(BitSet::empty(400).iter().count(), 0);
        assert_eq!(BitSet::full(130).iter().collect::<Vec<_>>(), (0..130).collect::<Vec<_>>());
    }

    #[test]
    fn first_set_scan() {
        let mut s = BitSet::empty(200);
        for i in [5, 64, 130, 199] {
            s.insert(i);
        }
        assert_eq!(s.first_set_at_or_after(0), Some(5));
        assert_eq!(s.first_set_at_or_after(5), Some(5));
        assert_eq!(s.first_set_at_or_after(6), Some(64));
        assert_eq!(s.first_set_at_or_after(65), Some(130));
        assert_eq!(s.first_set_at_or_after(131), Some(199));
        assert_eq!(s.first_set_at_or_after(200), None);
        assert_eq!(BitSet::empty(100).first_set_at_or_after(0), None);
    }

    #[test]
    fn copy_range_blits_unaligned() {
        let mut src = BitSet::empty(300);
        for i in [0, 1, 63, 64, 100, 163, 255, 299] {
            src.insert(i);
        }
        let mut dst = BitSet::full(300);
        dst.copy_range(&src, 60, 7, 210);
        for i in 0..300 {
            let expected = if (7..217).contains(&i) { src.contains(i - 7 + 60) } else { true };
            assert_eq!(dst.contains(i), expected, "bit {i}");
        }
    }

    #[test]
    fn full_set() {
        let s = BitSet::full(65);
        assert_eq!(s.count(), 65);
        assert!(s.contains(64));
        assert_eq!(s.capacity(), 65);
    }
}
