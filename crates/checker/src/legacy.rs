//! The pre-CSR model checker, preserved verbatim in behaviour as the "old" side of
//! the engine-equivalence gate and the `verification_old_vs_new` measurement.
//!
//! This is the checker the analyzer used before the frontier rewrite:
//!
//! * predecessors are rebuilt per checker into `Vec<Vec<usize>>` adjacency (the CSR
//!   arrays in [`Kripke`] are read once at construction, exactly like the seed read
//!   the per-state successor lists);
//! * the pre-image scans the whole state universe bit-by-bit;
//! * `E [a U b]` and `EG f` are round-based fixpoints that recompute the pre-image
//!   of the **entire** accumulated set every round — O(rounds × E).
//!
//! Semantics are identical to [`crate::checker::ModelChecker`]; only the cost model
//! differs. Keep this module in sync with nothing — it is a frozen baseline.

use crate::bitset::BitSet;
use crate::ctl::Ctl;
use crate::checker::CheckResult;
use crate::kripke::Kripke;

/// The pre-PR round-based symbolic checker (frozen baseline).
pub struct LegacyModelChecker<'a> {
    kripke: &'a Kripke,
    predecessors: Vec<Vec<usize>>,
}

impl<'a> LegacyModelChecker<'a> {
    /// Creates a checker, rebuilding the reverse relation per instance as the seed
    /// did.
    pub fn new(kripke: &'a Kripke) -> Self {
        let mut predecessors = vec![Vec::new(); kripke.state_count()];
        for from in 0..kripke.state_count() {
            for &to in kripke.successors(from) {
                predecessors[to as usize].push(from);
            }
        }
        LegacyModelChecker { kripke, predecessors }
    }

    /// The set of states satisfying a formula (no memoization).
    pub fn sat(&self, formula: &Ctl) -> BitSet {
        let n = self.kripke.state_count();
        match formula {
            Ctl::True => BitSet::full(n),
            Ctl::False => BitSet::empty(n),
            Ctl::Atom(a) => match self.kripke.atom_index(a) {
                Some(idx) => self.kripke.atom_row(idx).clone(),
                None => BitSet::empty(n),
            },
            Ctl::Not(f) => {
                let mut set = self.sat(f);
                set.complement();
                set
            }
            Ctl::And(a, b) => {
                let mut set = self.sat(a);
                set.intersect_with(&self.sat(b));
                set
            }
            Ctl::Or(a, b) => {
                let mut set = self.sat(a);
                set.union_with(&self.sat(b));
                set
            }
            Ctl::Implies(a, b) => {
                let mut not_a = self.sat(a);
                not_a.complement();
                not_a.union_with(&self.sat(b));
                not_a
            }
            Ctl::Ex(f) => self.pre_exists(&self.sat(f)),
            Ctl::Ef(f) => self.least_fixpoint_eu(&BitSet::full(n), &self.sat(f)),
            Ctl::Eu(a, b) => self.least_fixpoint_eu(&self.sat(a), &self.sat(b)),
            Ctl::Eg(f) => self.greatest_fixpoint_eg(&self.sat(f)),
            Ctl::Ax(f) => {
                let mut not_f = self.sat(f);
                not_f.complement();
                let mut result = self.pre_exists(&not_f);
                result.complement();
                result
            }
            Ctl::Af(f) => {
                let mut not_f = self.sat(f);
                not_f.complement();
                let mut result = self.greatest_fixpoint_eg(&not_f);
                result.complement();
                result
            }
            Ctl::Ag(f) => {
                let mut not_f = self.sat(f);
                not_f.complement();
                let mut result = self.least_fixpoint_eu(&BitSet::full(n), &not_f);
                result.complement();
                result
            }
            Ctl::Au(a, b) => {
                let sat_a = self.sat(a);
                let sat_b = self.sat(b);
                let mut not_a = sat_a.clone();
                not_a.complement();
                let mut not_b = sat_b.clone();
                not_b.complement();
                let mut not_a_and_not_b = not_a;
                not_a_and_not_b.intersect_with(&not_b);
                let mut bad = self.least_fixpoint_eu(&not_b, &not_a_and_not_b);
                bad.union_with(&self.greatest_fixpoint_eg(&not_b));
                bad.complement();
                bad
            }
        }
    }

    /// Bit-by-bit pre-image: tests membership of every state in the universe.
    fn pre_exists(&self, target: &BitSet) -> BitSet {
        let n = self.kripke.state_count();
        let mut result = BitSet::empty(n);
        for to in 0..n {
            if target.contains(to) {
                for &from in &self.predecessors[to] {
                    result.insert(from);
                }
            }
        }
        result
    }

    /// Round-based least fixpoint: re-derives the pre-image of the whole accumulated
    /// set each round.
    fn least_fixpoint_eu(&self, sat_a: &BitSet, sat_b: &BitSet) -> BitSet {
        let mut result = sat_b.clone();
        loop {
            let mut pre = self.pre_exists(&result);
            pre.intersect_with(sat_a);
            pre.union_with(&result);
            if pre == result {
                return result;
            }
            result = pre;
        }
    }

    /// Round-based greatest fixpoint.
    fn greatest_fixpoint_eg(&self, sat_f: &BitSet) -> BitSet {
        let mut result = sat_f.clone();
        loop {
            let mut pre = self.pre_exists(&result);
            pre.intersect_with(sat_f);
            if pre == result {
                return result;
            }
            result = pre;
        }
    }

    /// Checks a formula and extracts a counter-example on failure, exactly as the
    /// seed checker did (the AG body set is recomputed from scratch for the trace).
    pub fn check(&self, formula: &Ctl) -> CheckResult {
        let sat = self.sat(formula);
        let violating: Vec<usize> = self
            .kripke
            .initial
            .iter()
            .copied()
            .filter(|s| !sat.contains(*s))
            .collect();
        if violating.is_empty() {
            return CheckResult { holds: true, violating_initial_states: 0, counterexample: None };
        }
        let counterexample = self.counterexample(formula, violating[0]);
        CheckResult {
            holds: false,
            violating_initial_states: violating.len(),
            counterexample: Some(counterexample),
        }
    }

    /// Checks a batch of properties with no cross-property sharing (each formula is
    /// recomputed from scratch), mirroring the pre-PR per-property loop.
    pub fn check_all(&self, formulas: &[Ctl]) -> Vec<CheckResult> {
        formulas.iter().map(|f| self.check(f)).collect()
    }

    fn counterexample(&self, formula: &Ctl, from: usize) -> Vec<String> {
        if let Ctl::Ag(body) = formula {
            let mut bad = self.sat(body);
            bad.complement();
            if let Some(path) = self.shortest_path(from, &bad) {
                return path.into_iter().map(|s| self.kripke.state_name(s)).collect();
            }
        }
        vec![self.kripke.state_name(from)]
    }

    fn shortest_path(&self, from: usize, targets: &BitSet) -> Option<Vec<usize>> {
        let n = self.kripke.state_count();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            if targets.contains(s) {
                let mut path = vec![s];
                let mut cur = s;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &succ in self.kripke.successors(s) {
                let succ = succ as usize;
                if !visited[succ] {
                    visited[succ] = true;
                    parent[succ] = Some(s);
                    queue.push_back(succ);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{Engine, ModelChecker};

    fn diamond_kripke() -> Kripke {
        // s0 -> {s1, s2}; s1 -> s3; s2 -> s3; s3 loops. p on s1, q on s3.
        let mut kripke = Kripke::from_lists(
            vec!["p".into(), "q".into()],
            vec!["s0".into(), "s1".into(), "s2".into(), "s3".into()],
            &[vec![1, 2], vec![3], vec![3], vec![3]],
            vec![0],
        );
        kripke.set_labels(&[vec![], vec![0], vec![], vec![1]]);
        kripke
    }

    #[test]
    fn legacy_agrees_with_current_engines() {
        let kripke = diamond_kripke();
        let legacy = LegacyModelChecker::new(&kripke);
        let symbolic = ModelChecker::new(&kripke, Engine::Symbolic);
        let explicit = ModelChecker::new(&kripke, Engine::Explicit);
        let formulas = vec![
            Ctl::atom("q").always_finally(),
            Ctl::atom("p").exists_finally(),
            Ctl::atom("p").not().always_globally(),
            Ctl::Eg(Box::new(Ctl::atom("q"))),
            Ctl::Au(Box::new(Ctl::True), Box::new(Ctl::atom("q"))),
            Ctl::Eu(Box::new(Ctl::atom("p").not()), Box::new(Ctl::atom("q"))),
            Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally(),
        ];
        for f in &formulas {
            let l = legacy.check(f);
            let s = symbolic.check(f);
            let e = explicit.check(f);
            assert_eq!(l, s, "legacy vs symbolic on {f}");
            assert_eq!(l, e, "legacy vs explicit on {f}");
            assert_eq!(
                legacy.sat(f).iter().collect::<Vec<_>>(),
                symbolic.sat(f).iter().collect::<Vec<_>>(),
                "sat sets differ on {f}"
            );
        }
    }
}
