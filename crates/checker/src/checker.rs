//! CTL model checking over Kripke structures, with counter-example extraction.
//!
//! Two engines are provided with identical semantics:
//!
//! * [`Engine::Symbolic`] — the default; computes satisfaction sets with packed bitset
//!   frontier algorithms (the role BDDs play in NuSMV): `E [a U b]` is a reverse-edge
//!   worklist that only expands states newly added in the previous round, and `EG f`
//!   is the standard successor-count elimination — both O(V + E) instead of the
//!   seed's O(rounds × E) round-based fixpoints. The pre-image iterates the set words
//!   of the target bitset rather than testing membership bit-by-bit. Universes that
//!   fit a single word fall back to the round-based loops, where a whole fixpoint
//!   round is one `u64` operation.
//! * [`Engine::Explicit`] — a straightforward per-state labelling with round-based
//!   fixpoints over the CSR successor slices, kept as the differential baseline for
//!   the frontier algorithms.
//!
//! Satisfaction sets are memoized per checker: [`ModelChecker::sat`] hash-conses
//! formulas into dense node ids (atoms resolve to labelling rows, composite nodes
//! key on `(operator, child ids)` — O(1) hashing per node) and caches each node's
//! set by structural identity (interior mutability, so checking stays `&self`);
//! [`ModelChecker::check_all`] batches a property sweep over one
//! structure so the ~30 P.1–P.30 formulas share subformula sets (`triggered`, event
//! atoms, negations) and the `AG` counterexample path reuses the cached `sat(body)`
//! instead of recomputing it. Both engines and counterexample BFS run off the same
//! CSR edge arrays stored in the [`Kripke`] structure.

use crate::bitset::BitSet;
use crate::ctl::Ctl;
use crate::kripke::Kripke;
use std::cell::RefCell;
use std::collections::HashMap;

/// Which fixpoint engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Packed bitset frontier fixpoints (BDD-style set computation).
    #[default]
    Symbolic,
    /// Per-state boolean scans with round-based fixpoints (differential baseline).
    Explicit,
}

/// The outcome of checking one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// True if every initial state satisfies the formula.
    pub holds: bool,
    /// Number of initial states violating the formula.
    pub violating_initial_states: usize,
    /// A counter-example trace (state names) when the property fails, starting from a
    /// violating initial state. For `AG`-shaped properties this is a path to a state
    /// where the body fails; otherwise it is the violating initial state itself.
    pub counterexample: Option<Vec<String>>,
}

/// Universes of at most this many states (one bitset word) run the round-based
/// fixpoints: every set operation is a single `u64` op there, so frontier-worklist
/// bookkeeping costs more than it saves.
const SMALL_UNIVERSE: usize = 64;

/// A hash-consed CTL node: operator discriminant plus dense child ids. Atoms are
/// resolved to their labelling-row index at intern time (all unknown atoms collapse
/// to the same `Atom(None)` node — they satisfy the empty set either way), so node
/// keys are small `Copy` values and interning a formula hashes each node in O(1)
/// instead of re-hashing whole subtrees per cache query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeOp {
    True,
    False,
    Atom(Option<u32>),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Implies(u32, u32),
    Ex(u32),
    Ef(u32),
    Eg(u32),
    Eu(u32, u32),
    Ax(u32),
    Af(u32),
    Ag(u32),
    Au(u32, u32),
}

/// The interner + satisfaction-set memo behind the symbolic engine's cache:
/// structurally identical subformulas intern to the same node id, and each node's
/// sat set is computed at most once per checker.
#[derive(Default)]
struct SatMemo {
    node_ids: HashMap<NodeOp, u32>,
    ops: Vec<NodeOp>,
    sat: Vec<Option<BitSet>>,
}

impl SatMemo {
    fn intern(&mut self, op: NodeOp) -> u32 {
        if let Some(&id) = self.node_ids.get(&op) {
            return id;
        }
        let id = self.ops.len() as u32;
        self.node_ids.insert(op, id);
        self.ops.push(op);
        self.sat.push(None);
        id
    }
}

/// A CTL model checker over one Kripke structure.
pub struct ModelChecker<'a> {
    kripke: &'a Kripke,
    engine: Engine,
    /// Interior-mutable sat-set cache keyed by structurally-hashed `Ctl` nodes,
    /// shared across every `check`/`check_all` call on this checker so a property
    /// sweep computes each distinct subformula set once. Used by the symbolic
    /// engine only; the explicit baseline recomputes from scratch.
    memo: RefCell<SatMemo>,
    /// The in-stage abort handle installed on the constructing thread, if any
    /// (`soteria_exec::current_abort`). Polled between fixpoint rounds and every
    /// `ABORT_POLL_STRIDE` worklist pops; when set, the checker unwinds with the
    /// abort sentinel instead of finishing a sweep nobody wants. `None` (every
    /// non-service path) makes each poll a single branch, and polling never
    /// mutates state — the determinism gates hold byte-identically.
    abort: Option<soteria_exec::AbortHandle>,
}

/// Worklist iterations between abort polls: coarse enough that the relaxed
/// atomic load vanishes against the per-pop edge scans, fine enough that a
/// G.3-scale fixpoint (~47k states) still observes an abort within a few
/// thousand pops.
const ABORT_POLL_STRIDE: usize = 4096;

impl<'a> ModelChecker<'a> {
    /// Creates a checker. The transition relation (forward and reverse) is read
    /// directly from the Kripke structure's CSR arrays; nothing is rebuilt per
    /// checker.
    pub fn new(kripke: &'a Kripke, engine: Engine) -> Self {
        ModelChecker {
            kripke,
            engine,
            memo: RefCell::new(SatMemo::default()),
            abort: soteria_exec::current_abort(),
        }
    }

    /// Abort poll point: unwinds with the abort sentinel when the constructing
    /// stage was aborted. A no-op branch when no handle is installed.
    #[inline]
    fn poll_abort(&self) {
        if let Some(abort) = &self.abort {
            abort.bail_if_aborted();
        }
    }

    /// The set of states satisfying a formula. The symbolic engine memoizes every
    /// subformula by structural identity, so repeated subformulas within and across
    /// a property sweep are computed once. Single-word universes recompute directly:
    /// there every set operation is one `u64` op, cheaper than interning.
    pub fn sat(&self, formula: &Ctl) -> BitSet {
        match self.engine {
            Engine::Symbolic if self.kripke.state_count() > SMALL_UNIVERSE => {
                let id = self.intern(formula);
                self.sat_node(id)
            }
            _ => self.direct_sat(formula),
        }
    }

    /// Hash-conses a formula into the memo, bottom-up. Each node is hashed as a
    /// small `(op, child ids)` key — O(1) per node — rather than by subtree.
    fn intern(&self, formula: &Ctl) -> u32 {
        let op = match formula {
            Ctl::True => NodeOp::True,
            Ctl::False => NodeOp::False,
            Ctl::Atom(a) => NodeOp::Atom(self.kripke.atom_index(a).map(|i| i as u32)),
            Ctl::Not(f) => NodeOp::Not(self.intern(f)),
            Ctl::And(a, b) => NodeOp::And(self.intern(a), self.intern(b)),
            Ctl::Or(a, b) => NodeOp::Or(self.intern(a), self.intern(b)),
            Ctl::Implies(a, b) => NodeOp::Implies(self.intern(a), self.intern(b)),
            Ctl::Ex(f) => NodeOp::Ex(self.intern(f)),
            Ctl::Ef(f) => NodeOp::Ef(self.intern(f)),
            Ctl::Eg(f) => NodeOp::Eg(self.intern(f)),
            Ctl::Eu(a, b) => NodeOp::Eu(self.intern(a), self.intern(b)),
            Ctl::Ax(f) => NodeOp::Ax(self.intern(f)),
            Ctl::Af(f) => NodeOp::Af(self.intern(f)),
            Ctl::Ag(f) => NodeOp::Ag(self.intern(f)),
            Ctl::Au(a, b) => NodeOp::Au(self.intern(a), self.intern(b)),
        };
        self.memo.borrow_mut().intern(op)
    }

    /// The satisfaction set of an interned node, memoized.
    ///
    /// KEEP IN SYNC with `direct_sat`: the two matches implement the same CTL
    /// semantics over `NodeOp` ids and `Ctl` trees respectively (the symbolic
    /// engine uses this one above `SMALL_UNIVERSE`, `direct_sat` below it, where
    /// interning costs more than recomputation). `tests/engine_differential.rs`
    /// fuzzes both paths against the explicit and legacy checkers across the
    /// threshold.
    fn sat_node(&self, id: u32) -> BitSet {
        if let Some(hit) = &self.memo.borrow().sat[id as usize] {
            return hit.clone();
        }
        let op = self.memo.borrow().ops[id as usize];
        let n = self.kripke.state_count();
        let result = match op {
            NodeOp::True => BitSet::full(n),
            NodeOp::False => BitSet::empty(n),
            // The Kripke structure stores labelling column-wise; satisfaction of an
            // atom is its precomputed row, not a per-state scan.
            NodeOp::Atom(Some(row)) => self.kripke.atom_row(row as usize).clone(),
            NodeOp::Atom(None) => BitSet::empty(n),
            NodeOp::Not(f) => {
                let mut set = self.sat_node(f);
                set.complement();
                set
            }
            NodeOp::And(a, b) => {
                let mut set = self.sat_node(a);
                set.intersect_with(&self.sat_node(b));
                set
            }
            NodeOp::Or(a, b) => {
                let mut set = self.sat_node(a);
                set.union_with(&self.sat_node(b));
                set
            }
            NodeOp::Implies(a, b) => {
                // a -> b  ≡  !a | b
                let mut not_a = self.sat_node(a);
                not_a.complement();
                not_a.union_with(&self.sat_node(b));
                not_a
            }
            NodeOp::Ex(f) => self.pre_exists(&self.sat_node(f)),
            NodeOp::Ef(f) => {
                // EF f = E [true U f]
                self.least_fixpoint_eu(&BitSet::full(n), &self.sat_node(f))
            }
            NodeOp::Eu(a, b) => self.least_fixpoint_eu(&self.sat_node(a), &self.sat_node(b)),
            NodeOp::Eg(f) => self.greatest_fixpoint_eg(&self.sat_node(f)),
            NodeOp::Ax(f) => {
                // AX f = !EX !f
                let mut not_f = self.sat_node(f);
                not_f.complement();
                let mut result = self.pre_exists(&not_f);
                result.complement();
                result
            }
            NodeOp::Af(f) => {
                // AF f = !EG !f
                let mut not_f = self.sat_node(f);
                not_f.complement();
                let mut result = self.greatest_fixpoint_eg(&not_f);
                result.complement();
                result
            }
            NodeOp::Ag(f) => {
                // AG f = !EF !f
                let mut not_f = self.sat_node(f);
                not_f.complement();
                let mut result = self.least_fixpoint_eu(&BitSet::full(n), &not_f);
                result.complement();
                result
            }
            NodeOp::Au(a, b) => {
                // A [a U b] = !(E [!b U (!a & !b)] | EG !b)
                let sat_a = self.sat_node(a);
                let sat_b = self.sat_node(b);
                let mut not_a = sat_a.clone();
                not_a.complement();
                let mut not_b = sat_b.clone();
                not_b.complement();
                let mut not_a_and_not_b = not_a;
                not_a_and_not_b.intersect_with(&not_b);
                let mut bad = self.least_fixpoint_eu(&not_b, &not_a_and_not_b);
                bad.union_with(&self.greatest_fixpoint_eg(&not_b));
                bad.complement();
                bad
            }
        };
        self.memo.borrow_mut().sat[id as usize] = Some(result.clone());
        result
    }

    /// Direct recursion with no memoization: used by the explicit engine (the
    /// differential baseline recomputes everything from scratch) and by the
    /// symbolic engine on single-word universes. The pre-image and fixpoint
    /// helpers still dispatch on the engine.
    ///
    /// KEEP IN SYNC with `sat_node` — same semantics, different node
    /// representation; see the note there.
    fn direct_sat(&self, formula: &Ctl) -> BitSet {
        let n = self.kripke.state_count();
        match formula {
            Ctl::True => BitSet::full(n),
            Ctl::False => BitSet::empty(n),
            Ctl::Atom(a) => match self.kripke.atom_index(a) {
                Some(idx) => self.kripke.atom_row(idx).clone(),
                None => BitSet::empty(n),
            },
            Ctl::Not(f) => {
                let mut set = self.direct_sat(f);
                set.complement();
                set
            }
            Ctl::And(a, b) => {
                let mut set = self.direct_sat(a);
                set.intersect_with(&self.direct_sat(b));
                set
            }
            Ctl::Or(a, b) => {
                let mut set = self.direct_sat(a);
                set.union_with(&self.direct_sat(b));
                set
            }
            Ctl::Implies(a, b) => {
                let mut not_a = self.direct_sat(a);
                not_a.complement();
                not_a.union_with(&self.direct_sat(b));
                not_a
            }
            Ctl::Ex(f) => self.pre_exists(&self.direct_sat(f)),
            Ctl::Ef(f) => self.least_fixpoint_eu(&BitSet::full(n), &self.direct_sat(f)),
            Ctl::Eu(a, b) => {
                self.least_fixpoint_eu(&self.direct_sat(a), &self.direct_sat(b))
            }
            Ctl::Eg(f) => self.greatest_fixpoint_eg(&self.direct_sat(f)),
            Ctl::Ax(f) => {
                let mut not_f = self.direct_sat(f);
                not_f.complement();
                let mut result = self.pre_exists(&not_f);
                result.complement();
                result
            }
            Ctl::Af(f) => {
                let mut not_f = self.direct_sat(f);
                not_f.complement();
                let mut result = self.greatest_fixpoint_eg(&not_f);
                result.complement();
                result
            }
            Ctl::Ag(f) => {
                let mut not_f = self.direct_sat(f);
                not_f.complement();
                let mut result = self.least_fixpoint_eu(&BitSet::full(n), &not_f);
                result.complement();
                result
            }
            Ctl::Au(a, b) => {
                let sat_a = self.direct_sat(a);
                let sat_b = self.direct_sat(b);
                let mut not_a = sat_a.clone();
                not_a.complement();
                let mut not_b = sat_b.clone();
                not_b.complement();
                let mut not_a_and_not_b = not_a;
                not_a_and_not_b.intersect_with(&not_b);
                let mut bad = self.least_fixpoint_eu(&not_b, &not_a_and_not_b);
                bad.union_with(&self.greatest_fixpoint_eg(&not_b));
                bad.complement();
                bad
            }
        }
    }

    /// States with at least one successor in `target` (the existential pre-image).
    fn pre_exists(&self, target: &BitSet) -> BitSet {
        let n = self.kripke.state_count();
        let mut result = BitSet::empty(n);
        match self.engine {
            Engine::Symbolic => {
                // `BitSet::iter` walks set words and peels bits, so only the members
                // of `target` are visited — not the whole universe.
                for to in target.iter() {
                    for &from in self.kripke.predecessors(to) {
                        result.insert(from as usize);
                    }
                }
            }
            Engine::Explicit => {
                for from in 0..n {
                    if self.kripke.successors(from).iter().any(|&s| target.contains(s as usize)) {
                        result.insert(from);
                    }
                }
            }
        }
        result
    }

    /// Least fixpoint for `E [a U b]`.
    ///
    /// The symbolic engine runs a frontier worklist over the reverse CSR edges: only
    /// states newly added in the previous step are expanded, so every reverse edge is
    /// processed at most once — O(V + E) total, versus the round-based loop's
    /// O(rounds × E) re-scan of the entire accumulated set.
    fn least_fixpoint_eu(&self, sat_a: &BitSet, sat_b: &BitSet) -> BitSet {
        if self.engine == Engine::Explicit || self.kripke.state_count() <= SMALL_UNIVERSE {
            return self.least_fixpoint_eu_rounds(sat_a, sat_b);
        }
        let mut result = sat_b.clone();
        let mut frontier: Vec<u32> = sat_b.iter().map(|s| s as u32).collect();
        let mut pops = 0usize;
        while let Some(s) = frontier.pop() {
            pops += 1;
            if pops.is_multiple_of(ABORT_POLL_STRIDE) {
                self.poll_abort();
            }
            for &p in self.kripke.predecessors(s as usize) {
                let p_usize = p as usize;
                if sat_a.contains(p_usize) && !result.contains(p_usize) {
                    result.insert(p_usize);
                    frontier.push(p);
                }
            }
        }
        result
    }

    /// Round-based least fixpoint (the explicit engine's baseline algorithm).
    fn least_fixpoint_eu_rounds(&self, sat_a: &BitSet, sat_b: &BitSet) -> BitSet {
        let mut result = sat_b.clone();
        loop {
            self.poll_abort();
            let mut pre = self.pre_exists(&result);
            pre.intersect_with(sat_a);
            pre.union_with(&result);
            if pre == result {
                return result;
            }
            result = pre;
        }
    }

    /// Greatest fixpoint for `EG f`.
    ///
    /// The symbolic engine uses successor-count elimination: every state of `sat f`
    /// tracks how many of its successors remain viable; states whose count reaches
    /// zero are eliminated and their predecessors decremented through the reverse
    /// CSR edges. Each edge is touched a constant number of times — O(V + E).
    fn greatest_fixpoint_eg(&self, sat_f: &BitSet) -> BitSet {
        if self.engine == Engine::Explicit || self.kripke.state_count() <= SMALL_UNIVERSE {
            return self.greatest_fixpoint_eg_rounds(sat_f);
        }
        let n = self.kripke.state_count();
        let mut result = sat_f.clone();
        let mut viable = vec![0u32; n];
        let mut eliminated: Vec<u32> = Vec::new();
        for s in sat_f.iter() {
            let count = self
                .kripke
                .successors(s)
                .iter()
                .filter(|&&t| sat_f.contains(t as usize))
                .count() as u32;
            viable[s] = count;
            if count == 0 {
                result.remove(s);
                eliminated.push(s as u32);
            }
        }
        let mut pops = 0usize;
        while let Some(s) = eliminated.pop() {
            pops += 1;
            if pops.is_multiple_of(ABORT_POLL_STRIDE) {
                self.poll_abort();
            }
            for &p in self.kripke.predecessors(s as usize) {
                let p_usize = p as usize;
                if result.contains(p_usize) {
                    viable[p_usize] -= 1;
                    if viable[p_usize] == 0 {
                        result.remove(p_usize);
                        eliminated.push(p);
                    }
                }
            }
        }
        result
    }

    /// Round-based greatest fixpoint (the explicit engine's baseline algorithm).
    fn greatest_fixpoint_eg_rounds(&self, sat_f: &BitSet) -> BitSet {
        let mut result = sat_f.clone();
        loop {
            self.poll_abort();
            let mut pre = self.pre_exists(&result);
            pre.intersect_with(sat_f);
            if pre == result {
                return result;
            }
            result = pre;
        }
    }

    /// Checks a formula against the Kripke structure's initial states and extracts a
    /// counter-example when it fails.
    pub fn check(&self, formula: &Ctl) -> CheckResult {
        let sat = self.sat(formula);
        let violating: Vec<usize> = self
            .kripke
            .initial
            .iter()
            .copied()
            .filter(|s| !sat.contains(*s))
            .collect();
        if violating.is_empty() {
            return CheckResult { holds: true, violating_initial_states: 0, counterexample: None };
        }
        let counterexample = self.counterexample(formula, violating[0]);
        CheckResult {
            holds: false,
            violating_initial_states: violating.len(),
            counterexample: Some(counterexample),
        }
    }

    /// Checks a batch of properties against the same structure. With the symbolic
    /// engine on a universe above `SMALL_UNIVERSE`, the satisfaction-set cache is
    /// shared across the whole batch: subformulas common to several properties
    /// (event atoms, `triggered`, their negations) are computed once. Below the
    /// threshold (and for the explicit baseline) every formula recomputes — there
    /// each set operation is a single `u64` op, cheaper than cache bookkeeping.
    pub fn check_all(&self, formulas: &[Ctl]) -> Vec<CheckResult> {
        formulas
            .iter()
            .map(|f| {
                self.poll_abort();
                self.check(f)
            })
            .collect()
    }

    /// Builds a counter-example trace starting at `from`. For `AG f` the trace is the
    /// shortest path from `from` to a state violating `f`; for other shapes the trace
    /// is the violating initial state alone.
    fn counterexample(&self, formula: &Ctl, from: usize) -> Vec<String> {
        if let Ctl::Ag(body) = formula {
            // Above `SMALL_UNIVERSE` with the symbolic engine, `sat(body)` hits the
            // memo: the body set was already computed while checking the formula
            // itself. Small universes recompute it (a handful of word ops).
            let mut bad = self.sat(body);
            bad.complement();
            if let Some(path) = self.shortest_path(from, &bad) {
                return path.into_iter().map(|s| self.kripke.state_name(s)).collect();
            }
        }
        vec![self.kripke.state_name(from)]
    }

    /// Breadth-first shortest path from `from` to any state in `targets`, over the
    /// same CSR successor array the engines use.
    fn shortest_path(&self, from: usize, targets: &BitSet) -> Option<Vec<usize>> {
        let n = self.kripke.state_count();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            if targets.contains(s) {
                let mut path = vec![s];
                let mut cur = s;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &succ in self.kripke.successors(s) {
                let succ = succ as usize;
                if !visited[succ] {
                    visited[succ] = true;
                    parent[succ] = Some(s);
                    queue.push_back(succ);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built three-state Kripke structure:
    /// s0 --> s1 --> s2, s2 loops; atoms: p on s0 and s1, q on s2.
    fn line_kripke() -> Kripke {
        let mut kripke = Kripke::from_lists(
            vec!["p".into(), "q".into()],
            vec!["s0".into(), "s1".into(), "s2".into()],
            &[vec![1], vec![2], vec![2]],
            vec![0],
        );
        kripke.set_labels(&[vec![0], vec![0], vec![1]]);
        kripke
    }

    fn check(engine: Engine, formula: &Ctl) -> CheckResult {
        let kripke = line_kripke();
        ModelChecker::new(&kripke, engine).check(formula)
    }

    #[test]
    fn basic_temporal_operators() {
        for engine in [Engine::Symbolic, Engine::Explicit] {
            // AF q: every path eventually reaches s2.
            assert!(check(engine, &Ctl::atom("q").always_finally()).holds);
            // AG p fails (s2 has no p).
            let r = check(engine, &Ctl::atom("p").always_globally());
            assert!(!r.holds);
            assert_eq!(r.violating_initial_states, 1);
            // EF q holds, EG p fails, EX p holds (s0 -> s1 has p).
            assert!(check(engine, &Ctl::atom("q").exists_finally()).holds);
            assert!(!check(engine, &Ctl::Eg(Box::new(Ctl::atom("p")))).holds);
            assert!(check(engine, &Ctl::Ex(Box::new(Ctl::atom("p")))).holds);
            // AX p holds at s0 (only successor s1 has p).
            assert!(check(engine, &Ctl::atom("p").all_next()).holds);
            // A [p U q] holds on the single path.
            assert!(check(engine, &Ctl::Au(Box::new(Ctl::atom("p")), Box::new(Ctl::atom("q")))).holds);
            // E [p U q] holds as well.
            assert!(check(engine, &Ctl::Eu(Box::new(Ctl::atom("p")), Box::new(Ctl::atom("q")))).holds);
            // AG (p | q) holds everywhere.
            assert!(check(engine, &Ctl::atom("p").or(Ctl::atom("q")).always_globally()).holds);
            // Implication and negation.
            assert!(check(engine, &Ctl::atom("q").implies(Ctl::atom("q")).always_globally()).holds);
            assert!(check(engine, &Ctl::False.not()).holds);
        }
    }

    #[test]
    fn counterexample_path_for_ag() {
        let kripke = line_kripke();
        let checker = ModelChecker::new(&kripke, Engine::Symbolic);
        let result = checker.check(&Ctl::atom("p").always_globally());
        let trace = result.counterexample.unwrap();
        assert_eq!(trace, vec!["s0".to_string(), "s1".to_string(), "s2".to_string()]);
    }

    #[test]
    fn engines_agree_on_random_like_formulas() {
        let kripke = line_kripke();
        let formulas = vec![
            Ctl::atom("p").and(Ctl::atom("q").not()).exists_finally(),
            Ctl::Ag(Box::new(Ctl::atom("p").implies(Ctl::atom("q").exists_finally()))),
            Ctl::Af(Box::new(Ctl::atom("q").and(Ctl::atom("p").not()))),
            Ctl::Eg(Box::new(Ctl::atom("q"))),
            Ctl::Au(Box::new(Ctl::True), Box::new(Ctl::atom("q"))),
        ];
        let symbolic = ModelChecker::new(&kripke, Engine::Symbolic);
        let explicit = ModelChecker::new(&kripke, Engine::Explicit);
        for f in formulas {
            let a = symbolic.sat(&f);
            let b = explicit.sat(&f);
            assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>(), "formula {f}");
        }
    }

    #[test]
    fn check_all_matches_individual_checks() {
        let kripke = line_kripke();
        let formulas = vec![
            Ctl::atom("p").always_globally(),
            Ctl::atom("q").always_finally(),
            Ctl::atom("p").or(Ctl::atom("q")).always_globally(),
            Ctl::atom("p").always_globally(), // repeated: served from the cache
        ];
        let batch = ModelChecker::new(&kripke, Engine::Symbolic);
        let batched = batch.check_all(&formulas);
        for (f, b) in formulas.iter().zip(&batched) {
            let fresh = ModelChecker::new(&kripke, Engine::Symbolic).check(f);
            assert_eq!(&fresh, b, "batched result differs on {f}");
        }
        assert_eq!(batched[0], batched[3]);
    }

    /// A 100-state ring (above `SMALL_UNIVERSE`, so the frontier fixpoints and the
    /// memo cache engage): p on even states, q only on state 99.
    fn ring_kripke() -> Kripke {
        let n = 100;
        let succs: Vec<Vec<usize>> = (0..n).map(|s| vec![(s + 1) % n]).collect();
        let names: Vec<String> = (0..n).map(|s| format!("r{s}")).collect();
        let mut kripke =
            Kripke::from_lists(vec!["p".into(), "q".into()], names, &succs, vec![0]);
        let labels: Vec<Vec<usize>> = (0..n)
            .map(|s| {
                let mut l = Vec::new();
                if s % 2 == 0 {
                    l.push(0);
                }
                if s == 99 {
                    l.push(1);
                }
                l
            })
            .collect();
        kripke.set_labels(&labels);
        kripke
    }

    #[test]
    fn frontier_and_rounds_agree_above_the_small_universe_threshold() {
        let kripke = ring_kripke();
        let symbolic = ModelChecker::new(&kripke, Engine::Symbolic);
        let explicit = ModelChecker::new(&kripke, Engine::Explicit);
        let formulas = vec![
            Ctl::atom("q").exists_finally(),
            Ctl::atom("q").always_finally(),
            Ctl::Eg(Box::new(Ctl::atom("p").or(Ctl::atom("q").not()))),
            Ctl::Eu(Box::new(Ctl::atom("p").not().not()), Box::new(Ctl::atom("q"))),
            Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally(),
            Ctl::Au(Box::new(Ctl::True), Box::new(Ctl::atom("q"))),
        ];
        for f in &formulas {
            assert_eq!(
                symbolic.sat(f).iter().collect::<Vec<_>>(),
                explicit.sat(f).iter().collect::<Vec<_>>(),
                "engines disagree on {f}"
            );
        }
    }

    #[test]
    fn sat_cache_is_consistent_across_repeated_queries() {
        let kripke = ring_kripke();
        let checker = ModelChecker::new(&kripke, Engine::Symbolic);
        let f = Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally();
        let first = checker.sat(&f);
        let second = checker.sat(&f);
        assert_eq!(first.iter().collect::<Vec<_>>(), second.iter().collect::<Vec<_>>());
        // Every subformula node was interned and memoized: p, q, EF q, p -> EF q,
        // AG (...) — five nodes, five cached sets.
        let memo = checker.memo.borrow();
        assert_eq!(memo.ops.len(), 5);
        assert!(memo.sat.iter().all(|s| s.is_some()));
        // Structurally identical subformulas share one node.
        drop(memo);
        checker.sat(&Ctl::atom("q").exists_finally());
        assert_eq!(checker.memo.borrow().ops.len(), 5);
    }

    #[test]
    fn unknown_atom_is_false_everywhere() {
        let kripke = line_kripke();
        let checker = ModelChecker::new(&kripke, Engine::Symbolic);
        assert!(checker.sat(&Ctl::atom("missing")).is_empty());
        let result = checker.check(&Ctl::atom("missing").always_globally());
        assert!(!result.holds);
    }
}
