//! CTL model checking over Kripke structures, with counter-example extraction.
//!
//! Two engines are provided with identical semantics:
//!
//! * [`Engine::Symbolic`] — the default; computes satisfaction sets with packed bitset
//!   frontier algorithms (the role BDDs play in NuSMV): `E [a U b]` is a reverse-edge
//!   worklist that only expands states newly added in the previous round, and `EG f`
//!   is the standard successor-count elimination — both O(V + E) instead of the
//!   seed's O(rounds × E) round-based fixpoints. The pre-image iterates the set words
//!   of the target bitset rather than testing membership bit-by-bit. Universes that
//!   fit a single word fall back to the round-based loops, where a whole fixpoint
//!   round is one `u64` operation.
//! * [`Engine::Explicit`] — a straightforward per-state labelling with round-based
//!   fixpoints over the CSR successor slices, kept as the differential baseline for
//!   the frontier algorithms.
//!
//! Satisfaction sets are memoized per checker: [`ModelChecker::sat`] hash-conses
//! formulas into dense node ids (atoms resolve to labelling rows, composite nodes
//! key on `(operator, child ids)` — O(1) hashing per node) and caches each node's
//! set by structural identity (interior mutability, so checking stays `&self`);
//! [`ModelChecker::check_all`] batches a property sweep over one
//! structure so the ~30 P.1–P.30 formulas share subformula sets (`triggered`, event
//! atoms, negations) and the `AG` counterexample path reuses the cached `sat(body)`
//! instead of recomputing it. Both engines and counterexample BFS run off the same
//! CSR edge arrays stored in the [`Kripke`] structure.

use crate::bitset::BitSet;
use crate::ctl::Ctl;
use crate::kripke::Kripke;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Which fixpoint engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Packed bitset frontier fixpoints (BDD-style set computation).
    #[default]
    Symbolic,
    /// Per-state boolean scans with round-based fixpoints (differential baseline).
    Explicit,
}

/// The outcome of checking one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// True if every initial state satisfies the formula.
    pub holds: bool,
    /// Number of initial states violating the formula.
    pub violating_initial_states: usize,
    /// A counter-example trace (state names) when the property fails, starting from a
    /// violating initial state. For `AG`-shaped properties this is a path to a state
    /// where the body fails; otherwise it is the violating initial state itself.
    pub counterexample: Option<Vec<String>>,
}

/// Universes of at most this many states (one bitset word) run the round-based
/// fixpoints: every set operation is a single `u64` op there, so frontier-worklist
/// bookkeeping costs more than it saves.
const SMALL_UNIVERSE: usize = 64;

/// Default state-count threshold above which the symbolic `E [a U b]` and `EG`
/// fixpoints shard each round across worker threads
/// ([`ModelChecker::with_sharding`]). Below it the sequential worklist /
/// elimination loops win: a fixpoint round must process tens of thousands of
/// pre-image edges before the per-round merge barrier amortizes. Overridable
/// per call site ([`soteria_exec::resolve_shard_states`]) and globally via
/// `SOTERIA_SHARD_STATES`; the sharded fixpoints are byte-identical to the
/// sequential ones at every thread count, so the threshold only moves work
/// between schedules, never changes a verdict.
pub const FIXPOINT_SHARD_STATES: usize = 16_384;

/// A hash-consed CTL node: operator discriminant plus dense child ids. Atoms are
/// resolved to their labelling-row index at intern time (all unknown atoms collapse
/// to the same `Atom(None)` node — they satisfy the empty set either way), so node
/// keys are small `Copy` values and interning a formula hashes each node in O(1)
/// instead of re-hashing whole subtrees per cache query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeOp {
    True,
    False,
    Atom(Option<u32>),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Implies(u32, u32),
    Ex(u32),
    Ef(u32),
    Eg(u32),
    Eu(u32, u32),
    Ax(u32),
    Af(u32),
    Ag(u32),
    Au(u32, u32),
}

/// The interner + satisfaction-set memo behind the symbolic engine's cache:
/// structurally identical subformulas intern to the same node id, and each node's
/// sat set is computed at most once per checker. The parallel `keys`/`prop`
/// vectors (one entry per node, like `ops` and `sat`) support cross-checker
/// reuse: `keys` holds each node's canonical structure-independent key (atoms
/// by *name*, so the key survives a re-labelled universe), and `prop` marks
/// nodes whose cone is purely propositional — the only sets that can be
/// projected onto a changed structure (see [`SatSnapshot`]).
#[derive(Default)]
struct SatMemo {
    node_ids: HashMap<NodeOp, u32>,
    ops: Vec<NodeOp>,
    /// Canonical key per node: atoms by name, composites by operator + child keys.
    keys: Vec<String>,
    /// True when the node's cone contains no temporal operator (and no
    /// unknown-atom / constant node — those are excluded from reuse as trivial).
    prop: Vec<bool>,
    /// True when the node is propositional *and* every atom in its cone was
    /// verified stable against the reuse snapshot — the projectable nodes.
    clean: Vec<bool>,
    sat: Vec<Option<BitSet>>,
}

/// A frozen export of one checker's memoized satisfaction sets, keyed by the
/// canonical node keys, plus an owned clone of the structure they were computed
/// over. Produced by [`ModelChecker::snapshot`] and consumed by
/// [`ModelChecker::reuse_from`] on a later (possibly changed) structure:
///
/// * if the new structure equals the old one field-for-field, *every* entry is
///   reusable as-is (temporal sets included);
/// * otherwise only propositional entries over verified-unchanged atoms are
///   reusable, re-indexed through the state projection (propositional
///   satisfaction is pointwise over atom values, so a projected set is exact;
///   temporal sets depend globally on the changed transition relation and are
///   always recomputed).
#[derive(Debug, Clone)]
pub struct SatSnapshot {
    /// The structure the sets were computed over, behind an [`Arc`] so a
    /// snapshot export can share the checker's structure instead of cloning
    /// ~50k states of CSR arrays, and so a no-op resubmission can hand the same
    /// allocation back to the next checker (pointer equality then short-cuts
    /// the identical-structure comparison in [`ModelChecker::reuse_from`]).
    kripke: Arc<Kripke>,
    sets: HashMap<String, SnapEntry>,
}

#[derive(Debug, Clone)]
struct SnapEntry {
    set: BitSet,
    /// The origin node's `SatMemo::prop` flag: projectable onto a changed
    /// structure. Entries with `false` are only reusable on an identical one.
    propositional: bool,
}

impl SatSnapshot {
    /// Number of memoized sets in the snapshot.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if the snapshot holds no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The structure the sets were computed over. An incremental caller can
    /// hand this same allocation to the next check (no-op resubmission) or use
    /// it as the base of a delta rebuild.
    pub fn kripke(&self) -> &Arc<Kripke> {
        &self.kripke
    }
}

/// A CTL model checker over one Kripke structure.
pub struct ModelChecker<'a> {
    kripke: &'a Kripke,
    engine: Engine,
    /// Interior-mutable sat-set cache keyed by structurally-hashed `Ctl` nodes,
    /// shared across every `check`/`check_all` call on this checker so a property
    /// sweep computes each distinct subformula set once. Used by the symbolic
    /// engine only; the explicit baseline recomputes from scratch.
    memo: RefCell<SatMemo>,
    /// The in-stage abort handle installed on the constructing thread, if any
    /// (`soteria_exec::current_abort`). Polled between fixpoint rounds and every
    /// `ABORT_POLL_STRIDE` worklist pops; when set, the checker unwinds with the
    /// abort sentinel instead of finishing a sweep nobody wants. `None` (every
    /// non-service path) makes each poll a single branch, and polling never
    /// mutates state — the determinism gates hold byte-identically.
    abort: Option<soteria_exec::AbortHandle>,
    /// Worker threads for the sharded in-formula fixpoints (resolved at
    /// construction; 1 disables sharding — including automatically on parallel
    /// worker threads, where `resolve_threads` self-disables nested fan-out).
    shard_threads: usize,
    /// State-count threshold above which the fixpoints shard
    /// ([`FIXPOINT_SHARD_STATES`] unless overridden).
    shard_states: usize,
    /// Sat sets imported from a previous checker's [`SatSnapshot`], keyed by
    /// canonical node key and already expressed over *this* structure's state
    /// universe. Consulted once per node at intern time.
    reuse: HashMap<String, BitSet>,
    /// True in the identical-structure reuse tier: every imported entry
    /// (temporal sets included) seeds its node. False in the projected tier,
    /// where only `clean` nodes may be seeded.
    reuse_all: bool,
    /// Per atom row: verified stable against the reuse snapshot (pointwise
    /// equal through the state projection and not matching a dirty prefix).
    stable_atoms: Vec<bool>,
}

/// Worklist iterations between abort polls: coarse enough that the relaxed
/// atomic load vanishes against the per-pop edge scans, fine enough that a
/// G.3-scale fixpoint (~47k states) still observes an abort within a few
/// thousand pops.
const ABORT_POLL_STRIDE: usize = 4096;

/// Partitions `words` bitset words into at most `shards` contiguous
/// `[lo, hi)` ranges of near-equal length (empty ranges dropped). Word
/// granularity keeps shard boundaries off bit boundaries: a worker owns whole
/// words of the frontier, so segment extraction never splits or locks a word.
fn word_ranges(words: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.min(words).max(1);
    let len = words.div_ceil(shards);
    (0..shards)
        .map(|i| (i * len, ((i + 1) * len).min(words)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

impl<'a> ModelChecker<'a> {
    /// Creates a checker. The transition relation (forward and reverse) is read
    /// directly from the Kripke structure's CSR arrays; nothing is rebuilt per
    /// checker. Equivalent to [`ModelChecker::with_sharding`] with both knobs
    /// on auto.
    pub fn new(kripke: &'a Kripke, engine: Engine) -> Self {
        Self::with_sharding(kripke, engine, 0, 0)
    }

    /// Creates a checker with explicit in-formula sharding knobs: `threads`
    /// workers (0 = auto: `SOTERIA_THREADS` / available parallelism; always 1 on
    /// a parallel worker thread, so sharding nested under a property-level
    /// fan-out self-disables) and the `shard_states` state-count threshold
    /// (0 = auto: `SOTERIA_SHARD_STATES` / [`FIXPOINT_SHARD_STATES`]). Above the
    /// threshold, with more than one worker and the symbolic engine, the
    /// `E [a U b]` and `EG` fixpoints run their rounds sharded by word ranges of
    /// the frontier — byte-identical to the sequential fixpoints at every
    /// thread count.
    pub fn with_sharding(
        kripke: &'a Kripke,
        engine: Engine,
        threads: usize,
        shard_states: usize,
    ) -> Self {
        ModelChecker {
            kripke,
            engine,
            memo: RefCell::new(SatMemo::default()),
            abort: soteria_exec::current_abort(),
            shard_threads: soteria_exec::resolve_threads(threads),
            shard_states: soteria_exec::resolve_shard_states(
                shard_states,
                FIXPOINT_SHARD_STATES,
            ),
            reuse: HashMap::new(),
            reuse_all: false,
            stable_atoms: Vec::new(),
        }
    }

    /// Arms this checker with sat-set reuse from a previous check's
    /// [`SatSnapshot`] (the incremental re-verification path).
    ///
    /// Two tiers, decided here at construction:
    ///
    /// * **Identical** — the snapshot's structure equals this one
    ///   field-for-field: every snapshot entry seeds its node as-is, temporal
    ///   sets included.
    /// * **Projected** — the structures differ: a state projection
    ///   `new → old` is built from the per-state identity
    ///   `(model state, incoming event, incoming app)` (unique by
    ///   construction). If the projection is total, each shared atom is
    ///   verified *pointwise stable* through it — unless its name matches a
    ///   `dirty_atom_prefixes` entry (the changed member's attribute partition:
    ///   its `attr:{handle}.{attribute}=` prefixes and `by-app:{name}`), which
    ///   skips the scan outright. Snapshot entries that are propositional over
    ///   stable atoms are then projected onto this universe and seed their
    ///   nodes; everything else (temporal sets, dirty cones) is recomputed.
    ///
    /// Seeded sets equal what recomputation would produce — propositional
    /// satisfaction is pointwise over the (verified-equal) atom values — so
    /// every verdict, violating-state count, and counterexample trace is
    /// byte-identical to a fresh check; only work is saved. If no reuse is
    /// possible (partial projection, ambiguous identity) the checker simply
    /// stays cold.
    pub fn reuse_from(mut self, prev: &SatSnapshot, dirty_atom_prefixes: &[String]) -> Self {
        // Pointer equality first: a no-op resubmission hands the snapshot's own
        // structure back, making the identical tier free of the deep comparison.
        if std::ptr::eq(Arc::as_ptr(&prev.kripke), self.kripke) || *prev.kripke == *self.kripke {
            self.reuse_all = true;
            self.stable_atoms = vec![true; self.kripke.atoms.len()];
            self.reuse =
                prev.sets.iter().map(|(k, e)| (k.clone(), e.set.clone())).collect();
            return self;
        }
        let n = self.kripke.state_count();
        fn identity(k: &Kripke, s: usize) -> (soteria_model::StateId, Option<&str>, Option<&str>) {
            (k.model_state[s], k.incoming_event[s].as_deref(), k.incoming_app[s].as_deref())
        }
        let mut old_ids: HashMap<_, usize> =
            HashMap::with_capacity(prev.kripke.state_count());
        for s in 0..prev.kripke.state_count() {
            if old_ids.insert(identity(&prev.kripke, s), s).is_some() {
                return self; // ambiguous identity: no safe projection
            }
        }
        let mut proj: Vec<usize> = Vec::with_capacity(n);
        for s in 0..n {
            match old_ids.get(&identity(self.kripke, s)) {
                Some(&old) => proj.push(old),
                None => return self, // a genuinely new state: no reuse
            }
        }
        let mut stable = vec![false; self.kripke.atoms.len()];
        for (i, atom) in self.kripke.atoms.iter().enumerate() {
            if dirty_atom_prefixes.iter().any(|p| atom.starts_with(p.as_str())) {
                continue;
            }
            let Some(old_row) = prev.kripke.atom_index(atom).map(|j| prev.kripke.atom_row(j))
            else {
                continue;
            };
            let new_row = self.kripke.atom_row(i);
            if (0..n).all(|s| old_row.contains(proj[s]) == new_row.contains(s)) {
                stable[i] = true;
            }
        }
        self.stable_atoms = stable;
        for (key, entry) in &prev.sets {
            if !entry.propositional {
                continue;
            }
            let mut set = BitSet::empty(n);
            for (s, &old) in proj.iter().enumerate() {
                if entry.set.contains(old) {
                    set.insert(s);
                }
            }
            self.reuse.insert(key.clone(), set);
        }
        self
    }

    /// Exports this checker's memoized sat sets (plus an owned clone of the
    /// structure) for reuse by a later [`ModelChecker::reuse_from`] checker.
    /// Callers that already own the structure behind an [`Arc`] should prefer
    /// [`ModelChecker::snapshot_with`], which skips the clone.
    pub fn snapshot(&self) -> SatSnapshot {
        self.export_sets(Arc::new(self.kripke.clone()))
    }

    /// Exports this checker's memoized sat sets against a caller-supplied
    /// handle to the *same* structure the checker was built over, avoiding the
    /// structure clone of [`ModelChecker::snapshot`].
    pub fn snapshot_with(&self, kripke: Arc<Kripke>) -> SatSnapshot {
        debug_assert!(
            std::ptr::eq(Arc::as_ptr(&kripke), self.kripke),
            "snapshot_with must receive the checker's own structure"
        );
        self.export_sets(kripke)
    }

    fn export_sets(&self, kripke: Arc<Kripke>) -> SatSnapshot {
        let memo = self.memo.borrow();
        let mut sets = HashMap::with_capacity(memo.ops.len());
        for (id, slot) in memo.sat.iter().enumerate() {
            if let Some(set) = slot {
                sets.insert(
                    memo.keys[id].clone(),
                    SnapEntry { set: set.clone(), propositional: memo.prop[id] },
                );
            }
        }
        SatSnapshot { kripke, sets }
    }

    /// Abort poll point: unwinds with the abort sentinel when the constructing
    /// stage was aborted. A no-op branch when no handle is installed.
    #[inline]
    fn poll_abort(&self) {
        if let Some(abort) = &self.abort {
            abort.bail_if_aborted();
        }
    }

    /// The set of states satisfying a formula. The symbolic engine memoizes every
    /// subformula by structural identity, so repeated subformulas within and across
    /// a property sweep are computed once. Single-word universes recompute directly:
    /// there every set operation is one `u64` op, cheaper than interning.
    pub fn sat(&self, formula: &Ctl) -> BitSet {
        match self.engine {
            Engine::Symbolic if self.kripke.state_count() > SMALL_UNIVERSE => {
                let id = self.intern(formula);
                self.sat_node(id)
            }
            _ => self.direct_sat(formula),
        }
    }

    /// Hash-conses a formula into the memo, bottom-up. Each node is hashed as a
    /// small `(op, child ids)` key — O(1) per node — rather than by subtree.
    fn intern(&self, formula: &Ctl) -> u32 {
        let op = match formula {
            Ctl::True => NodeOp::True,
            Ctl::False => NodeOp::False,
            Ctl::Atom(a) => NodeOp::Atom(self.kripke.atom_index(a).map(|i| i as u32)),
            Ctl::Not(f) => NodeOp::Not(self.intern(f)),
            Ctl::And(a, b) => NodeOp::And(self.intern(a), self.intern(b)),
            Ctl::Or(a, b) => NodeOp::Or(self.intern(a), self.intern(b)),
            Ctl::Implies(a, b) => NodeOp::Implies(self.intern(a), self.intern(b)),
            Ctl::Ex(f) => NodeOp::Ex(self.intern(f)),
            Ctl::Ef(f) => NodeOp::Ef(self.intern(f)),
            Ctl::Eg(f) => NodeOp::Eg(self.intern(f)),
            Ctl::Eu(a, b) => NodeOp::Eu(self.intern(a), self.intern(b)),
            Ctl::Ax(f) => NodeOp::Ax(self.intern(f)),
            Ctl::Af(f) => NodeOp::Af(self.intern(f)),
            Ctl::Ag(f) => NodeOp::Ag(self.intern(f)),
            Ctl::Au(a, b) => NodeOp::Au(self.intern(a), self.intern(b)),
        };
        self.intern_op(op)
    }

    /// Interns one node: assigns its dense id, derives its canonical key and
    /// reuse flags from the (already interned) children, and — on a checker
    /// armed by [`ModelChecker::reuse_from`] — seeds its sat slot from the
    /// imported sets when eligible (every node in the identical tier; only
    /// `clean` nodes, propositional over verified-stable atoms, in the
    /// projected tier).
    fn intern_op(&self, op: NodeOp) -> u32 {
        if let Some(&id) = self.memo.borrow().node_ids.get(&op) {
            return id;
        }
        let (key, prop, clean) = {
            let memo = self.memo.borrow();
            let k = |id: u32| memo.keys[id as usize].as_str();
            let p = |id: u32| memo.prop[id as usize];
            let c = |id: u32| memo.clean[id as usize];
            match op {
                NodeOp::True => ("T".to_string(), false, false),
                NodeOp::False => ("F".to_string(), false, false),
                NodeOp::Atom(Some(row)) => (
                    format!("@{}", self.kripke.atoms[row as usize]),
                    true,
                    self.stable_atoms.get(row as usize).copied().unwrap_or(false),
                ),
                NodeOp::Atom(None) => ("@none".to_string(), false, false),
                NodeOp::Not(f) => (format!("!({})", k(f)), p(f), c(f)),
                NodeOp::And(a, b) => {
                    (format!("&({},{})", k(a), k(b)), p(a) && p(b), c(a) && c(b))
                }
                NodeOp::Or(a, b) => {
                    (format!("|({},{})", k(a), k(b)), p(a) && p(b), c(a) && c(b))
                }
                NodeOp::Implies(a, b) => {
                    (format!("->({},{})", k(a), k(b)), p(a) && p(b), c(a) && c(b))
                }
                NodeOp::Ex(f) => (format!("EX({})", k(f)), false, false),
                NodeOp::Ef(f) => (format!("EF({})", k(f)), false, false),
                NodeOp::Eg(f) => (format!("EG({})", k(f)), false, false),
                NodeOp::Eu(a, b) => (format!("EU({},{})", k(a), k(b)), false, false),
                NodeOp::Ax(f) => (format!("AX({})", k(f)), false, false),
                NodeOp::Af(f) => (format!("AF({})", k(f)), false, false),
                NodeOp::Ag(f) => (format!("AG({})", k(f)), false, false),
                NodeOp::Au(a, b) => (format!("AU({},{})", k(a), k(b)), false, false),
            }
        };
        let seeded =
            if self.reuse_all || clean { self.reuse.get(&key).cloned() } else { None };
        let mut memo = self.memo.borrow_mut();
        let id = memo.ops.len() as u32;
        memo.node_ids.insert(op, id);
        memo.ops.push(op);
        memo.keys.push(key);
        memo.prop.push(prop);
        memo.clean.push(clean);
        memo.sat.push(seeded);
        id
    }

    /// The satisfaction set of an interned node, memoized.
    ///
    /// KEEP IN SYNC with `direct_sat`: the two matches implement the same CTL
    /// semantics over `NodeOp` ids and `Ctl` trees respectively (the symbolic
    /// engine uses this one above `SMALL_UNIVERSE`, `direct_sat` below it, where
    /// interning costs more than recomputation). `tests/engine_differential.rs`
    /// fuzzes both paths against the explicit and legacy checkers across the
    /// threshold.
    fn sat_node(&self, id: u32) -> BitSet {
        if let Some(hit) = &self.memo.borrow().sat[id as usize] {
            return hit.clone();
        }
        let op = self.memo.borrow().ops[id as usize];
        let n = self.kripke.state_count();
        let result = match op {
            NodeOp::True => BitSet::full(n),
            NodeOp::False => BitSet::empty(n),
            // The Kripke structure stores labelling column-wise; satisfaction of an
            // atom is its precomputed row, not a per-state scan.
            NodeOp::Atom(Some(row)) => self.kripke.atom_row(row as usize).clone(),
            NodeOp::Atom(None) => BitSet::empty(n),
            NodeOp::Not(f) => {
                let mut set = self.sat_node(f);
                set.complement();
                set
            }
            NodeOp::And(a, b) => {
                let mut set = self.sat_node(a);
                set.intersect_with(&self.sat_node(b));
                set
            }
            NodeOp::Or(a, b) => {
                let mut set = self.sat_node(a);
                set.union_with(&self.sat_node(b));
                set
            }
            NodeOp::Implies(a, b) => {
                // a -> b  ≡  !a | b
                let mut not_a = self.sat_node(a);
                not_a.complement();
                not_a.union_with(&self.sat_node(b));
                not_a
            }
            NodeOp::Ex(f) => self.pre_exists(&self.sat_node(f)),
            NodeOp::Ef(f) => {
                // EF f = E [true U f]
                self.least_fixpoint_eu(&BitSet::full(n), &self.sat_node(f))
            }
            NodeOp::Eu(a, b) => self.least_fixpoint_eu(&self.sat_node(a), &self.sat_node(b)),
            NodeOp::Eg(f) => self.greatest_fixpoint_eg(&self.sat_node(f)),
            NodeOp::Ax(f) => {
                // AX f = !EX !f
                let mut not_f = self.sat_node(f);
                not_f.complement();
                let mut result = self.pre_exists(&not_f);
                result.complement();
                result
            }
            NodeOp::Af(f) => {
                // AF f = !EG !f
                let mut not_f = self.sat_node(f);
                not_f.complement();
                let mut result = self.greatest_fixpoint_eg(&not_f);
                result.complement();
                result
            }
            NodeOp::Ag(f) => {
                // AG f = !EF !f
                let mut not_f = self.sat_node(f);
                not_f.complement();
                let mut result = self.least_fixpoint_eu(&BitSet::full(n), &not_f);
                result.complement();
                result
            }
            NodeOp::Au(a, b) => {
                // A [a U b] = !(E [!b U (!a & !b)] | EG !b)
                let sat_a = self.sat_node(a);
                let sat_b = self.sat_node(b);
                let mut not_a = sat_a.clone();
                not_a.complement();
                let mut not_b = sat_b.clone();
                not_b.complement();
                let mut not_a_and_not_b = not_a;
                not_a_and_not_b.intersect_with(&not_b);
                let mut bad = self.least_fixpoint_eu(&not_b, &not_a_and_not_b);
                bad.union_with(&self.greatest_fixpoint_eg(&not_b));
                bad.complement();
                bad
            }
        };
        self.memo.borrow_mut().sat[id as usize] = Some(result.clone());
        result
    }

    /// Direct recursion with no memoization: used by the explicit engine (the
    /// differential baseline recomputes everything from scratch) and by the
    /// symbolic engine on single-word universes. The pre-image and fixpoint
    /// helpers still dispatch on the engine.
    ///
    /// KEEP IN SYNC with `sat_node` — same semantics, different node
    /// representation; see the note there.
    fn direct_sat(&self, formula: &Ctl) -> BitSet {
        let n = self.kripke.state_count();
        match formula {
            Ctl::True => BitSet::full(n),
            Ctl::False => BitSet::empty(n),
            Ctl::Atom(a) => match self.kripke.atom_index(a) {
                Some(idx) => self.kripke.atom_row(idx).clone(),
                None => BitSet::empty(n),
            },
            Ctl::Not(f) => {
                let mut set = self.direct_sat(f);
                set.complement();
                set
            }
            Ctl::And(a, b) => {
                let mut set = self.direct_sat(a);
                set.intersect_with(&self.direct_sat(b));
                set
            }
            Ctl::Or(a, b) => {
                let mut set = self.direct_sat(a);
                set.union_with(&self.direct_sat(b));
                set
            }
            Ctl::Implies(a, b) => {
                let mut not_a = self.direct_sat(a);
                not_a.complement();
                not_a.union_with(&self.direct_sat(b));
                not_a
            }
            Ctl::Ex(f) => self.pre_exists(&self.direct_sat(f)),
            Ctl::Ef(f) => self.least_fixpoint_eu(&BitSet::full(n), &self.direct_sat(f)),
            Ctl::Eu(a, b) => {
                self.least_fixpoint_eu(&self.direct_sat(a), &self.direct_sat(b))
            }
            Ctl::Eg(f) => self.greatest_fixpoint_eg(&self.direct_sat(f)),
            Ctl::Ax(f) => {
                let mut not_f = self.direct_sat(f);
                not_f.complement();
                let mut result = self.pre_exists(&not_f);
                result.complement();
                result
            }
            Ctl::Af(f) => {
                let mut not_f = self.direct_sat(f);
                not_f.complement();
                let mut result = self.greatest_fixpoint_eg(&not_f);
                result.complement();
                result
            }
            Ctl::Ag(f) => {
                let mut not_f = self.direct_sat(f);
                not_f.complement();
                let mut result = self.least_fixpoint_eu(&BitSet::full(n), &not_f);
                result.complement();
                result
            }
            Ctl::Au(a, b) => {
                let sat_a = self.direct_sat(a);
                let sat_b = self.direct_sat(b);
                let mut not_a = sat_a.clone();
                not_a.complement();
                let mut not_b = sat_b.clone();
                not_b.complement();
                let mut not_a_and_not_b = not_a;
                not_a_and_not_b.intersect_with(&not_b);
                let mut bad = self.least_fixpoint_eu(&not_b, &not_a_and_not_b);
                bad.union_with(&self.greatest_fixpoint_eg(&not_b));
                bad.complement();
                bad
            }
        }
    }

    /// States with at least one successor in `target` (the existential pre-image).
    fn pre_exists(&self, target: &BitSet) -> BitSet {
        let n = self.kripke.state_count();
        let mut result = BitSet::empty(n);
        match self.engine {
            Engine::Symbolic => {
                // `BitSet::iter` walks set words and peels bits, so only the members
                // of `target` are visited — not the whole universe.
                for to in target.iter() {
                    for &from in self.kripke.predecessors(to) {
                        result.insert(from as usize);
                    }
                }
            }
            Engine::Explicit => {
                for from in 0..n {
                    if self.kripke.successors(from).iter().any(|&s| target.contains(s as usize)) {
                        result.insert(from);
                    }
                }
            }
        }
        result
    }

    /// Least fixpoint for `E [a U b]`.
    ///
    /// The symbolic engine runs a frontier worklist over the reverse CSR edges: only
    /// states newly added in the previous step are expanded, so every reverse edge is
    /// processed at most once — O(V + E) total, versus the round-based loop's
    /// O(rounds × E) re-scan of the entire accumulated set.
    /// Above the sharding threshold with more than one worker, each round of the
    /// reverse-frontier expansion is sharded by word ranges of the frontier
    /// bitset instead ([`Self::least_fixpoint_eu_sharded`]); the least fixpoint
    /// is unique, so every schedule converges to the same set.
    fn least_fixpoint_eu(&self, sat_a: &BitSet, sat_b: &BitSet) -> BitSet {
        let _span = soteria_obs::span("checker.fixpoint_eu");
        if self.engine == Engine::Explicit || self.kripke.state_count() <= SMALL_UNIVERSE {
            return self.least_fixpoint_eu_rounds(sat_a, sat_b);
        }
        if self.shard_threads > 1 && self.kripke.state_count() >= self.shard_states {
            return self.least_fixpoint_eu_sharded(sat_a, sat_b);
        }
        let mut result = sat_b.clone();
        let mut frontier: Vec<u32> = sat_b.iter().map(|s| s as u32).collect();
        let mut pops = 0usize;
        while let Some(s) = frontier.pop() {
            pops += 1;
            if pops.is_multiple_of(ABORT_POLL_STRIDE) {
                self.poll_abort();
            }
            for &p in self.kripke.predecessors(s as usize) {
                let p_usize = p as usize;
                if sat_a.contains(p_usize) && !result.contains(p_usize) {
                    result.insert(p_usize);
                    frontier.push(p);
                }
            }
        }
        result
    }

    /// Word-sharded least fixpoint for `E [a U b]`: each round partitions the
    /// current frontier's backing words into contiguous ranges
    /// ([`word_ranges`]), one worker per range computes the pre-image of its
    /// segment into a private bitset (reading the shared CSR arrays and the
    /// round-start `result` — no shared writes), and a merge barrier unions the
    /// segments into the next frontier. Workers poll a cloned [`AbortHandle`]
    /// every [`ABORT_POLL_STRIDE`] frontier members, same stride as the
    /// sequential worklist.
    ///
    /// Byte-identical to the sequential worklist at every thread count: the
    /// rounds compute exactly the breadth-first layers of the (unique) least
    /// fixpoint of `λS. b ∪ (a ∩ pre∃(S))`, the merge is an order-insensitive
    /// union, and the bitset representation is canonical.
    fn least_fixpoint_eu_sharded(&self, sat_a: &BitSet, sat_b: &BitSet) -> BitSet {
        let n = self.kripke.state_count();
        let kripke = self.kripke;
        let abort = self.abort.clone();
        let mut result = sat_b.clone();
        let mut frontier = sat_b.clone();
        loop {
            self.poll_abort();
            soteria_obs::add("checker.sharded_rounds", 1);
            let words = frontier.words();
            let ranges = word_ranges(words.len(), self.shard_threads);
            let snapshot = &result;
            let locals = soteria_exec::par_map(&ranges, self.shard_threads, |&(lo, hi)| {
                let mut local = BitSet::empty(n);
                let mut visits = 0usize;
                for (wi, &frontier_word) in
                    words.iter().enumerate().take(hi).skip(lo)
                {
                    let mut word = frontier_word;
                    while word != 0 {
                        let s = wi * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        visits += 1;
                        if visits.is_multiple_of(ABORT_POLL_STRIDE) {
                            if let Some(handle) = &abort {
                                handle.bail_if_aborted();
                            }
                        }
                        for &p in kripke.predecessors(s) {
                            let p = p as usize;
                            if sat_a.contains(p) && !snapshot.contains(p) {
                                local.insert(p);
                            }
                        }
                    }
                }
                local
            });
            let mut grown = BitSet::empty(n);
            for local in &locals {
                grown.union_with(local);
            }
            if grown.is_empty() {
                return result;
            }
            result.union_with(&grown);
            frontier = grown;
        }
    }

    /// Round-based least fixpoint (the explicit engine's baseline algorithm).
    fn least_fixpoint_eu_rounds(&self, sat_a: &BitSet, sat_b: &BitSet) -> BitSet {
        let mut result = sat_b.clone();
        loop {
            self.poll_abort();
            let mut pre = self.pre_exists(&result);
            pre.intersect_with(sat_a);
            pre.union_with(&result);
            if pre == result {
                return result;
            }
            result = pre;
        }
    }

    /// Greatest fixpoint for `EG f`.
    ///
    /// The symbolic engine uses successor-count elimination: every state of `sat f`
    /// tracks how many of its successors remain viable; states whose count reaches
    /// zero are eliminated and their predecessors decremented through the reverse
    /// CSR edges. Each edge is touched a constant number of times — O(V + E).
    /// Above the sharding threshold with more than one worker, elimination runs
    /// in word-sharded rounds instead ([`Self::greatest_fixpoint_eg_sharded`]);
    /// the greatest fixpoint is unique, so every schedule converges to the same
    /// set.
    fn greatest_fixpoint_eg(&self, sat_f: &BitSet) -> BitSet {
        let _span = soteria_obs::span("checker.fixpoint_eg");
        if self.engine == Engine::Explicit || self.kripke.state_count() <= SMALL_UNIVERSE {
            return self.greatest_fixpoint_eg_rounds(sat_f);
        }
        if self.shard_threads > 1 && self.kripke.state_count() >= self.shard_states {
            return self.greatest_fixpoint_eg_sharded(sat_f);
        }
        let n = self.kripke.state_count();
        let mut result = sat_f.clone();
        let mut viable = vec![0u32; n];
        let mut eliminated: Vec<u32> = Vec::new();
        for s in sat_f.iter() {
            let count = self
                .kripke
                .successors(s)
                .iter()
                .filter(|&&t| sat_f.contains(t as usize))
                .count() as u32;
            viable[s] = count;
            if count == 0 {
                result.remove(s);
                eliminated.push(s as u32);
            }
        }
        let mut pops = 0usize;
        while let Some(s) = eliminated.pop() {
            pops += 1;
            if pops.is_multiple_of(ABORT_POLL_STRIDE) {
                self.poll_abort();
            }
            for &p in self.kripke.predecessors(s as usize) {
                let p_usize = p as usize;
                if result.contains(p_usize) {
                    viable[p_usize] -= 1;
                    if viable[p_usize] == 0 {
                        result.remove(p_usize);
                        eliminated.push(p);
                    }
                }
            }
        }
        result
    }

    /// Word-sharded greatest fixpoint for `EG f`: each round re-examines a
    /// *dirty* set (initially all of `sat f`, thereafter the surviving
    /// predecessors of the states eliminated last round), sharded by word
    /// ranges — each worker marks the members of its segment that have no
    /// remaining successor in the round-start `result` into a private bitset,
    /// and a merge barrier unions the eliminations. Workers poll a cloned
    /// [`AbortHandle`] every [`ABORT_POLL_STRIDE`] dirty members.
    ///
    /// Byte-identical to sequential successor-count elimination at every thread
    /// count: a state is ever eliminated only when it has no viable successor
    /// (against a conservative, round-start snapshot), a state that loses its
    /// last viable successor mid-round is re-checked next round via the dirty
    /// set, so the loop terminates exactly at the (unique) greatest fixpoint of
    /// `λS. sat f ∩ pre∃(S)`.
    fn greatest_fixpoint_eg_sharded(&self, sat_f: &BitSet) -> BitSet {
        let n = self.kripke.state_count();
        let kripke = self.kripke;
        let abort = self.abort.clone();
        let mut result = sat_f.clone();
        let mut dirty = sat_f.clone();
        loop {
            self.poll_abort();
            soteria_obs::add("checker.sharded_rounds", 1);
            let words = dirty.words();
            let ranges = word_ranges(words.len(), self.shard_threads);
            let snapshot = &result;
            let locals = soteria_exec::par_map(&ranges, self.shard_threads, |&(lo, hi)| {
                let mut local = BitSet::empty(n);
                let mut visits = 0usize;
                for (wi, &frontier_word) in
                    words.iter().enumerate().take(hi).skip(lo)
                {
                    let mut word = frontier_word;
                    while word != 0 {
                        let s = wi * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        visits += 1;
                        if visits.is_multiple_of(ABORT_POLL_STRIDE) {
                            if let Some(handle) = &abort {
                                handle.bail_if_aborted();
                            }
                        }
                        if snapshot.contains(s)
                            && !kripke
                                .successors(s)
                                .iter()
                                .any(|&t| snapshot.contains(t as usize))
                        {
                            local.insert(s);
                        }
                    }
                }
                local
            });
            let mut gone = BitSet::empty(n);
            for local in &locals {
                gone.union_with(local);
            }
            if gone.is_empty() {
                return result;
            }
            result.difference_with(&gone);
            let mut next = BitSet::empty(n);
            for s in gone.iter() {
                for &p in kripke.predecessors(s) {
                    if result.contains(p as usize) {
                        next.insert(p as usize);
                    }
                }
            }
            dirty = next;
        }
    }

    /// Round-based greatest fixpoint (the explicit engine's baseline algorithm).
    fn greatest_fixpoint_eg_rounds(&self, sat_f: &BitSet) -> BitSet {
        let mut result = sat_f.clone();
        loop {
            self.poll_abort();
            let mut pre = self.pre_exists(&result);
            pre.intersect_with(sat_f);
            if pre == result {
                return result;
            }
            result = pre;
        }
    }

    /// Checks a formula against the Kripke structure's initial states and extracts a
    /// counter-example when it fails.
    pub fn check(&self, formula: &Ctl) -> CheckResult {
        let sat = self.sat(formula);
        let violating: Vec<usize> = self
            .kripke
            .initial
            .iter()
            .copied()
            .filter(|s| !sat.contains(*s))
            .collect();
        if violating.is_empty() {
            return CheckResult { holds: true, violating_initial_states: 0, counterexample: None };
        }
        let counterexample = self.counterexample(formula, violating[0]);
        CheckResult {
            holds: false,
            violating_initial_states: violating.len(),
            counterexample: Some(counterexample),
        }
    }

    /// Checks a batch of properties against the same structure. With the symbolic
    /// engine on a universe above `SMALL_UNIVERSE`, the satisfaction-set cache is
    /// shared across the whole batch: subformulas common to several properties
    /// (event atoms, `triggered`, their negations) are computed once. Below the
    /// threshold (and for the explicit baseline) every formula recomputes — there
    /// each set operation is a single `u64` op, cheaper than cache bookkeeping.
    pub fn check_all(&self, formulas: &[Ctl]) -> Vec<CheckResult> {
        let _span = soteria_obs::span("checker.check_all");
        formulas
            .iter()
            .map(|f| {
                self.poll_abort();
                self.check(f)
            })
            .collect()
    }

    /// Builds a counter-example trace starting at `from`. For `AG f` the trace is the
    /// shortest path from `from` to a state violating `f`; for other shapes the trace
    /// is the violating initial state alone.
    fn counterexample(&self, formula: &Ctl, from: usize) -> Vec<String> {
        if let Ctl::Ag(body) = formula {
            // Above `SMALL_UNIVERSE` with the symbolic engine, `sat(body)` hits the
            // memo: the body set was already computed while checking the formula
            // itself. Small universes recompute it (a handful of word ops).
            let mut bad = self.sat(body);
            bad.complement();
            if let Some(path) = self.shortest_path(from, &bad) {
                return path.into_iter().map(|s| self.kripke.state_name(s)).collect();
            }
        }
        vec![self.kripke.state_name(from)]
    }

    /// Breadth-first shortest path from `from` to any state in `targets`, over the
    /// same CSR successor array the engines use.
    fn shortest_path(&self, from: usize, targets: &BitSet) -> Option<Vec<usize>> {
        let n = self.kripke.state_count();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            if targets.contains(s) {
                let mut path = vec![s];
                let mut cur = s;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &succ in self.kripke.successors(s) {
                let succ = succ as usize;
                if !visited[succ] {
                    visited[succ] = true;
                    parent[succ] = Some(s);
                    queue.push_back(succ);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built three-state Kripke structure:
    /// s0 --> s1 --> s2, s2 loops; atoms: p on s0 and s1, q on s2.
    fn line_kripke() -> Kripke {
        let mut kripke = Kripke::from_lists(
            vec!["p".into(), "q".into()],
            vec!["s0".into(), "s1".into(), "s2".into()],
            &[vec![1], vec![2], vec![2]],
            vec![0],
        );
        kripke.set_labels(&[vec![0], vec![0], vec![1]]);
        kripke
    }

    fn check(engine: Engine, formula: &Ctl) -> CheckResult {
        let kripke = line_kripke();
        ModelChecker::new(&kripke, engine).check(formula)
    }

    #[test]
    fn basic_temporal_operators() {
        for engine in [Engine::Symbolic, Engine::Explicit] {
            // AF q: every path eventually reaches s2.
            assert!(check(engine, &Ctl::atom("q").always_finally()).holds);
            // AG p fails (s2 has no p).
            let r = check(engine, &Ctl::atom("p").always_globally());
            assert!(!r.holds);
            assert_eq!(r.violating_initial_states, 1);
            // EF q holds, EG p fails, EX p holds (s0 -> s1 has p).
            assert!(check(engine, &Ctl::atom("q").exists_finally()).holds);
            assert!(!check(engine, &Ctl::Eg(Box::new(Ctl::atom("p")))).holds);
            assert!(check(engine, &Ctl::Ex(Box::new(Ctl::atom("p")))).holds);
            // AX p holds at s0 (only successor s1 has p).
            assert!(check(engine, &Ctl::atom("p").all_next()).holds);
            // A [p U q] holds on the single path.
            assert!(check(engine, &Ctl::Au(Box::new(Ctl::atom("p")), Box::new(Ctl::atom("q")))).holds);
            // E [p U q] holds as well.
            assert!(check(engine, &Ctl::Eu(Box::new(Ctl::atom("p")), Box::new(Ctl::atom("q")))).holds);
            // AG (p | q) holds everywhere.
            assert!(check(engine, &Ctl::atom("p").or(Ctl::atom("q")).always_globally()).holds);
            // Implication and negation.
            assert!(check(engine, &Ctl::atom("q").implies(Ctl::atom("q")).always_globally()).holds);
            assert!(check(engine, &Ctl::False.not()).holds);
        }
    }

    #[test]
    fn counterexample_path_for_ag() {
        let kripke = line_kripke();
        let checker = ModelChecker::new(&kripke, Engine::Symbolic);
        let result = checker.check(&Ctl::atom("p").always_globally());
        let trace = result.counterexample.unwrap();
        assert_eq!(trace, vec!["s0".to_string(), "s1".to_string(), "s2".to_string()]);
    }

    #[test]
    fn engines_agree_on_random_like_formulas() {
        let kripke = line_kripke();
        let formulas = vec![
            Ctl::atom("p").and(Ctl::atom("q").not()).exists_finally(),
            Ctl::Ag(Box::new(Ctl::atom("p").implies(Ctl::atom("q").exists_finally()))),
            Ctl::Af(Box::new(Ctl::atom("q").and(Ctl::atom("p").not()))),
            Ctl::Eg(Box::new(Ctl::atom("q"))),
            Ctl::Au(Box::new(Ctl::True), Box::new(Ctl::atom("q"))),
        ];
        let symbolic = ModelChecker::new(&kripke, Engine::Symbolic);
        let explicit = ModelChecker::new(&kripke, Engine::Explicit);
        for f in formulas {
            let a = symbolic.sat(&f);
            let b = explicit.sat(&f);
            assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>(), "formula {f}");
        }
    }

    #[test]
    fn check_all_matches_individual_checks() {
        let kripke = line_kripke();
        let formulas = vec![
            Ctl::atom("p").always_globally(),
            Ctl::atom("q").always_finally(),
            Ctl::atom("p").or(Ctl::atom("q")).always_globally(),
            Ctl::atom("p").always_globally(), // repeated: served from the cache
        ];
        let batch = ModelChecker::new(&kripke, Engine::Symbolic);
        let batched = batch.check_all(&formulas);
        for (f, b) in formulas.iter().zip(&batched) {
            let fresh = ModelChecker::new(&kripke, Engine::Symbolic).check(f);
            assert_eq!(&fresh, b, "batched result differs on {f}");
        }
        assert_eq!(batched[0], batched[3]);
    }

    /// A 100-state ring (above `SMALL_UNIVERSE`, so the frontier fixpoints and the
    /// memo cache engage): p on even states, q only on state 99.
    fn ring_kripke() -> Kripke {
        let n = 100;
        let succs: Vec<Vec<usize>> = (0..n).map(|s| vec![(s + 1) % n]).collect();
        let names: Vec<String> = (0..n).map(|s| format!("r{s}")).collect();
        let mut kripke =
            Kripke::from_lists(vec!["p".into(), "q".into()], names, &succs, vec![0]);
        let labels: Vec<Vec<usize>> = (0..n)
            .map(|s| {
                let mut l = Vec::new();
                if s % 2 == 0 {
                    l.push(0);
                }
                if s == 99 {
                    l.push(1);
                }
                l
            })
            .collect();
        kripke.set_labels(&labels);
        kripke
    }

    #[test]
    fn frontier_and_rounds_agree_above_the_small_universe_threshold() {
        let kripke = ring_kripke();
        let symbolic = ModelChecker::new(&kripke, Engine::Symbolic);
        let explicit = ModelChecker::new(&kripke, Engine::Explicit);
        let formulas = vec![
            Ctl::atom("q").exists_finally(),
            Ctl::atom("q").always_finally(),
            Ctl::Eg(Box::new(Ctl::atom("p").or(Ctl::atom("q").not()))),
            Ctl::Eu(Box::new(Ctl::atom("p").not().not()), Box::new(Ctl::atom("q"))),
            Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally(),
            Ctl::Au(Box::new(Ctl::True), Box::new(Ctl::atom("q"))),
        ];
        for f in &formulas {
            assert_eq!(
                symbolic.sat(f).iter().collect::<Vec<_>>(),
                explicit.sat(f).iter().collect::<Vec<_>>(),
                "engines disagree on {f}"
            );
        }
    }

    #[test]
    fn sat_cache_is_consistent_across_repeated_queries() {
        let kripke = ring_kripke();
        let checker = ModelChecker::new(&kripke, Engine::Symbolic);
        let f = Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally();
        let first = checker.sat(&f);
        let second = checker.sat(&f);
        assert_eq!(first.iter().collect::<Vec<_>>(), second.iter().collect::<Vec<_>>());
        // Every subformula node was interned and memoized: p, q, EF q, p -> EF q,
        // AG (...) — five nodes, five cached sets.
        let memo = checker.memo.borrow();
        assert_eq!(memo.ops.len(), 5);
        assert!(memo.sat.iter().all(|s| s.is_some()));
        // Structurally identical subformulas share one node.
        drop(memo);
        checker.sat(&Ctl::atom("q").exists_finally());
        assert_eq!(checker.memo.borrow().ops.len(), 5);
    }

    #[test]
    fn sharded_fixpoints_match_sequential_at_every_thread_count() {
        let kripke = ring_kripke();
        let formulas = vec![
            Ctl::atom("q").exists_finally(),
            Ctl::atom("q").always_finally(),
            Ctl::Eg(Box::new(Ctl::atom("p").or(Ctl::atom("q").not()))),
            Ctl::Eu(Box::new(Ctl::atom("p")), Box::new(Ctl::atom("q"))),
            Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally(),
            Ctl::Au(Box::new(Ctl::True), Box::new(Ctl::atom("q"))),
        ];
        // shard_states = 1 forces the threshold so the 100-state ring shards.
        let sequential = ModelChecker::with_sharding(&kripke, Engine::Symbolic, 1, 1);
        for threads in [1, 2, 4, 8] {
            let sharded = ModelChecker::with_sharding(&kripke, Engine::Symbolic, threads, 1);
            for f in &formulas {
                assert_eq!(
                    sequential.sat(f),
                    sharded.sat(f),
                    "sharded sat differs at {threads} threads on {f}"
                );
                assert_eq!(
                    sequential.check(f),
                    sharded.check(f),
                    "sharded check differs at {threads} threads on {f}"
                );
            }
        }
    }

    #[test]
    fn word_ranges_cover_exactly_once() {
        for words in [0, 1, 3, 64, 65, 1000] {
            for shards in [1, 2, 4, 7, 64, 2000] {
                let ranges = word_ranges(words, shards);
                let mut covered = 0;
                let mut cursor = 0;
                for &(lo, hi) in &ranges {
                    assert!(lo >= cursor && lo < hi, "range ({lo},{hi}) out of order");
                    assert_eq!(lo, cursor, "gap before ({lo},{hi})");
                    covered += hi - lo;
                    cursor = hi;
                }
                assert_eq!(covered, words, "words={words} shards={shards}");
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn snapshot_reuse_on_identical_structure_is_byte_identical() {
        let kripke = ring_kripke();
        let formulas = vec![
            Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally(),
            Ctl::atom("q").always_finally(),
            Ctl::atom("p").and(Ctl::atom("q").not()).exists_finally(),
        ];
        let cold = ModelChecker::new(&kripke, Engine::Symbolic);
        let cold_results = cold.check_all(&formulas);
        let snapshot = cold.snapshot();
        assert!(!snapshot.is_empty());
        let warm =
            ModelChecker::new(&kripke, Engine::Symbolic).reuse_from(&snapshot, &[]);
        // Identical tier: every node (temporal included) is seeded, so the memo
        // holds a sat set for each formula's root before any computation.
        assert!(warm.reuse_all);
        assert_eq!(warm.check_all(&formulas), cold_results);
    }

    #[test]
    fn snapshot_reuse_projects_propositional_sets_onto_a_changed_structure() {
        // Old: the 100-ring. New: the same ring with one extra edge (99 -> 50),
        // same states and labels — so atoms are stable but temporal sets are not.
        let old = ring_kripke();
        let n = 100;
        let succs: Vec<Vec<usize>> =
            (0..n).map(|s| if s == 99 { vec![0, 50] } else { vec![(s + 1) % n] }).collect();
        let names: Vec<String> = (0..n).map(|s| format!("r{s}")).collect();
        let mut new =
            Kripke::from_lists(vec!["p".into(), "q".into()], names, &succs, vec![0]);
        let labels: Vec<Vec<usize>> = (0..n)
            .map(|s| {
                let mut l = Vec::new();
                if s % 2 == 0 {
                    l.push(0);
                }
                if s == 99 {
                    l.push(1);
                }
                l
            })
            .collect();
        new.set_labels(&labels);
        let formulas = vec![
            Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally(),
            Ctl::atom("p").and(Ctl::atom("q").not()).exists_finally(),
            Ctl::Eg(Box::new(Ctl::atom("p").not())),
        ];
        let cold = ModelChecker::new(&old, Engine::Symbolic);
        cold.check_all(&formulas);
        let snapshot = cold.snapshot();
        let warm = ModelChecker::new(&new, Engine::Symbolic).reuse_from(&snapshot, &[]);
        assert!(!warm.reuse_all);
        assert!(warm.stable_atoms.iter().all(|&s| s), "unchanged labels must verify stable");
        assert!(!warm.reuse.is_empty(), "propositional sets must project");
        let fresh = ModelChecker::new(&new, Engine::Symbolic);
        assert_eq!(warm.check_all(&formulas), fresh.check_all(&formulas));
        // A dirty prefix masks its atoms: nothing over `p` may seed.
        let masked = ModelChecker::new(&new, Engine::Symbolic)
            .reuse_from(&snapshot, &["p".to_string()]);
        assert!(!masked.stable_atoms[0]);
        assert_eq!(masked.check_all(&formulas), fresh.check_all(&formulas));
    }

    #[test]
    fn unknown_atom_is_false_everywhere() {
        let kripke = line_kripke();
        let checker = ModelChecker::new(&kripke, Engine::Symbolic);
        assert!(checker.sat(&Ctl::atom("missing")).is_empty());
        let result = checker.check(&Ctl::atom("missing").always_globally());
        assert!(!result.holds);
    }
}
