//! CTL model checking over Kripke structures, with counter-example extraction.
//!
//! Two engines are provided with identical semantics:
//!
//! * [`Engine::Symbolic`] — the default; computes satisfaction sets with packed bitset
//!   fixpoints (the role BDDs play in NuSMV);
//! * [`Engine::Explicit`] — a straightforward per-state labelling over `Vec<bool>`,
//!   used for differential testing and the engine-comparison bench.

use crate::bitset::BitSet;
use crate::ctl::Ctl;
use crate::kripke::Kripke;

/// Which fixpoint engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Packed bitset fixpoints (BDD-style set computation).
    #[default]
    Symbolic,
    /// Per-state boolean vectors.
    Explicit,
}

/// The outcome of checking one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// True if every initial state satisfies the formula.
    pub holds: bool,
    /// Number of initial states violating the formula.
    pub violating_initial_states: usize,
    /// A counter-example trace (state names) when the property fails, starting from a
    /// violating initial state. For `AG`-shaped properties this is a path to a state
    /// where the body fails; otherwise it is the violating initial state itself.
    pub counterexample: Option<Vec<String>>,
}

/// A CTL model checker over one Kripke structure.
pub struct ModelChecker<'a> {
    kripke: &'a Kripke,
    engine: Engine,
    predecessors: Vec<Vec<usize>>,
}

impl<'a> ModelChecker<'a> {
    /// Creates a checker.
    pub fn new(kripke: &'a Kripke, engine: Engine) -> Self {
        let mut predecessors = vec![Vec::new(); kripke.state_count()];
        for (from, succs) in kripke.successors.iter().enumerate() {
            for &to in succs {
                predecessors[to].push(from);
            }
        }
        ModelChecker { kripke, engine, predecessors }
    }

    /// The set of states satisfying a formula.
    pub fn sat(&self, formula: &Ctl) -> BitSet {
        let n = self.kripke.state_count();
        match formula {
            Ctl::True => BitSet::full(n),
            Ctl::False => BitSet::empty(n),
            Ctl::Atom(a) => match self.kripke.atom_index(a) {
                // The Kripke structure stores labelling column-wise; satisfaction of
                // an atom is its precomputed row, not a per-state scan.
                Some(idx) => self.kripke.atom_row(idx).clone(),
                None => BitSet::empty(n),
            },
            Ctl::Not(f) => {
                let mut set = self.sat(f);
                set.complement();
                set
            }
            Ctl::And(a, b) => {
                let mut set = self.sat(a);
                set.intersect_with(&self.sat(b));
                set
            }
            Ctl::Or(a, b) => {
                let mut set = self.sat(a);
                set.union_with(&self.sat(b));
                set
            }
            Ctl::Implies(a, b) => {
                // a -> b  ≡  !a | b
                let mut not_a = self.sat(a);
                not_a.complement();
                not_a.union_with(&self.sat(b));
                not_a
            }
            Ctl::Ex(f) => self.pre_exists(&self.sat(f)),
            Ctl::Ef(f) => {
                // EF f = E [true U f]
                self.least_fixpoint_eu(&BitSet::full(n), &self.sat(f))
            }
            Ctl::Eu(a, b) => self.least_fixpoint_eu(&self.sat(a), &self.sat(b)),
            Ctl::Eg(f) => self.greatest_fixpoint_eg(&self.sat(f)),
            Ctl::Ax(f) => {
                // AX f = !EX !f
                let mut not_f = self.sat(f);
                not_f.complement();
                let mut result = self.pre_exists(&not_f);
                result.complement();
                result
            }
            Ctl::Af(f) => {
                // AF f = !EG !f
                let mut not_f = self.sat(f);
                not_f.complement();
                let mut result = self.greatest_fixpoint_eg(&not_f);
                result.complement();
                result
            }
            Ctl::Ag(f) => {
                // AG f = !EF !f
                let mut not_f = self.sat(f);
                not_f.complement();
                let mut result = self.least_fixpoint_eu(&BitSet::full(n), &not_f);
                result.complement();
                result
            }
            Ctl::Au(a, b) => {
                // A [a U b] = !(E [!b U (!a & !b)] | EG !b)
                let sat_a = self.sat(a);
                let sat_b = self.sat(b);
                let mut not_a = sat_a.clone();
                not_a.complement();
                let mut not_b = sat_b.clone();
                not_b.complement();
                let mut not_a_and_not_b = not_a;
                not_a_and_not_b.intersect_with(&not_b);
                let mut bad = self.least_fixpoint_eu(&not_b, &not_a_and_not_b);
                bad.union_with(&self.greatest_fixpoint_eg(&not_b));
                bad.complement();
                bad
            }
        }
    }

    /// States with at least one successor in `target` (the existential pre-image).
    fn pre_exists(&self, target: &BitSet) -> BitSet {
        let n = self.kripke.state_count();
        let mut result = BitSet::empty(n);
        match self.engine {
            Engine::Symbolic => {
                for to in target.iter() {
                    for &from in &self.predecessors[to] {
                        result.insert(from);
                    }
                }
            }
            Engine::Explicit => {
                for from in 0..n {
                    if self.kripke.successors[from].iter().any(|&s| target.contains(s)) {
                        result.insert(from);
                    }
                }
            }
        }
        result
    }

    /// Least fixpoint for `E [a U b]`.
    fn least_fixpoint_eu(&self, sat_a: &BitSet, sat_b: &BitSet) -> BitSet {
        let mut result = sat_b.clone();
        loop {
            let mut pre = self.pre_exists(&result);
            pre.intersect_with(sat_a);
            pre.union_with(&result);
            if pre == result {
                return result;
            }
            result = pre;
        }
    }

    /// Greatest fixpoint for `EG f`.
    fn greatest_fixpoint_eg(&self, sat_f: &BitSet) -> BitSet {
        let mut result = sat_f.clone();
        loop {
            let mut pre = self.pre_exists(&result);
            pre.intersect_with(sat_f);
            if pre == result {
                return result;
            }
            result = pre;
        }
    }

    /// Checks a formula against the Kripke structure's initial states and extracts a
    /// counter-example when it fails.
    pub fn check(&self, formula: &Ctl) -> CheckResult {
        let sat = self.sat(formula);
        let violating: Vec<usize> = self
            .kripke
            .initial
            .iter()
            .copied()
            .filter(|s| !sat.contains(*s))
            .collect();
        if violating.is_empty() {
            return CheckResult { holds: true, violating_initial_states: 0, counterexample: None };
        }
        let counterexample = self.counterexample(formula, violating[0]);
        CheckResult {
            holds: false,
            violating_initial_states: violating.len(),
            counterexample: Some(counterexample),
        }
    }

    /// Builds a counter-example trace starting at `from`. For `AG f` the trace is the
    /// shortest path from `from` to a state violating `f`; for other shapes the trace
    /// is the violating initial state alone.
    fn counterexample(&self, formula: &Ctl, from: usize) -> Vec<String> {
        if let Ctl::Ag(body) = formula {
            let mut bad = self.sat(body);
            bad.complement();
            if let Some(path) = self.shortest_path(from, &bad) {
                return path.into_iter().map(|s| self.trace_name(s)).collect();
            }
        }
        vec![self.trace_name(from)]
    }

    fn trace_name(&self, state: usize) -> String {
        self.kripke.state_names[state].clone()
    }

    /// Breadth-first shortest path from `from` to any state in `targets`.
    fn shortest_path(&self, from: usize, targets: &BitSet) -> Option<Vec<usize>> {
        let n = self.kripke.state_count();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            if targets.contains(s) {
                let mut path = vec![s];
                let mut cur = s;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &succ in &self.kripke.successors[s] {
                if !visited[succ] {
                    visited[succ] = true;
                    parent[succ] = Some(s);
                    queue.push_back(succ);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built three-state Kripke structure:
    /// s0 --> s1 --> s2, s2 loops; atoms: p on s0 and s1, q on s2.
    fn line_kripke() -> Kripke {
        let mut kripke = Kripke {
            atoms: vec!["p".into(), "q".into()],
            state_names: vec!["s0".into(), "s1".into(), "s2".into()],
            successors: vec![vec![1], vec![2], vec![2]],
            initial: vec![0],
            model_state: vec![0, 1, 2],
            incoming_event: vec![None, None, None],
            incoming_app: vec![None, None, None],
            ..Default::default()
        };
        kripke.set_labels(&[vec![0], vec![0], vec![1]]);
        kripke
    }

    fn check(engine: Engine, formula: &Ctl) -> CheckResult {
        let kripke = line_kripke();
        ModelChecker::new(&kripke, engine).check(formula)
    }

    #[test]
    fn basic_temporal_operators() {
        for engine in [Engine::Symbolic, Engine::Explicit] {
            // AF q: every path eventually reaches s2.
            assert!(check(engine, &Ctl::atom("q").always_finally()).holds);
            // AG p fails (s2 has no p).
            let r = check(engine, &Ctl::atom("p").always_globally());
            assert!(!r.holds);
            assert_eq!(r.violating_initial_states, 1);
            // EF q holds, EG p fails, EX p holds (s0 -> s1 has p).
            assert!(check(engine, &Ctl::atom("q").exists_finally()).holds);
            assert!(!check(engine, &Ctl::Eg(Box::new(Ctl::atom("p")))).holds);
            assert!(check(engine, &Ctl::Ex(Box::new(Ctl::atom("p")))).holds);
            // AX p holds at s0 (only successor s1 has p).
            assert!(check(engine, &Ctl::atom("p").all_next()).holds);
            // A [p U q] holds on the single path.
            assert!(check(engine, &Ctl::Au(Box::new(Ctl::atom("p")), Box::new(Ctl::atom("q")))).holds);
            // E [p U q] holds as well.
            assert!(check(engine, &Ctl::Eu(Box::new(Ctl::atom("p")), Box::new(Ctl::atom("q")))).holds);
            // AG (p | q) holds everywhere.
            assert!(check(engine, &Ctl::atom("p").or(Ctl::atom("q")).always_globally()).holds);
            // Implication and negation.
            assert!(check(engine, &Ctl::atom("q").implies(Ctl::atom("q")).always_globally()).holds);
            assert!(check(engine, &Ctl::False.not()).holds);
        }
    }

    #[test]
    fn counterexample_path_for_ag() {
        let kripke = line_kripke();
        let checker = ModelChecker::new(&kripke, Engine::Symbolic);
        let result = checker.check(&Ctl::atom("p").always_globally());
        let trace = result.counterexample.unwrap();
        assert_eq!(trace, vec!["s0".to_string(), "s1".to_string(), "s2".to_string()]);
    }

    #[test]
    fn engines_agree_on_random_like_formulas() {
        let kripke = line_kripke();
        let formulas = vec![
            Ctl::atom("p").and(Ctl::atom("q").not()).exists_finally(),
            Ctl::Ag(Box::new(Ctl::atom("p").implies(Ctl::atom("q").exists_finally()))),
            Ctl::Af(Box::new(Ctl::atom("q").and(Ctl::atom("p").not()))),
            Ctl::Eg(Box::new(Ctl::atom("q"))),
            Ctl::Au(Box::new(Ctl::True), Box::new(Ctl::atom("q"))),
        ];
        let symbolic = ModelChecker::new(&kripke, Engine::Symbolic);
        let explicit = ModelChecker::new(&kripke, Engine::Explicit);
        for f in formulas {
            let a = symbolic.sat(&f);
            let b = explicit.sat(&f);
            assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>(), "formula {f}");
        }
    }

    #[test]
    fn unknown_atom_is_false_everywhere() {
        let kripke = line_kripke();
        let checker = ModelChecker::new(&kripke, Engine::Symbolic);
        assert!(checker.sat(&Ctl::atom("missing")).is_empty());
        let result = checker.check(&Ctl::atom("missing").always_globally());
        assert!(!result.holds);
    }
}
