//! A from-scratch symbolic model checker standing in for NuSMV (Sec. 5 of the paper).
//!
//! Soteria translates each extracted state model into a Kripke structure and verifies
//! temporal-logic properties with NuSMV. This crate provides the equivalent substrate:
//!
//! * [`Kripke`] — Kripke structures derived from state models, with event labels
//!   exposed as atomic propositions;
//! * [`Ctl`] — CTL formula syntax with convenience builders;
//! * [`ModelChecker`] — exact CTL model checking with two engines (packed-bitset
//!   "symbolic" fixpoints and an explicit per-state labelling) plus counter-example
//!   extraction;
//! * [`render_smv`] — SMV-format output of models and specs for external inspection.

pub mod bitset;
pub mod checker;
pub mod ctl;
pub mod kripke;
pub mod smv;

pub use bitset::BitSet;
pub use checker::{CheckResult, Engine, ModelChecker};
pub use ctl::Ctl;
pub use kripke::Kripke;
pub use smv::{render_smv, smv_formula};
