//! A from-scratch symbolic model checker standing in for NuSMV (Sec. 5 of the paper).
//!
//! Soteria translates each extracted state model into a Kripke structure and verifies
//! temporal-logic properties with NuSMV. This crate provides the equivalent substrate:
//!
//! * [`Kripke`] — Kripke structures derived from state models, with event labels
//!   exposed as atomic propositions, the transition relation stored once as forward
//!   and reverse CSR arrays, and state names formatted lazily on demand;
//! * [`Ctl`] — CTL formula syntax with convenience builders and structural hashing;
//! * [`ModelChecker`] — exact CTL model checking with two engines (O(V+E)
//!   frontier/elimination fixpoints over packed bitsets, and an explicit per-state
//!   baseline), cross-property satisfaction-set memoization with a batch
//!   [`ModelChecker::check_all`] entry point, and counter-example extraction;
//! * [`check_all_parallel`] — property-level fan-out: shards a batch of
//!   independent root formulas across per-thread checkers (one sat-set memo per
//!   shard) on large universes, byte-identical to the sequential batch
//!   ([`check_all_parallel_with`] exposes both sharding thresholds);
//! * [`SatSnapshot`] — a frozen export of one checker's memoized satisfaction
//!   sets for incremental re-verification: a later checker over the same (or a
//!   single-member-edited) structure seeds its memo from the snapshot via
//!   [`ModelChecker::reuse_from`] instead of recomputing, byte-identically;
//! * [`LegacyModelChecker`] — the frozen pre-CSR round-based checker, kept as the
//!   "old" side of the `verification_old_vs_new` engine-equivalence gate;
//! * [`render_smv`] — SMV-format output of models and specs for external inspection.

pub mod bitset;
pub mod checker;
pub mod ctl;
pub mod kripke;
pub mod legacy;
pub mod parallel;
pub mod smv;

pub use bitset::BitSet;
pub use checker::{CheckResult, Engine, ModelChecker, SatSnapshot, FIXPOINT_SHARD_STATES};
pub use ctl::Ctl;
pub use kripke::Kripke;
pub use legacy::LegacyModelChecker;
pub use parallel::{check_all_parallel, check_all_parallel_with, PARALLEL_UNIVERSE};
pub use smv::{render_smv, smv_formula};
