//! Property-level fan-out: sharding a batch of independent root formulas across
//! per-thread [`ModelChecker`]s.
//!
//! The P.1–P.30 property sweep checks ~30 root formulas against one immutable
//! [`Kripke`] structure. Each check is a pure function of `(structure, formula)`
//! — the only mutable state is the checker's sat-set memo, which is a cache, not
//! an input — so the formulas can be partitioned across threads with one checker
//! (and therefore one memo) per shard. Shards lose some cross-shard subformula
//! sharing, but on large universes (the market G.3 union has 46,944 states) the
//! per-formula fixpoints dwarf the duplicated atom rows.

use crate::checker::{CheckResult, Engine, ModelChecker};
use crate::ctl::Ctl;
use crate::kripke::Kripke;

/// Universes at or below this state count always check sequentially: a full sweep
/// finishes in microseconds there, under the cost of spawning a scoped thread.
pub const PARALLEL_UNIVERSE: usize = 2_048;

/// Checks `formulas` against `kripke` on up to `threads` workers, returning the
/// same `Vec<CheckResult>` (order included) as
/// `ModelChecker::new(kripke, engine).check_all(formulas)`.
///
/// The formulas are split into contiguous shards, one per worker; every shard
/// runs on its own [`ModelChecker`] so each thread has a private sat-set memo
/// over the shared immutable structure — no locking on the checking path. Each
/// `CheckResult` (verdict, violating-state count, counter-example trace) is
/// deterministic per formula, so the output is byte-identical at every thread
/// count; `threads <= 1`, a single formula, or a universe at or below
/// [`PARALLEL_UNIVERSE`] states fall back to the sequential batch.
pub fn check_all_parallel(
    kripke: &Kripke,
    engine: Engine,
    formulas: &[Ctl],
    threads: usize,
) -> Vec<CheckResult> {
    check_all_parallel_with(kripke, engine, formulas, threads, 0, 0)
}

/// [`check_all_parallel`] with both sharding thresholds explicit (0 = auto).
///
/// * `property_shard_states` — minimum universe for the property-level fan-out
///   (default [`PARALLEL_UNIVERSE`], or `SOTERIA_SHARD_STATES` when set).
/// * `fixpoint_shard_states` — the in-formula fixpoint-sharding threshold
///   passed down to every [`ModelChecker::with_sharding`] (default
///   [`crate::checker::FIXPOINT_SHARD_STATES`], or `SOTERIA_SHARD_STATES`).
///
/// The two levels compose without oversubscription: property-shard workers run
/// with `threads = 0`, which `resolve_threads` pins to 1 on a parallel worker
/// thread, so in-formula sharding self-disables under a property fan-out. The
/// sequential fallback keeps the caller's thread budget, so a single huge
/// formula (or a small batch) still shards *inside* its fixpoints.
pub fn check_all_parallel_with(
    kripke: &Kripke,
    engine: Engine,
    formulas: &[Ctl],
    threads: usize,
    property_shard_states: usize,
    fixpoint_shard_states: usize,
) -> Vec<CheckResult> {
    let property_threshold =
        soteria_exec::resolve_shard_states(property_shard_states, PARALLEL_UNIVERSE);
    if threads <= 1 || formulas.len() <= 1 || kripke.state_count() <= property_threshold {
        return ModelChecker::with_sharding(kripke, engine, threads, fixpoint_shard_states)
            .check_all(formulas);
    }
    let shard_len = formulas.len().div_ceil(threads);
    let shards: Vec<&[Ctl]> = formulas.chunks(shard_len).collect();
    let results = soteria_exec::par_map(&shards, threads, |shard| {
        ModelChecker::with_sharding(kripke, engine, 0, fixpoint_shard_states).check_all(shard)
    });
    results.concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A structure above `PARALLEL_UNIVERSE`: a 3000-state ring with p on evens
    /// and q on the last state.
    fn big_ring() -> Kripke {
        let n = 3_000;
        let succs: Vec<Vec<usize>> = (0..n).map(|s| vec![(s + 1) % n]).collect();
        let names: Vec<String> = (0..n).map(|s| format!("r{s}")).collect();
        let mut kripke =
            Kripke::from_lists(vec!["p".into(), "q".into()], names, &succs, vec![0]);
        let labels: Vec<Vec<usize>> = (0..n)
            .map(|s| {
                let mut l = Vec::new();
                if s % 2 == 0 {
                    l.push(0);
                }
                if s == n - 1 {
                    l.push(1);
                }
                l
            })
            .collect();
        kripke.set_labels(&labels);
        kripke
    }

    fn sweep_formulas() -> Vec<Ctl> {
        vec![
            Ctl::atom("q").exists_finally(),
            Ctl::atom("p").always_globally(),
            Ctl::atom("q").always_finally(),
            Ctl::Eg(Box::new(Ctl::atom("p").or(Ctl::atom("q").not()))),
            Ctl::atom("p").implies(Ctl::atom("q").exists_finally()).always_globally(),
            Ctl::Au(Box::new(Ctl::True), Box::new(Ctl::atom("q"))),
            Ctl::Eu(Box::new(Ctl::atom("p")), Box::new(Ctl::atom("q"))),
        ]
    }

    #[test]
    fn sharded_sweep_matches_sequential_batch() {
        let kripke = big_ring();
        let formulas = sweep_formulas();
        let sequential = ModelChecker::new(&kripke, Engine::Symbolic).check_all(&formulas);
        for threads in [1, 2, 3, 4, 8, 32] {
            let parallel = check_all_parallel(&kripke, Engine::Symbolic, &formulas, threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn small_universes_stay_sequential_and_agree() {
        let mut kripke = Kripke::from_lists(
            vec!["p".into()],
            vec!["s0".into(), "s1".into()],
            &[vec![1], vec![1]],
            vec![0],
        );
        kripke.set_labels(&[vec![0], vec![]]);
        let formulas = vec![Ctl::atom("p").always_globally(), Ctl::atom("p").exists_finally()];
        let sequential = ModelChecker::new(&kripke, Engine::Symbolic).check_all(&formulas);
        assert_eq!(check_all_parallel(&kripke, Engine::Symbolic, &formulas, 8), sequential);
    }
}
