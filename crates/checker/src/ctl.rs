//! Computation Tree Logic (CTL) formulas.
//!
//! The paper expresses properties with temporal-logic formulas and verifies them with
//! NuSMV; its example `water.wet → AX valve.on` is a CTL formula. This module provides
//! the CTL syntax; the checking algorithms live in [`crate::checker`].

use std::fmt;

/// A CTL state formula.
///
/// Structural sharing for the checker's satisfaction-set cache happens by interning
/// each node into the checker's `NodeOp` table, not by hashing `Ctl` trees — see
/// `ModelChecker::intern`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ctl {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An atomic proposition (matched against the Kripke labelling).
    Atom(String),
    /// Negation.
    Not(Box<Ctl>),
    /// Conjunction.
    And(Box<Ctl>, Box<Ctl>),
    /// Disjunction.
    Or(Box<Ctl>, Box<Ctl>),
    /// Implication.
    Implies(Box<Ctl>, Box<Ctl>),
    /// There exists a successor satisfying the formula.
    Ex(Box<Ctl>),
    /// There exists a path eventually satisfying the formula.
    Ef(Box<Ctl>),
    /// There exists a path globally satisfying the formula.
    Eg(Box<Ctl>),
    /// There exists a path where the first formula holds until the second does.
    Eu(Box<Ctl>, Box<Ctl>),
    /// Every successor satisfies the formula.
    Ax(Box<Ctl>),
    /// Every path eventually satisfies the formula.
    Af(Box<Ctl>),
    /// Every path globally satisfies the formula.
    Ag(Box<Ctl>),
    /// On every path the first formula holds until the second does.
    Au(Box<Ctl>, Box<Ctl>),
}

impl Ctl {
    /// An atomic proposition.
    pub fn atom(name: impl Into<String>) -> Ctl {
        Ctl::Atom(name.into())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ctl {
        Ctl::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Ctl) -> Ctl {
        Ctl::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Ctl) -> Ctl {
        Ctl::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: Ctl) -> Ctl {
        Ctl::Implies(Box::new(self), Box::new(other))
    }

    /// `AG self`.
    pub fn always_globally(self) -> Ctl {
        Ctl::Ag(Box::new(self))
    }

    /// `AF self`.
    pub fn always_finally(self) -> Ctl {
        Ctl::Af(Box::new(self))
    }

    /// `AX self`.
    pub fn all_next(self) -> Ctl {
        Ctl::Ax(Box::new(self))
    }

    /// `EF self`.
    pub fn exists_finally(self) -> Ctl {
        Ctl::Ef(Box::new(self))
    }

    /// Disjunction of several formulas (false when empty).
    pub fn any_of(mut formulas: Vec<Ctl>) -> Ctl {
        match formulas.len() {
            0 => Ctl::False,
            1 => formulas.pop().expect("length checked"),
            _ => {
                let first = formulas.remove(0);
                formulas.into_iter().fold(first, |acc, f| acc.or(f))
            }
        }
    }

    /// Conjunction of several formulas (true when empty).
    pub fn all_of(mut formulas: Vec<Ctl>) -> Ctl {
        match formulas.len() {
            0 => Ctl::True,
            1 => formulas.pop().expect("length checked"),
            _ => {
                let first = formulas.remove(0);
                formulas.into_iter().fold(first, |acc, f| acc.and(f))
            }
        }
    }

    /// The atoms mentioned in the formula.
    pub fn atoms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Ctl::Atom(a) => out.push(a),
            Ctl::True | Ctl::False => {}
            Ctl::Not(f) | Ctl::Ex(f) | Ctl::Ef(f) | Ctl::Eg(f) | Ctl::Ax(f) | Ctl::Af(f)
            | Ctl::Ag(f) => f.collect_atoms(out),
            Ctl::And(a, b)
            | Ctl::Or(a, b)
            | Ctl::Implies(a, b)
            | Ctl::Eu(a, b)
            | Ctl::Au(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }
}

impl fmt::Display for Ctl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ctl::True => write!(f, "TRUE"),
            Ctl::False => write!(f, "FALSE"),
            Ctl::Atom(a) => write!(f, "{a}"),
            Ctl::Not(x) => write!(f, "!({x})"),
            Ctl::And(a, b) => write!(f, "({a} & {b})"),
            Ctl::Or(a, b) => write!(f, "({a} | {b})"),
            Ctl::Implies(a, b) => write!(f, "({a} -> {b})"),
            Ctl::Ex(x) => write!(f, "EX ({x})"),
            Ctl::Ef(x) => write!(f, "EF ({x})"),
            Ctl::Eg(x) => write!(f, "EG ({x})"),
            Ctl::Eu(a, b) => write!(f, "E [{a} U {b}]"),
            Ctl::Ax(x) => write!(f, "AX ({x})"),
            Ctl::Af(x) => write!(f, "AF ({x})"),
            Ctl::Ag(x) => write!(f, "AG ({x})"),
            Ctl::Au(a, b) => write!(f, "A [{a} U {b}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        // The paper's Fig. 9 property: water.wet -> AX valve.on (here written over the
        // reproduction's atom names).
        let f = Ctl::atom("event:water.wet")
            .implies(Ctl::atom("attr:valve.valve=closed"))
            .always_globally();
        assert_eq!(
            f.to_string(),
            "AG ((event:water.wet -> attr:valve.valve=closed))"
        );
        assert_eq!(f.atoms(), vec!["attr:valve.valve=closed", "event:water.wet"]);
    }

    #[test]
    fn any_and_all_of() {
        assert_eq!(Ctl::any_of(vec![]), Ctl::False);
        assert_eq!(Ctl::all_of(vec![]), Ctl::True);
        assert_eq!(Ctl::any_of(vec![Ctl::atom("a")]), Ctl::atom("a"));
        let f = Ctl::any_of(vec![Ctl::atom("a"), Ctl::atom("b"), Ctl::atom("c")]);
        assert_eq!(f.to_string(), "((a | b) | c)");
        let g = Ctl::all_of(vec![Ctl::atom("a"), Ctl::atom("b")]);
        assert_eq!(g.to_string(), "(a & b)");
    }

    #[test]
    fn temporal_builders() {
        assert_eq!(Ctl::atom("x").all_next().to_string(), "AX (x)");
        assert_eq!(Ctl::atom("x").always_finally().to_string(), "AF (x)");
        assert_eq!(Ctl::atom("x").exists_finally().to_string(), "EF (x)");
        assert_eq!(Ctl::atom("x").not().to_string(), "!(x)");
    }
}
