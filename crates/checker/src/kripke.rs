//! Kripke structures derived from state models (Sec. 5, "Model Checking with NuSMV").
//!
//! The translation makes every transition label observable as an atomic proposition:
//! a Kripke state is a pair of a model state and the event that produced it, so
//! properties of the form "when event E occurs, X must hold" become `AG(event_E → X)`
//! (the paper's `water.wet → AX valve.on` example).
//!
//! Labelling is stored column-wise: for every atom a [`BitSet`] row over the state
//! universe. `Ctl::Atom` satisfaction in the checker is then a single row clone, and
//! atom lookup goes through a `HashMap` built once at construction instead of the
//! seed's linear scan per query. Attribute propositions are precomputed per
//! `(attribute id, value digit)` pair of the model's interned schema, so building the
//! structure formats each proposition string once rather than once per state.
//!
//! The transition relation is stored once, in compressed-sparse-row (CSR) form, in
//! **both** directions: [`Kripke::successors`] and [`Kripke::predecessors`] index flat
//! `u32` target arrays through per-state offset arrays. Every consumer — the
//! frontier fixpoints of the symbolic engine, the per-state scans of the explicit
//! engine, and counterexample BFS — runs off the same two arrays, replacing the
//! seed's per-state `Vec<Vec<usize>>` successor lists and the per-`ModelChecker`
//! predecessor rebuild.
//!
//! State names are lazy: construction records only `(model state, incoming event)`
//! per Kripke state plus one label fragment per `(attribute, value)` pair of the
//! schema; the human-readable `"[attr=value, ...] after event"` string is formatted
//! by [`Kripke::state_name`] only when a counterexample trace (or an export) asks
//! for it, instead of eagerly for every state during construction.

use crate::bitset::BitSet;
use soteria_model::{StateId, StateModel};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A Kripke structure: states labelled with atomic propositions and a total
/// transition relation stored as forward + reverse CSR arrays.
///
/// `PartialEq` compares every field (atoms, labelling rows, both CSR arrays,
/// naming data); two equal structures are interchangeable for checking, which
/// is what lets a [`crate::SatSnapshot`] from a previous check be reused
/// wholesale when the structure did not change.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Kripke {
    /// The atomic-proposition universe.
    pub atoms: Vec<String>,
    /// Initial states.
    pub initial: Vec<usize>,
    /// The underlying model state of each Kripke state.
    pub model_state: Vec<StateId>,
    /// The event label (if any) that produced each Kripke state. Shared
    /// (`Arc<str>`) so the incremental rebuild copies unchanged members' states
    /// with refcount bumps instead of tens of thousands of string allocations.
    pub incoming_event: Vec<Option<Arc<str>>>,
    /// The app (if any) whose transition produced each Kripke state.
    pub incoming_app: Vec<Option<Arc<str>>>,
    /// CSR offsets into `succ_targets`: the successors of state `s` are
    /// `succ_targets[succ_offsets[s]..succ_offsets[s + 1]]`.
    succ_offsets: Vec<u32>,
    /// Flat successor array (forward edges, sorted per source).
    succ_targets: Vec<u32>,
    /// CSR offsets into `pred_targets` (reverse edges).
    pred_offsets: Vec<u32>,
    /// Flat predecessor array (reverse edges, sorted per target).
    pred_targets: Vec<u32>,
    /// Explicit per-state names for hand-built structures (tests, fuzzing); empty
    /// for model-derived structures, whose names are derived lazily.
    name_override: Vec<String>,
    /// Per `(attribute, value digit)` label fragment (`"handle=value"` or
    /// `"handle.attribute=value"`), used to format state names on demand.
    name_fragments: Vec<Vec<String>>,
    /// Mixed-radix strides of the model's schema, for recovering value digits from a
    /// model-state id without keeping the schema alive.
    name_strides: Vec<usize>,
    /// Atom name -> index, built once at construction.
    pub(crate) atom_lookup: HashMap<String, usize>,
    /// For each atom, the set of states where it holds, packed as a bitset row over
    /// the state universe.
    pub(crate) atom_rows: Vec<BitSet>,
    /// For model-derived structures, the Kripke target state of each model
    /// transition, aligned with the model's transition order. Lets
    /// [`Kripke::from_state_model_delta`] recover the edge relation of a
    /// mostly-identical model without re-hashing unchanged labels. Empty for
    /// hand-built structures.
    pub(crate) transition_targets: Vec<u32>,
}

impl Kripke {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.model_state.len()
    }

    /// Number of (forward) edges.
    pub fn edge_count(&self) -> usize {
        self.succ_targets.len()
    }

    /// The successors of one state (CSR slice).
    pub fn successors(&self, state: usize) -> &[u32] {
        &self.succ_targets[self.succ_offsets[state] as usize..self.succ_offsets[state + 1] as usize]
    }

    /// The predecessors of one state (reverse CSR slice).
    pub fn predecessors(&self, state: usize) -> &[u32] {
        &self.pred_targets[self.pred_offsets[state] as usize..self.pred_offsets[state + 1] as usize]
    }

    /// Index of an atom, if it exists in the universe (hash lookup, not a scan).
    pub fn atom_index(&self, atom: &str) -> Option<usize> {
        self.atom_lookup.get(atom).copied()
    }

    /// The bitset row of one atom: the set of states where it holds.
    pub fn atom_row(&self, atom: usize) -> &BitSet {
        &self.atom_rows[atom]
    }

    /// True if the atom holds in the state.
    pub fn holds(&self, state: usize, atom: &str) -> bool {
        match self.atom_index(atom) {
            Some(i) => self.atom_rows[i].contains(state),
            None => false,
        }
    }

    /// All atoms holding in one state.
    pub fn atoms_of(&self, state: usize) -> Vec<&str> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| self.atom_rows[*i].contains(state))
            .map(|(_, a)| a.as_str())
            .collect()
    }

    /// The human-readable name of one state, formatted on demand: the model state's
    /// attribute valuation, suffixed with `" after {event}"` for event states.
    pub fn state_name(&self, state: usize) -> String {
        if !self.name_override.is_empty() {
            return self.name_override[state].clone();
        }
        let id = self.model_state[state];
        let parts: Vec<&str> = self
            .name_fragments
            .iter()
            .zip(&self.name_strides)
            .map(|(fragments, stride)| {
                let digit = (id / stride) % fragments.len().max(1);
                fragments[digit].as_str()
            })
            .collect();
        let base = format!("[{}]", parts.join(", "));
        match &self.incoming_event[state] {
            Some(event) => format!("{base} after {event}"),
            None => base,
        }
    }

    /// Installs the labelling from per-state atom-index lists, (re)building the atom
    /// rows and the atom lookup. The state universe is `per_state.len()`.
    pub fn set_labels(&mut self, per_state: &[Vec<usize>]) {
        let n = per_state.len();
        self.atom_lookup =
            self.atoms.iter().enumerate().map(|(i, a)| (a.clone(), i)).collect();
        self.atom_rows = vec![BitSet::empty(n); self.atoms.len()];
        for (state, atoms) in per_state.iter().enumerate() {
            for &atom in atoms {
                self.atom_rows[atom].insert(state);
            }
        }
    }

    /// Installs the transition relation from an edge list, building the forward and
    /// reverse CSR arrays in one pass each. The relation is made total by adding a
    /// self-loop to every deadlocked state. `edges` is consumed (sorted, deduplicated)
    /// to avoid an extra copy.
    pub fn set_transitions(&mut self, mut edges: Vec<(u32, u32)>) {
        let n = self.state_count();
        debug_assert!(n <= u32::MAX as usize, "state universe exceeds u32 indexing");
        edges.sort_unstable();
        edges.dedup();
        // Totalise: states with no outgoing edge loop on themselves.
        let mut out_degree = vec![0u32; n];
        for &(from, _) in &edges {
            out_degree[from as usize] += 1;
        }
        for (s, degree) in out_degree.iter_mut().enumerate() {
            if *degree == 0 {
                *degree = 1;
                edges.push((s as u32, s as u32));
            }
        }
        edges.sort_unstable();
        // Forward CSR: edges are sorted by source, so the flat target array is a
        // direct projection.
        self.succ_offsets = Vec::with_capacity(n + 1);
        self.succ_offsets.push(0);
        let mut acc = 0u32;
        for &degree in &out_degree {
            acc += degree;
            self.succ_offsets.push(acc);
        }
        self.succ_targets = edges.iter().map(|&(_, to)| to).collect();
        // Reverse CSR by counting sort on the target column.
        let mut in_degree = vec![0u32; n];
        for &(_, to) in &edges {
            in_degree[to as usize] += 1;
        }
        self.pred_offsets = Vec::with_capacity(n + 1);
        self.pred_offsets.push(0);
        let mut acc = 0u32;
        for &degree in &in_degree {
            acc += degree;
            self.pred_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = self.pred_offsets[..n].to_vec();
        self.pred_targets = vec![0u32; edges.len()];
        for &(from, to) in &edges {
            let slot = cursor[to as usize];
            self.pred_targets[slot as usize] = from;
            cursor[to as usize] += 1;
        }
    }

    /// Builds a hand-specified Kripke structure from per-state successor lists, with
    /// explicit state names. Used by tests and the differential fuzzer; call
    /// [`Kripke::set_labels`] afterwards to install the atom labelling.
    pub fn from_lists(
        atoms: Vec<String>,
        names: Vec<String>,
        successor_lists: &[Vec<usize>],
        initial: Vec<usize>,
    ) -> Kripke {
        let n = successor_lists.len();
        assert_eq!(names.len(), n, "one name per state");
        let mut kripke = Kripke {
            atoms,
            initial,
            model_state: (0..n).collect(),
            incoming_event: vec![None; n],
            incoming_app: vec![None; n],
            name_override: names,
            ..Kripke::default()
        };
        let edges: Vec<(u32, u32)> = successor_lists
            .iter()
            .enumerate()
            .flat_map(|(from, succs)| succs.iter().map(move |&to| (from as u32, to as u32)))
            .collect();
        kripke.set_transitions(edges);
        kripke
    }

    /// Builds the Kripke structure of a state model.
    ///
    /// Kripke states are `(model state, incoming transition label)` pairs: one
    /// "quiescent" state per model state (no incoming event) plus one state per
    /// distinct `(destination, event, app)` combination among the transitions.
    pub fn from_state_model(model: &StateModel) -> Kripke {
        let mut kripke = Kripke::default();
        let schema = &model.schema;
        let mut atom_lookup: HashMap<String, usize> = HashMap::new();
        let attr_atoms = install_schema_atoms(&mut kripke, model, &mut atom_lookup);

        // Per-state atom-index lists, turned into bitset rows by `set_labels` once
        // the state universe is complete.
        let mut per_state: Vec<Vec<usize>> = Vec::new();

        // Quiescent states: one per model state, all initial, labelled with the
        // attribute propositions of the state's digits.
        let mut digits = vec![0u8; schema.attr_count()];
        for s in 0..model.state_count() {
            let labels: Vec<usize> =
                digits.iter().enumerate().map(|(a, d)| attr_atoms[a][*d as usize]).collect();
            per_state.push(labels);
            kripke.model_state.push(s);
            kripke.incoming_event.push(None);
            kripke.incoming_app.push(None);
            kripke.initial.push(s);
            schema.advance(&mut digits);
        }

        // Event states: one per distinct (destination, event label, app).
        let mut event_state: HashMap<(StateId, String, String), usize> = HashMap::new();
        for t in &model.transitions {
            let event = t.label.event.kind.label();
            let app = t.label.app.clone();
            event_state.entry((t.to, event.clone(), app.clone())).or_insert_with(|| {
                let id = per_state.len();
                let mut labels: Vec<usize> = (0..schema.attr_count())
                    .map(|a| {
                        attr_atoms[a][schema.digit_of(t.to, a as soteria_model::AttrId) as usize]
                    })
                    .collect();
                labels.push(intern_atom(
                    &mut kripke.atoms,
                    &mut atom_lookup,
                    format!("event:{event}"),
                ));
                labels.push(intern_atom(
                    &mut kripke.atoms,
                    &mut atom_lookup,
                    "triggered".to_string(),
                ));
                labels.push(intern_atom(
                    &mut kripke.atoms,
                    &mut atom_lookup,
                    format!("by-app:{app}"),
                ));
                per_state.push(labels);
                kripke.model_state.push(t.to);
                kripke.incoming_event.push(Some(Arc::from(event.as_str())));
                kripke.incoming_app.push(Some(Arc::from(app.as_str())));
                id
            });
        }

        // Transitions: every Kripke state sharing the source model state gets an edge
        // to the (destination, label) Kripke state. Kripke states are grouped by
        // model state up front, so this is O(edges) rather than the seed's
        // O(transitions x states) scan. The per-transition target is also recorded
        // on the structure: it is what lets [`Kripke::from_state_model_delta`]
        // recover the edge relation of a later, mostly-identical model without
        // re-hashing every unchanged transition's label.
        let mut states_of_model: Vec<Vec<usize>> = vec![Vec::new(); model.state_count()];
        for (id, &ms) in kripke.model_state.iter().enumerate() {
            states_of_model[ms].push(id);
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut targets: Vec<u32> = Vec::with_capacity(model.transitions.len());
        for t in &model.transitions {
            let key = (t.to, t.label.event.kind.label(), t.label.app.clone());
            let to_id = event_state[&key] as u32;
            targets.push(to_id);
            for &from_id in &states_of_model[t.from] {
                edges.push((from_id as u32, to_id));
            }
        }
        kripke.transition_targets = targets;
        kripke.set_transitions(edges);
        kripke.set_labels(&per_state);
        kripke
    }

    /// Rebuilds the Kripke structure of a model that differs from `base`'s
    /// source model in exactly one member's contiguous transition block — the
    /// delta-union contract (`soteria_model::union_models_delta`): unchanged
    /// members' transitions are the base's own, spliced by handle. Everything
    /// derivable from the unchanged members is copied from `base` — state
    /// vectors by slice, label rows by word-level bitset blit, per-source edge
    /// lists straight out of the base's CSR arrays (suffix ids shifted
    /// uniformly) — and only the changed member's block is walked with the
    /// full label-hashing construction.
    ///
    /// The result is **byte-identical** to `Kripke::from_state_model(model)`
    /// with `base.initial` applied — same atom order (the event-atom interning
    /// sequence is replayed in state order, which is creation order), same
    /// state numbering (a member's event states are contiguous because its
    /// `(destination, event, app)` keys carry its own name), and the same CSR
    /// arrays (per-source target lists keep their sorted order under the
    /// segment splice: prefix ids < changed ids < shifted suffix ids).
    ///
    /// Returns `None` — the caller falls back to a scratch build — whenever a
    /// precondition cannot be verified cheaply: `base` is not a model-derived
    /// structure over the same schema, either side's changed block is not
    /// contiguous, or a prefix/suffix transition disagrees with `base`'s
    /// recorded target on destination or app (the event kind and source state
    /// are the delta-union contract's: unchanged blocks are spliced, not
    /// rebuilt). The second tuple field reports whether every changed-member
    /// event state already existed in `base` — only then can a
    /// [`crate::SatSnapshot`] projection onto the new structure be total.
    pub fn from_state_model_delta(
        base: &Kripke,
        model: &StateModel,
        changed_app: &str,
    ) -> Option<(Kripke, bool)> {
        let q = model.state_count();
        let schema = &model.schema;
        let n_old = base.state_count();
        if n_old < q || base.transition_targets.is_empty() || !base.name_override.is_empty() {
            return None;
        }
        // `base` must have the quiescent-prefix shape this module builds...
        if (0..q).any(|s| base.model_state[s] != s || base.incoming_event[s].is_some()) {
            return None;
        }
        // ...over the same schema.
        let strides: Vec<usize> =
            (0..schema.attr_count()).map(|a| schema.stride(a as soteria_model::AttrId)).collect();
        if base.name_strides != strides || base.name_fragments.len() != schema.attr_count() {
            return None;
        }
        if (0..schema.attr_count()).any(|a| {
            base.name_fragments[a].len() != schema.domain(a as soteria_model::AttrId).len()
        }) {
            return None;
        }

        // The changed member's block in the new model: exactly one contiguous run.
        let (mut ns, mut ne) = (usize::MAX, 0usize);
        for (i, t) in model.transitions.iter().enumerate() {
            if t.label.app == changed_app {
                if ns == usize::MAX {
                    (ns, ne) = (i, i + 1);
                } else if i == ne {
                    ne = i + 1;
                } else {
                    return None;
                }
            }
        }
        // The changed member's event states in `base`: one contiguous run (its
        // keys carry its own app name, so no other member contributes to it);
        // fused with the per-state event-label sanity check.
        let (mut cs, mut ce) = (usize::MAX, 0usize);
        for s in q..n_old {
            let app = base.incoming_app[s].as_deref()?;
            base.incoming_event[s].as_ref()?;
            if app == changed_app {
                if cs == usize::MAX {
                    (cs, ce) = (s, s + 1);
                } else if s == ce {
                    ce = s + 1;
                } else {
                    return None;
                }
            }
        }
        // Its transition block in `base`, recovered from the recorded targets:
        // only the changed member's transitions point into `cs..ce`.
        let old_total = base.transition_targets.len();
        let (mut os, mut oe) = (usize::MAX, 0usize);
        for (i, &t) in base.transition_targets.iter().enumerate() {
            if (cs..ce).contains(&(t as usize)) {
                if os == usize::MAX {
                    (os, oe) = (i, i + 1);
                } else if i == oe {
                    oe = i + 1;
                } else {
                    return None;
                }
            }
        }
        if ns == usize::MAX
            || os != ns
            || old_total - oe != model.transitions.len() - ne
        {
            return None;
        }
        // Prefix and suffix transitions must agree with the recorded targets on
        // destination and app (the cheap two fields of the event-state key).
        for (i, t) in model.transitions[..ns].iter().enumerate() {
            let tgt = base.transition_targets[i] as usize;
            if tgt < q
                || tgt >= cs
                || base.model_state[tgt] != t.to
                || base.incoming_app[tgt].as_deref() != Some(t.label.app.as_str())
            {
                return None;
            }
        }
        for (k, t) in model.transitions[ne..].iter().enumerate() {
            let tgt = base.transition_targets[oe + k] as usize;
            if tgt < ce
                || tgt >= n_old
                || base.model_state[tgt] != t.to
                || base.incoming_app[tgt].as_deref() != Some(t.label.app.as_str())
            {
                return None;
            }
        }

        // The changed member's event states, in creation (first-transition)
        // order, plus each of its transitions' Kripke target. Every transition
        // in the block carries `changed_app`, so the app is dropped from the
        // keys; event labels are interned through a cache keyed by the label
        // *allocation* (the delta union shares one `Arc<TransitionLabel>` per
        // member transition across its lifted copies, so the cache renders each
        // distinct label once and the per-transition step hashes a pointer).
        // `all_in_base` tracks whether the block introduces any state `base`
        // did not have.
        let old_event_keys: HashSet<(StateId, &str)> = (cs..ce)
            .map(|s| (base.model_state[s], base.incoming_event[s].as_deref().unwrap_or_default()))
            .collect();
        let app_arc: Arc<str> = Arc::from(changed_app);
        let mut labels: Vec<Arc<str>> = Vec::new();
        let mut label_lookup: HashMap<Arc<str>, u32> = HashMap::new();
        let mut label_of_ptr: HashMap<usize, u32> = HashMap::new();
        let mut event_state: HashMap<(StateId, u32), u32> = HashMap::new();
        let mut changed_states: Vec<(StateId, u32)> = Vec::new();
        let mut changed_targets: Vec<u32> = Vec::with_capacity(ne - ns);
        let mut all_in_base = true;
        for t in &model.transitions[ns..ne] {
            let ptr = Arc::as_ptr(&t.label) as usize;
            let lid = match label_of_ptr.get(&ptr) {
                Some(&l) => l,
                None => {
                    let rendered = t.label.event.kind.label();
                    let l = match label_lookup.get(rendered.as_str()) {
                        Some(&l) => l,
                        None => {
                            let l = labels.len() as u32;
                            let arc: Arc<str> = Arc::from(rendered.as_str());
                            label_lookup.insert(arc.clone(), l);
                            labels.push(arc);
                            l
                        }
                    };
                    label_of_ptr.insert(ptr, l);
                    l
                }
            };
            let key = (t.to, lid);
            let id = match event_state.get(&key) {
                Some(&id) => id,
                None => {
                    let id = (cs + changed_states.len()) as u32;
                    all_in_base &=
                        old_event_keys.contains(&(t.to, &*labels[lid as usize]));
                    changed_states.push(key);
                    event_state.insert(key, id);
                    id
                }
            };
            changed_targets.push(id);
        }
        let new_ce = cs + changed_states.len();
        let n_new = new_ce + (n_old - ce);
        let shift = new_ce as i64 - ce as i64;

        let mut kripke = Kripke::default();
        let mut atom_lookup: HashMap<String, usize> = HashMap::new();
        let attr_atoms = install_schema_atoms(&mut kripke, model, &mut atom_lookup);
        // The attribute atoms' names must match the base's exactly for the row
        // splice (and the replay skip below) to hold; the fragment tables pin
        // the full (handle, attribute, value) triples, not just the counts.
        if base.name_fragments != kripke.name_fragments {
            return None;
        }

        // Quiescent states: same ids, no incoming labels; their attribute-atom
        // bits arrive with the row splice below.
        kripke.model_state.extend(0..q);
        kripke.incoming_event.resize(q, None);
        kripke.incoming_app.resize(q, None);

        // Atom-interning replay without walking the unchanged states. The
        // scratch build interns `event:`/`triggered`/`by-app:` atoms at each
        // event state's creation, in state order; so the prefix's intern
        // sequence is the base's own atom order restricted to atoms whose
        // first occurrence is below `cs`, the changed block interns at its
        // states' creation, and the suffix interns whatever remains, ordered
        // by first occurrence at or after `ce` with the per-state intern order
        // (event, then `triggered`, then `by-app:`) as the tie-break.
        let mut deferred: Vec<(usize, u8)> = Vec::new();
        for (bi, name) in base.atoms.iter().enumerate() {
            if atom_lookup.contains_key(name) {
                continue; // schema atom, interned above in schema order
            }
            match base.atom_rows[bi].first_set_at_or_after(0) {
                Some(f) if f < cs => {
                    intern_atom(&mut kripke.atoms, &mut atom_lookup, name.clone());
                }
                _ => {
                    let rank = match name.as_str() {
                        "triggered" => 1,
                        n if n.starts_with("by-app:") => 2,
                        _ => 0,
                    };
                    deferred.push((bi, rank));
                }
            }
        }
        // Prefix members' event states: ids unchanged, labels shared.
        kripke.model_state.extend_from_slice(&base.model_state[q..cs]);
        kripke.incoming_event.extend(base.incoming_event[q..cs].iter().cloned());
        kripke.incoming_app.extend(base.incoming_app[q..cs].iter().cloned());

        // The changed member's block: the one part that is genuinely new.
        let mut event_atom: Vec<usize> = vec![usize::MAX; labels.len()];
        let mut triggered = usize::MAX;
        let mut app_atom = usize::MAX;
        for &(to, lid) in &changed_states {
            if event_atom[lid as usize] == usize::MAX {
                event_atom[lid as usize] = intern_atom(
                    &mut kripke.atoms,
                    &mut atom_lookup,
                    format!("event:{}", labels[lid as usize]),
                );
            }
            if triggered == usize::MAX {
                triggered =
                    intern_atom(&mut kripke.atoms, &mut atom_lookup, "triggered".to_string());
            }
            if app_atom == usize::MAX {
                app_atom = intern_atom(
                    &mut kripke.atoms,
                    &mut atom_lookup,
                    format!("by-app:{changed_app}"),
                );
            }
            kripke.model_state.push(to);
            kripke.incoming_event.push(Some(labels[lid as usize].clone()));
            kripke.incoming_app.push(Some(app_arc.clone()));
        }

        // Suffix members' event states: ids shifted uniformly, labels shared.
        // (An atom the changed block just interned is no longer "remaining";
        // one set only in the old changed block with no suffix occurrence is
        // dropped entirely, exactly as a scratch build would never see it.)
        let mut suffix_intro: Vec<(u32, u8, usize)> = deferred
            .into_iter()
            .filter(|&(bi, _)| !atom_lookup.contains_key(&base.atoms[bi]))
            .filter_map(|(bi, rank)| {
                base.atom_rows[bi].first_set_at_or_after(ce).map(|f| (f as u32, rank, bi))
            })
            .collect();
        suffix_intro.sort_unstable();
        for &(_, _, bi) in &suffix_intro {
            intern_atom(&mut kripke.atoms, &mut atom_lookup, base.atoms[bi].clone());
        }
        kripke.model_state.extend_from_slice(&base.model_state[ce..]);
        kripke.incoming_event.extend(base.incoming_event[ce..].iter().cloned());
        kripke.incoming_app.extend(base.incoming_app[ce..].iter().cloned());

        // Label rows: splice each atom's unchanged regions out of the base's
        // row by name (bitset blit), then set the changed block's bits from its
        // states' labels. Atoms the base did not have can only hold in the
        // changed block; base atoms that no longer occur are simply absent.
        let mut rows: Vec<BitSet> = Vec::with_capacity(kripke.atoms.len());
        for name in &kripke.atoms {
            let mut row = BitSet::empty(n_new);
            if let Some(&old) = base.atom_lookup.get(name) {
                let old_row = base.atom_row(old);
                row.copy_range(old_row, 0, 0, cs);
                row.copy_range(old_row, ce, new_ce, n_old - ce);
            }
            rows.push(row);
        }
        for (i, &(to, lid)) in changed_states.iter().enumerate() {
            let s = cs + i;
            for a in 0..schema.attr_count() {
                let digit = schema.digit_of(to, a as soteria_model::AttrId) as usize;
                rows[attr_atoms[a][digit]].insert(s);
            }
            rows[event_atom[lid as usize]].insert(s);
            rows[triggered].insert(s);
            rows[app_atom].insert(s);
        }
        kripke.atom_rows = rows;
        kripke.atom_lookup = atom_lookup;

        // Per-transition targets: prefix copied, changed block computed, suffix
        // copied with the shift applied.
        let mut targets: Vec<u32> = Vec::with_capacity(model.transitions.len());
        targets.extend_from_slice(&base.transition_targets[..ns]);
        targets.extend_from_slice(&changed_targets);
        for &t in &base.transition_targets[oe..] {
            targets.push((t as i64 + shift) as u32);
        }
        kripke.transition_targets = targets;

        // The changed member's edges grouped by source model state: sorting
        // the (from, target) pairs groups, orders, and dedups them in one shot.
        let mut changed_pairs: Vec<(u32, u32)> = model.transitions[ns..ne]
            .iter()
            .zip(&changed_targets)
            .map(|(t, &tgt)| (t.from as u32, tgt))
            .collect();
        changed_pairs.sort_unstable();
        changed_pairs.dedup();

        // Per-model-state target lists, from the base's own CSR, as one flat
        // array (no per-state allocation): a quiescent state's successor list
        // *is* its model state's sorted, deduplicated target list (its only
        // sub-`q` entry can be the totalising self-loop, which the CSR rebuild
        // re-adds). The three segments keep sorted order: prefix ids <
        // changed-block ids < shifted suffix ids.
        let mut group_offsets: Vec<u32> = Vec::with_capacity(q + 1);
        group_offsets.push(0);
        let mut cursor = 0usize;
        let mut total = 0u32;
        for ms in 0..q {
            let mut count = 0u32;
            for &t in base.successors(ms) {
                let t = t as usize;
                if (q..cs).contains(&t) || t >= ce {
                    count += 1;
                }
            }
            while cursor < changed_pairs.len() && changed_pairs[cursor].0 == ms as u32 {
                cursor += 1;
                count += 1;
            }
            total += count;
            group_offsets.push(total);
        }
        let mut grouped: Vec<u32> = Vec::with_capacity(total as usize);
        let mut cursor = 0usize;
        for ms in 0..q {
            let old = base.successors(ms);
            grouped.extend(old.iter().copied().filter(|&t| (q..cs).contains(&(t as usize))));
            while cursor < changed_pairs.len() && changed_pairs[cursor].0 == ms as u32 {
                grouped.push(changed_pairs[cursor].1);
                cursor += 1;
            }
            grouped
                .extend(old.iter().filter(|&&t| t as usize >= ce).map(|&t| (t as i64 + shift) as u32));
        }
        kripke.set_transitions_grouped(&group_offsets, &grouped);
        kripke.initial = base.initial.clone();
        Some((kripke, all_in_base))
    }

    /// Installs the transition relation from a flat per-model-state CSR of
    /// target lists (`grouped[group_offsets[ms]..group_offsets[ms + 1]]` is
    /// model state `ms`'s sorted, deduplicated target list). Produces the same
    /// CSR arrays as [`Kripke::set_transitions`] over the equivalent edge
    /// list: iterating sources in ascending order with ascending targets per
    /// source *is* the globally sorted edge order, so no sort is needed.
    /// States with no
    /// outgoing edge get the same totalising self-loop.
    fn set_transitions_grouped(&mut self, group_offsets: &[u32], grouped: &[u32]) {
        let n = self.state_count();
        debug_assert!(n <= u32::MAX as usize, "state universe exceeds u32 indexing");
        self.succ_offsets = Vec::with_capacity(n + 1);
        self.succ_offsets.push(0);
        let mut acc = 0u32;
        let mut total = 0usize;
        for s in 0..n {
            let ms = self.model_state[s];
            let degree = ((group_offsets[ms + 1] - group_offsets[ms]) as usize).max(1);
            acc += degree as u32;
            total += degree;
            self.succ_offsets.push(acc);
        }
        let mut succ_targets: Vec<u32> = Vec::with_capacity(total);
        for s in 0..n {
            let ms = self.model_state[s];
            let (lo, hi) = (group_offsets[ms] as usize, group_offsets[ms + 1] as usize);
            if lo == hi {
                succ_targets.push(s as u32);
            } else {
                succ_targets.extend_from_slice(&grouped[lo..hi]);
            }
        }
        // Reverse CSR by counting sort; filling in (source asc, target asc)
        // order matches `set_transitions`' sorted-edge fill.
        let mut in_degree = vec![0u32; n];
        for &to in &succ_targets {
            in_degree[to as usize] += 1;
        }
        self.pred_offsets = Vec::with_capacity(n + 1);
        self.pred_offsets.push(0);
        let mut acc = 0u32;
        for &degree in &in_degree {
            acc += degree;
            self.pred_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = self.pred_offsets[..n].to_vec();
        let mut pred_targets = vec![0u32; succ_targets.len()];
        for s in 0..n {
            let (lo, hi) = (self.succ_offsets[s] as usize, self.succ_offsets[s + 1] as usize);
            for &to in &succ_targets[lo..hi] {
                let slot = cursor[to as usize];
                pred_targets[slot as usize] = s as u32;
                cursor[to as usize] += 1;
            }
        }
        self.succ_targets = succ_targets;
        self.pred_targets = pred_targets;
    }
}

/// Interns one atom name, returning its stable index.
fn intern_atom(atoms: &mut Vec<String>, lookup: &mut HashMap<String, usize>, name: String) -> usize {
    if let Some(&i) = lookup.get(&name) {
        return i;
    }
    let i = atoms.len();
    lookup.insert(name.clone(), i);
    atoms.push(name);
    i
}

/// Interns the schema-derived attribute atoms and installs the lazy-naming
/// tables (fragments and strides) shared by the scratch and delta builds.
/// Returns the atom ids per `(attribute, value digit)` pair.
fn install_schema_atoms(
    kripke: &mut Kripke,
    model: &StateModel,
    atom_lookup: &mut HashMap<String, usize>,
) -> Vec<Vec<usize>> {
    let schema = &model.schema;
    let mut attr_atoms: Vec<Vec<usize>> = Vec::with_capacity(schema.attr_count());
    for a in 0..schema.attr_count() {
        let attr = a as soteria_model::AttrId;
        let (handle, attribute) = &schema.keys()[a];
        let mut atoms_row = Vec::new();
        let mut fragments = Vec::new();
        for value in schema.domain(attr) {
            atoms_row.push(intern_atom(
                &mut kripke.atoms,
                atom_lookup,
                format!("attr:{handle}.{attribute}={value}"),
            ));
            fragments.push(soteria_model::label_fragment(handle, attribute, value));
        }
        attr_atoms.push(atoms_row);
        kripke.name_fragments.push(fragments);
    }
    // The schema's own mixed-radix strides, so digit extraction in `state_name`
    // uses the same state-id arithmetic as the model layer.
    kripke.name_strides =
        (0..schema.attr_count()).map(|a| schema.stride(a as soteria_model::AttrId)).collect();
    attr_atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_analysis::PathCondition;
    use soteria_capability::{AttributeValue, Event, EventKind};
    use soteria_model::{Transition, TransitionLabel};
    use std::collections::BTreeMap;

    fn water_leak_model() -> StateModel {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            ("sensor".to_string(), "water".to_string()),
            vec![AttributeValue::symbol("dry"), AttributeValue::symbol("wet")],
        );
        attrs.insert(
            ("valve".to_string(), "valve".to_string()),
            vec![AttributeValue::symbol("open"), AttributeValue::symbol("closed")],
        );
        let mut model = StateModel::with_attributes("WaterLeak", attrs);
        let index = model.state_index();
        let wet_closed = index
            .iter()
            .find(|(s, _)| {
                s.get("sensor", "water") == Some(&AttributeValue::symbol("wet"))
                    && s.get("valve", "valve") == Some(&AttributeValue::symbol("closed"))
            })
            .map(|(_, &i)| i)
            .unwrap();
        let mut transitions = Vec::new();
        for from in 0..model.state_count() {
            transitions.push(Transition {
                from,
                to: wet_closed,
                label: std::sync::Arc::new(TransitionLabel {
                    event: Event::new("sensor", EventKind::device("waterSensor", "water", Some("wet"))),
                    condition: PathCondition::top(),
                    app: "WaterLeak".into(),
                    handler: "h".into(),
                    via_reflection: false,
                }),
            });
        }
        for t in transitions {
            model.add_transition(t);
        }
        model
    }

    #[test]
    fn kripke_has_quiescent_and_event_states() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        // 4 quiescent states + 1 event state (wet/closed after water.wet).
        assert_eq!(kripke.state_count(), 5);
        assert_eq!(kripke.initial.len(), 4);
        let event_state = (0..kripke.state_count())
            .find(|s| kripke.incoming_event[*s].is_some())
            .unwrap();
        assert!(kripke.holds(event_state, "event:water.wet"));
        assert!(kripke.holds(event_state, "triggered"));
        assert!(kripke.holds(event_state, "attr:valve.valve=closed"));
        assert!(kripke.holds(event_state, "by-app:WaterLeak"));
        assert!(!kripke.holds(0, "triggered"));
    }

    #[test]
    fn relation_is_total() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        assert!((0..kripke.state_count()).all(|s| !kripke.successors(s).is_empty()));
    }

    #[test]
    fn every_source_state_reaches_the_event_state() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        let event_state = (0..kripke.state_count())
            .find(|s| kripke.incoming_event[*s].is_some())
            .unwrap();
        for init in &kripke.initial {
            assert!(kripke.successors(*init).contains(&(event_state as u32)));
        }
    }

    #[test]
    fn reverse_csr_mirrors_forward_csr() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        let n = kripke.state_count();
        let mut forward: Vec<(u32, u32)> = Vec::new();
        for s in 0..n {
            for &t in kripke.successors(s) {
                forward.push((s as u32, t));
            }
        }
        let mut reverse: Vec<(u32, u32)> = Vec::new();
        for t in 0..n {
            for &s in kripke.predecessors(t) {
                reverse.push((s, t as u32));
            }
        }
        forward.sort_unstable();
        reverse.sort_unstable();
        assert_eq!(forward, reverse);
        assert_eq!(forward.len(), kripke.edge_count());
    }

    #[test]
    fn state_names_are_formatted_lazily_and_match_model_labels() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        for s in 0..kripke.state_count() {
            let expected = match &kripke.incoming_event[s] {
                Some(event) => {
                    format!("{} after {}", model.state(kripke.model_state[s]).label(), event)
                }
                None => model.state(kripke.model_state[s]).label(),
            };
            assert_eq!(kripke.state_name(s), expected, "state {s}");
        }
    }

    #[test]
    fn from_lists_builds_a_named_structure() {
        let mut kripke = Kripke::from_lists(
            vec!["p".into()],
            vec!["a".into(), "b".into()],
            &[vec![1], vec![]],
            vec![0],
        );
        kripke.set_labels(&[vec![0], vec![]]);
        assert_eq!(kripke.state_name(0), "a");
        assert_eq!(kripke.successors(0), &[1]);
        // Deadlocked state 1 gets a self-loop.
        assert_eq!(kripke.successors(1), &[1]);
        assert_eq!(kripke.predecessors(1), &[0, 1]);
        assert!(kripke.holds(0, "p"));
    }

    #[test]
    fn unknown_atom_never_holds() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        assert!(!kripke.holds(0, "attr:missing.device=on"));
        assert_eq!(kripke.atom_index("nonexistent"), None);
        assert!(!kripke.atoms_of(0).is_empty());
    }

    #[test]
    fn atom_rows_match_per_state_view() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        for (i, atom) in kripke.atoms.iter().enumerate() {
            let row = kripke.atom_row(i);
            for s in 0..kripke.state_count() {
                assert_eq!(row.contains(s), kripke.holds(s, atom));
                assert_eq!(row.contains(s), kripke.atoms_of(s).contains(&atom.as_str()));
            }
        }
    }
}
