//! Kripke structures derived from state models (Sec. 5, "Model Checking with NuSMV").
//!
//! The translation makes every transition label observable as an atomic proposition:
//! a Kripke state is a pair of a model state and the event that produced it, so
//! properties of the form "when event E occurs, X must hold" become `AG(event_E → X)`
//! (the paper's `water.wet → AX valve.on` example).

use soteria_model::{StateId, StateModel};
use std::collections::{BTreeMap, BTreeSet};

/// A Kripke structure: states labelled with atomic propositions and a total
/// transition relation.
#[derive(Debug, Clone, Default)]
pub struct Kripke {
    /// The atomic-proposition universe.
    pub atoms: Vec<String>,
    /// For each state, the indices (into `atoms`) of the propositions holding there.
    pub labels: Vec<BTreeSet<usize>>,
    /// Human-readable state names (for counter-example traces).
    pub state_names: Vec<String>,
    /// Successor lists; the relation is made total by adding self-loops to deadlocked
    /// states.
    pub successors: Vec<Vec<usize>>,
    /// Initial states.
    pub initial: Vec<usize>,
    /// The underlying model state of each Kripke state.
    pub model_state: Vec<StateId>,
    /// The event label (if any) that produced each Kripke state.
    pub incoming_event: Vec<Option<String>>,
    /// The app (if any) whose transition produced each Kripke state.
    pub incoming_app: Vec<Option<String>>,
}

impl Kripke {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.labels.len()
    }

    /// Index of an atom, if it exists in the universe.
    pub fn atom_index(&self, atom: &str) -> Option<usize> {
        self.atoms.iter().position(|a| a == atom)
    }

    /// True if the atom holds in the state.
    pub fn holds(&self, state: usize, atom: &str) -> bool {
        match self.atom_index(atom) {
            Some(i) => self.labels[state].contains(&i),
            None => false,
        }
    }

    /// All atoms holding in one state.
    pub fn atoms_of(&self, state: usize) -> Vec<&str> {
        self.labels[state].iter().map(|i| self.atoms[*i].as_str()).collect()
    }

    /// Builds the Kripke structure of a state model.
    ///
    /// Kripke states are `(model state, incoming transition label)` pairs: one
    /// "quiescent" state per model state (no incoming event) plus one state per
    /// distinct `(destination, event, app)` combination among the transitions.
    pub fn from_state_model(model: &StateModel) -> Kripke {
        let mut kripke = Kripke::default();
        let mut atom_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut intern = |atoms: &mut Vec<String>, name: String| -> usize {
            if let Some(&i) = atom_index.get(&name) {
                return i;
            }
            let i = atoms.len();
            atom_index.insert(name.clone(), i);
            atoms.push(name);
            i
        };

        // Key: (model state, event label, app) — `None` for quiescent states.
        let mut state_key_to_id: BTreeMap<(StateId, Option<(String, String)>), usize> =
            BTreeMap::new();
        let mut add_state = |kripke: &mut Kripke,
                             intern: &mut dyn FnMut(&mut Vec<String>, String) -> usize,
                             model_state: StateId,
                             incoming: Option<(String, String)>|
         -> usize {
            if let Some(&id) = state_key_to_id.get(&(model_state, incoming.clone())) {
                return id;
            }
            let id = kripke.labels.len();
            state_key_to_id.insert((model_state, incoming.clone()), id);
            let mut labels = BTreeSet::new();
            // Attribute propositions.
            for ((handle, attribute), value) in &model.states[model_state].values {
                labels.insert(intern(
                    &mut kripke.atoms,
                    format!("attr:{handle}.{attribute}={value}"),
                ));
            }
            // Event propositions (handle-qualified and bare).
            let name = match &incoming {
                Some((event, app)) => {
                    labels.insert(intern(&mut kripke.atoms, format!("event:{event}")));
                    labels.insert(intern(&mut kripke.atoms, "triggered".to_string()));
                    labels.insert(intern(&mut kripke.atoms, format!("by-app:{app}")));
                    format!("{} after {}", model.states[model_state].label(), event)
                }
                None => model.states[model_state].label(),
            };
            kripke.labels.push(labels);
            kripke.state_names.push(name);
            kripke.successors.push(Vec::new());
            kripke.model_state.push(model_state);
            kripke.incoming_event.push(incoming.as_ref().map(|(e, _)| e.clone()));
            kripke.incoming_app.push(incoming.as_ref().map(|(_, a)| a.clone()));
            id
        };

        // Quiescent states: one per model state, all initial.
        for s in 0..model.state_count() {
            let id = add_state(&mut kripke, &mut intern, s, None);
            kripke.initial.push(id);
        }
        // Event states: one per (destination, event label, app).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for t in &model.transitions {
            let incoming = Some((t.label.event.kind.label(), t.label.app.clone()));
            let to_id = add_state(&mut kripke, &mut intern, t.to, incoming);
            let _ = to_id;
        }
        // Transitions: every Kripke state sharing the source model state gets an edge
        // to the (destination, label) Kripke state.
        let total_states = kripke.labels.len();
        for t in &model.transitions {
            let incoming = Some((t.label.event.kind.label(), t.label.app.clone()));
            let to_id = state_key_to_id[&(t.to, incoming)];
            for from_id in 0..total_states {
                if kripke.model_state[from_id] == t.from {
                    edges.push((from_id, to_id));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        for (from, to) in edges {
            kripke.successors[from].push(to);
        }
        // Totalise the relation: deadlocked states loop on themselves.
        for s in 0..total_states {
            if kripke.successors[s].is_empty() {
                kripke.successors[s].push(s);
            }
        }
        kripke
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_analysis::PathCondition;
    use soteria_capability::{AttributeValue, Event, EventKind};
    use soteria_model::{Transition, TransitionLabel};
    use std::collections::BTreeMap;

    fn water_leak_model() -> StateModel {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            ("sensor".to_string(), "water".to_string()),
            vec![AttributeValue::symbol("dry"), AttributeValue::symbol("wet")],
        );
        attrs.insert(
            ("valve".to_string(), "valve".to_string()),
            vec![AttributeValue::symbol("open"), AttributeValue::symbol("closed")],
        );
        let mut model = StateModel::with_attributes("WaterLeak", attrs);
        let index = model.state_index();
        let wet_closed = index
            .iter()
            .find(|(s, _)| {
                s.get("sensor", "water") == Some(&AttributeValue::symbol("wet"))
                    && s.get("valve", "valve") == Some(&AttributeValue::symbol("closed"))
            })
            .map(|(_, &i)| i)
            .unwrap();
        let mut transitions = Vec::new();
        for from in 0..model.state_count() {
            transitions.push(Transition {
                from,
                to: wet_closed,
                label: TransitionLabel {
                    event: Event::new("sensor", EventKind::device("waterSensor", "water", Some("wet"))),
                    condition: PathCondition::top(),
                    app: "WaterLeak".into(),
                    handler: "h".into(),
                    via_reflection: false,
                },
            });
        }
        for t in transitions {
            model.add_transition(t);
        }
        model
    }

    #[test]
    fn kripke_has_quiescent_and_event_states() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        // 4 quiescent states + 1 event state (wet/closed after water.wet).
        assert_eq!(kripke.state_count(), 5);
        assert_eq!(kripke.initial.len(), 4);
        let event_state = (0..kripke.state_count())
            .find(|s| kripke.incoming_event[*s].is_some())
            .unwrap();
        assert!(kripke.holds(event_state, "event:water.wet"));
        assert!(kripke.holds(event_state, "triggered"));
        assert!(kripke.holds(event_state, "attr:valve.valve=closed"));
        assert!(kripke.holds(event_state, "by-app:WaterLeak"));
        assert!(!kripke.holds(0, "triggered"));
    }

    #[test]
    fn relation_is_total() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        assert!(kripke.successors.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn every_source_state_reaches_the_event_state() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        let event_state = (0..kripke.state_count())
            .find(|s| kripke.incoming_event[*s].is_some())
            .unwrap();
        for init in &kripke.initial {
            assert!(kripke.successors[*init].contains(&event_state));
        }
    }

    #[test]
    fn unknown_atom_never_holds() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        assert!(!kripke.holds(0, "attr:missing.device=on"));
        assert_eq!(kripke.atom_index("nonexistent"), None);
        assert!(!kripke.atoms_of(0).is_empty());
    }
}
