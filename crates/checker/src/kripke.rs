//! Kripke structures derived from state models (Sec. 5, "Model Checking with NuSMV").
//!
//! The translation makes every transition label observable as an atomic proposition:
//! a Kripke state is a pair of a model state and the event that produced it, so
//! properties of the form "when event E occurs, X must hold" become `AG(event_E → X)`
//! (the paper's `water.wet → AX valve.on` example).
//!
//! Labelling is stored column-wise: for every atom a [`BitSet`] row over the state
//! universe. `Ctl::Atom` satisfaction in the checker is then a single row clone, and
//! atom lookup goes through a `HashMap` built once at construction instead of the
//! seed's linear scan per query. Attribute propositions are precomputed per
//! `(attribute id, value digit)` pair of the model's interned schema, so building the
//! structure formats each proposition string once rather than once per state.

use crate::bitset::BitSet;
use soteria_model::{StateId, StateModel};
use std::collections::HashMap;

/// A Kripke structure: states labelled with atomic propositions and a total
/// transition relation.
#[derive(Debug, Clone, Default)]
pub struct Kripke {
    /// The atomic-proposition universe.
    pub atoms: Vec<String>,
    /// Human-readable state names (for counter-example traces).
    pub state_names: Vec<String>,
    /// Successor lists; the relation is made total by adding self-loops to deadlocked
    /// states.
    pub successors: Vec<Vec<usize>>,
    /// Initial states.
    pub initial: Vec<usize>,
    /// The underlying model state of each Kripke state.
    pub model_state: Vec<StateId>,
    /// The event label (if any) that produced each Kripke state.
    pub incoming_event: Vec<Option<String>>,
    /// The app (if any) whose transition produced each Kripke state.
    pub incoming_app: Vec<Option<String>>,
    /// Atom name -> index, built once at construction.
    pub(crate) atom_lookup: HashMap<String, usize>,
    /// For each atom, the set of states where it holds, packed as a bitset row over
    /// the state universe.
    pub(crate) atom_rows: Vec<BitSet>,
}

impl Kripke {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    /// Index of an atom, if it exists in the universe (hash lookup, not a scan).
    pub fn atom_index(&self, atom: &str) -> Option<usize> {
        self.atom_lookup.get(atom).copied()
    }

    /// The bitset row of one atom: the set of states where it holds.
    pub fn atom_row(&self, atom: usize) -> &BitSet {
        &self.atom_rows[atom]
    }

    /// True if the atom holds in the state.
    pub fn holds(&self, state: usize, atom: &str) -> bool {
        match self.atom_index(atom) {
            Some(i) => self.atom_rows[i].contains(state),
            None => false,
        }
    }

    /// All atoms holding in one state.
    pub fn atoms_of(&self, state: usize) -> Vec<&str> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| self.atom_rows[*i].contains(state))
            .map(|(_, a)| a.as_str())
            .collect()
    }

    /// Installs the labelling from per-state atom-index lists, (re)building the atom
    /// rows and the atom lookup. The state universe is `per_state.len()`.
    pub fn set_labels(&mut self, per_state: &[Vec<usize>]) {
        let n = per_state.len();
        self.atom_lookup =
            self.atoms.iter().enumerate().map(|(i, a)| (a.clone(), i)).collect();
        self.atom_rows = vec![BitSet::empty(n); self.atoms.len()];
        for (state, atoms) in per_state.iter().enumerate() {
            for &atom in atoms {
                self.atom_rows[atom].insert(state);
            }
        }
    }

    /// Builds the Kripke structure of a state model.
    ///
    /// Kripke states are `(model state, incoming transition label)` pairs: one
    /// "quiescent" state per model state (no incoming event) plus one state per
    /// distinct `(destination, event, app)` combination among the transitions.
    pub fn from_state_model(model: &StateModel) -> Kripke {
        let mut kripke = Kripke::default();
        let schema = &model.schema;
        let mut atom_lookup: HashMap<String, usize> = HashMap::new();
        let mut intern = |atoms: &mut Vec<String>, name: String| -> usize {
            if let Some(&i) = atom_lookup.get(&name) {
                return i;
            }
            let i = atoms.len();
            atom_lookup.insert(name.clone(), i);
            atoms.push(name);
            i
        };

        // Attribute propositions, formatted once per (attribute, value) pair of the
        // schema instead of once per state.
        let attr_atoms: Vec<Vec<usize>> = (0..schema.attr_count())
            .map(|a| {
                let attr = a as soteria_model::AttrId;
                let (handle, attribute) = &schema.keys()[a];
                schema
                    .domain(attr)
                    .iter()
                    .map(|value| {
                        intern(&mut kripke.atoms, format!("attr:{handle}.{attribute}={value}"))
                    })
                    .collect()
            })
            .collect();

        // Per-state atom-index lists, turned into bitset rows by `set_labels` once
        // the state universe is complete.
        let mut per_state: Vec<Vec<usize>> = Vec::new();

        // Quiescent states: one per model state, all initial, labelled with the
        // attribute propositions of the state's digits.
        let mut digits = vec![0u8; schema.attr_count()];
        for s in 0..model.state_count() {
            let labels: Vec<usize> =
                digits.iter().enumerate().map(|(a, d)| attr_atoms[a][*d as usize]).collect();
            per_state.push(labels);
            kripke.state_names.push(model.state(s).label());
            kripke.model_state.push(s);
            kripke.incoming_event.push(None);
            kripke.incoming_app.push(None);
            kripke.initial.push(s);
            schema.advance(&mut digits);
        }

        // Event states: one per distinct (destination, event label, app).
        let mut event_state: HashMap<(StateId, String, String), usize> = HashMap::new();
        for t in &model.transitions {
            let event = t.label.event.kind.label();
            let app = t.label.app.clone();
            event_state.entry((t.to, event.clone(), app.clone())).or_insert_with(|| {
                let id = per_state.len();
                let mut labels: Vec<usize> = (0..schema.attr_count())
                    .map(|a| attr_atoms[a][schema.digit_of(t.to, a as soteria_model::AttrId) as usize])
                    .collect();
                labels.push(intern(&mut kripke.atoms, format!("event:{event}")));
                labels.push(intern(&mut kripke.atoms, "triggered".to_string()));
                labels.push(intern(&mut kripke.atoms, format!("by-app:{app}")));
                per_state.push(labels);
                kripke
                    .state_names
                    .push(format!("{} after {}", model.state(t.to).label(), event));
                kripke.model_state.push(t.to);
                kripke.incoming_event.push(Some(event.clone()));
                kripke.incoming_app.push(Some(app.clone()));
                id
            });
        }

        // Transitions: every Kripke state sharing the source model state gets an edge
        // to the (destination, label) Kripke state. Kripke states are grouped by
        // model state up front, so this is O(edges) rather than the seed's
        // O(transitions x states) scan.
        let total_states = per_state.len();
        let mut states_of_model: Vec<Vec<usize>> = vec![Vec::new(); model.state_count()];
        for (id, &ms) in kripke.model_state.iter().enumerate() {
            states_of_model[ms].push(id);
        }
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for t in &model.transitions {
            let key = (t.to, t.label.event.kind.label(), t.label.app.clone());
            let to_id = event_state[&key];
            for &from_id in &states_of_model[t.from] {
                edges.push((from_id, to_id));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        kripke.successors = vec![Vec::new(); total_states];
        for (from, to) in edges {
            kripke.successors[from].push(to);
        }
        // Totalise the relation: deadlocked states loop on themselves.
        for s in 0..total_states {
            if kripke.successors[s].is_empty() {
                kripke.successors[s].push(s);
            }
        }
        kripke.set_labels(&per_state);
        kripke
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_analysis::PathCondition;
    use soteria_capability::{AttributeValue, Event, EventKind};
    use soteria_model::{Transition, TransitionLabel};
    use std::collections::BTreeMap;

    fn water_leak_model() -> StateModel {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            ("sensor".to_string(), "water".to_string()),
            vec![AttributeValue::symbol("dry"), AttributeValue::symbol("wet")],
        );
        attrs.insert(
            ("valve".to_string(), "valve".to_string()),
            vec![AttributeValue::symbol("open"), AttributeValue::symbol("closed")],
        );
        let mut model = StateModel::with_attributes("WaterLeak", attrs);
        let index = model.state_index();
        let wet_closed = index
            .iter()
            .find(|(s, _)| {
                s.get("sensor", "water") == Some(&AttributeValue::symbol("wet"))
                    && s.get("valve", "valve") == Some(&AttributeValue::symbol("closed"))
            })
            .map(|(_, &i)| i)
            .unwrap();
        let mut transitions = Vec::new();
        for from in 0..model.state_count() {
            transitions.push(Transition {
                from,
                to: wet_closed,
                label: TransitionLabel {
                    event: Event::new("sensor", EventKind::device("waterSensor", "water", Some("wet"))),
                    condition: PathCondition::top(),
                    app: "WaterLeak".into(),
                    handler: "h".into(),
                    via_reflection: false,
                },
            });
        }
        for t in transitions {
            model.add_transition(t);
        }
        model
    }

    #[test]
    fn kripke_has_quiescent_and_event_states() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        // 4 quiescent states + 1 event state (wet/closed after water.wet).
        assert_eq!(kripke.state_count(), 5);
        assert_eq!(kripke.initial.len(), 4);
        let event_state = (0..kripke.state_count())
            .find(|s| kripke.incoming_event[*s].is_some())
            .unwrap();
        assert!(kripke.holds(event_state, "event:water.wet"));
        assert!(kripke.holds(event_state, "triggered"));
        assert!(kripke.holds(event_state, "attr:valve.valve=closed"));
        assert!(kripke.holds(event_state, "by-app:WaterLeak"));
        assert!(!kripke.holds(0, "triggered"));
    }

    #[test]
    fn relation_is_total() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        assert!(kripke.successors.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn every_source_state_reaches_the_event_state() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        let event_state = (0..kripke.state_count())
            .find(|s| kripke.incoming_event[*s].is_some())
            .unwrap();
        for init in &kripke.initial {
            assert!(kripke.successors[*init].contains(&event_state));
        }
    }

    #[test]
    fn unknown_atom_never_holds() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        assert!(!kripke.holds(0, "attr:missing.device=on"));
        assert_eq!(kripke.atom_index("nonexistent"), None);
        assert!(!kripke.atoms_of(0).is_empty());
    }

    #[test]
    fn atom_rows_match_per_state_view() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        for (i, atom) in kripke.atoms.iter().enumerate() {
            let row = kripke.atom_row(i);
            for s in 0..kripke.state_count() {
                assert_eq!(row.contains(s), kripke.holds(s, atom));
                assert_eq!(row.contains(s), kripke.atoms_of(s).contains(&atom.as_str()));
            }
        }
    }
}
