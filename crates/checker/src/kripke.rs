//! Kripke structures derived from state models (Sec. 5, "Model Checking with NuSMV").
//!
//! The translation makes every transition label observable as an atomic proposition:
//! a Kripke state is a pair of a model state and the event that produced it, so
//! properties of the form "when event E occurs, X must hold" become `AG(event_E → X)`
//! (the paper's `water.wet → AX valve.on` example).
//!
//! Labelling is stored column-wise: for every atom a [`BitSet`] row over the state
//! universe. `Ctl::Atom` satisfaction in the checker is then a single row clone, and
//! atom lookup goes through a `HashMap` built once at construction instead of the
//! seed's linear scan per query. Attribute propositions are precomputed per
//! `(attribute id, value digit)` pair of the model's interned schema, so building the
//! structure formats each proposition string once rather than once per state.
//!
//! The transition relation is stored once, in compressed-sparse-row (CSR) form, in
//! **both** directions: [`Kripke::successors`] and [`Kripke::predecessors`] index flat
//! `u32` target arrays through per-state offset arrays. Every consumer — the
//! frontier fixpoints of the symbolic engine, the per-state scans of the explicit
//! engine, and counterexample BFS — runs off the same two arrays, replacing the
//! seed's per-state `Vec<Vec<usize>>` successor lists and the per-`ModelChecker`
//! predecessor rebuild.
//!
//! State names are lazy: construction records only `(model state, incoming event)`
//! per Kripke state plus one label fragment per `(attribute, value)` pair of the
//! schema; the human-readable `"[attr=value, ...] after event"` string is formatted
//! by [`Kripke::state_name`] only when a counterexample trace (or an export) asks
//! for it, instead of eagerly for every state during construction.

use crate::bitset::BitSet;
use soteria_model::{StateId, StateModel};
use std::collections::HashMap;

/// A Kripke structure: states labelled with atomic propositions and a total
/// transition relation stored as forward + reverse CSR arrays.
#[derive(Debug, Clone, Default)]
pub struct Kripke {
    /// The atomic-proposition universe.
    pub atoms: Vec<String>,
    /// Initial states.
    pub initial: Vec<usize>,
    /// The underlying model state of each Kripke state.
    pub model_state: Vec<StateId>,
    /// The event label (if any) that produced each Kripke state.
    pub incoming_event: Vec<Option<String>>,
    /// The app (if any) whose transition produced each Kripke state.
    pub incoming_app: Vec<Option<String>>,
    /// CSR offsets into `succ_targets`: the successors of state `s` are
    /// `succ_targets[succ_offsets[s]..succ_offsets[s + 1]]`.
    succ_offsets: Vec<u32>,
    /// Flat successor array (forward edges, sorted per source).
    succ_targets: Vec<u32>,
    /// CSR offsets into `pred_targets` (reverse edges).
    pred_offsets: Vec<u32>,
    /// Flat predecessor array (reverse edges, sorted per target).
    pred_targets: Vec<u32>,
    /// Explicit per-state names for hand-built structures (tests, fuzzing); empty
    /// for model-derived structures, whose names are derived lazily.
    name_override: Vec<String>,
    /// Per `(attribute, value digit)` label fragment (`"handle=value"` or
    /// `"handle.attribute=value"`), used to format state names on demand.
    name_fragments: Vec<Vec<String>>,
    /// Mixed-radix strides of the model's schema, for recovering value digits from a
    /// model-state id without keeping the schema alive.
    name_strides: Vec<usize>,
    /// Atom name -> index, built once at construction.
    pub(crate) atom_lookup: HashMap<String, usize>,
    /// For each atom, the set of states where it holds, packed as a bitset row over
    /// the state universe.
    pub(crate) atom_rows: Vec<BitSet>,
}

impl Kripke {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.model_state.len()
    }

    /// Number of (forward) edges.
    pub fn edge_count(&self) -> usize {
        self.succ_targets.len()
    }

    /// The successors of one state (CSR slice).
    pub fn successors(&self, state: usize) -> &[u32] {
        &self.succ_targets[self.succ_offsets[state] as usize..self.succ_offsets[state + 1] as usize]
    }

    /// The predecessors of one state (reverse CSR slice).
    pub fn predecessors(&self, state: usize) -> &[u32] {
        &self.pred_targets[self.pred_offsets[state] as usize..self.pred_offsets[state + 1] as usize]
    }

    /// Index of an atom, if it exists in the universe (hash lookup, not a scan).
    pub fn atom_index(&self, atom: &str) -> Option<usize> {
        self.atom_lookup.get(atom).copied()
    }

    /// The bitset row of one atom: the set of states where it holds.
    pub fn atom_row(&self, atom: usize) -> &BitSet {
        &self.atom_rows[atom]
    }

    /// True if the atom holds in the state.
    pub fn holds(&self, state: usize, atom: &str) -> bool {
        match self.atom_index(atom) {
            Some(i) => self.atom_rows[i].contains(state),
            None => false,
        }
    }

    /// All atoms holding in one state.
    pub fn atoms_of(&self, state: usize) -> Vec<&str> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| self.atom_rows[*i].contains(state))
            .map(|(_, a)| a.as_str())
            .collect()
    }

    /// The human-readable name of one state, formatted on demand: the model state's
    /// attribute valuation, suffixed with `" after {event}"` for event states.
    pub fn state_name(&self, state: usize) -> String {
        if !self.name_override.is_empty() {
            return self.name_override[state].clone();
        }
        let id = self.model_state[state];
        let parts: Vec<&str> = self
            .name_fragments
            .iter()
            .zip(&self.name_strides)
            .map(|(fragments, stride)| {
                let digit = (id / stride) % fragments.len().max(1);
                fragments[digit].as_str()
            })
            .collect();
        let base = format!("[{}]", parts.join(", "));
        match &self.incoming_event[state] {
            Some(event) => format!("{base} after {event}"),
            None => base,
        }
    }

    /// Installs the labelling from per-state atom-index lists, (re)building the atom
    /// rows and the atom lookup. The state universe is `per_state.len()`.
    pub fn set_labels(&mut self, per_state: &[Vec<usize>]) {
        let n = per_state.len();
        self.atom_lookup =
            self.atoms.iter().enumerate().map(|(i, a)| (a.clone(), i)).collect();
        self.atom_rows = vec![BitSet::empty(n); self.atoms.len()];
        for (state, atoms) in per_state.iter().enumerate() {
            for &atom in atoms {
                self.atom_rows[atom].insert(state);
            }
        }
    }

    /// Installs the transition relation from an edge list, building the forward and
    /// reverse CSR arrays in one pass each. The relation is made total by adding a
    /// self-loop to every deadlocked state. `edges` is consumed (sorted, deduplicated)
    /// to avoid an extra copy.
    pub fn set_transitions(&mut self, mut edges: Vec<(u32, u32)>) {
        let n = self.state_count();
        debug_assert!(n <= u32::MAX as usize, "state universe exceeds u32 indexing");
        edges.sort_unstable();
        edges.dedup();
        // Totalise: states with no outgoing edge loop on themselves.
        let mut out_degree = vec![0u32; n];
        for &(from, _) in &edges {
            out_degree[from as usize] += 1;
        }
        for (s, degree) in out_degree.iter_mut().enumerate() {
            if *degree == 0 {
                *degree = 1;
                edges.push((s as u32, s as u32));
            }
        }
        edges.sort_unstable();
        // Forward CSR: edges are sorted by source, so the flat target array is a
        // direct projection.
        self.succ_offsets = Vec::with_capacity(n + 1);
        self.succ_offsets.push(0);
        let mut acc = 0u32;
        for &degree in &out_degree {
            acc += degree;
            self.succ_offsets.push(acc);
        }
        self.succ_targets = edges.iter().map(|&(_, to)| to).collect();
        // Reverse CSR by counting sort on the target column.
        let mut in_degree = vec![0u32; n];
        for &(_, to) in &edges {
            in_degree[to as usize] += 1;
        }
        self.pred_offsets = Vec::with_capacity(n + 1);
        self.pred_offsets.push(0);
        let mut acc = 0u32;
        for &degree in &in_degree {
            acc += degree;
            self.pred_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = self.pred_offsets[..n].to_vec();
        self.pred_targets = vec![0u32; edges.len()];
        for &(from, to) in &edges {
            let slot = cursor[to as usize];
            self.pred_targets[slot as usize] = from;
            cursor[to as usize] += 1;
        }
    }

    /// Builds a hand-specified Kripke structure from per-state successor lists, with
    /// explicit state names. Used by tests and the differential fuzzer; call
    /// [`Kripke::set_labels`] afterwards to install the atom labelling.
    pub fn from_lists(
        atoms: Vec<String>,
        names: Vec<String>,
        successor_lists: &[Vec<usize>],
        initial: Vec<usize>,
    ) -> Kripke {
        let n = successor_lists.len();
        assert_eq!(names.len(), n, "one name per state");
        let mut kripke = Kripke {
            atoms,
            initial,
            model_state: (0..n).collect(),
            incoming_event: vec![None; n],
            incoming_app: vec![None; n],
            name_override: names,
            ..Kripke::default()
        };
        let edges: Vec<(u32, u32)> = successor_lists
            .iter()
            .enumerate()
            .flat_map(|(from, succs)| succs.iter().map(move |&to| (from as u32, to as u32)))
            .collect();
        kripke.set_transitions(edges);
        kripke
    }

    /// Builds the Kripke structure of a state model.
    ///
    /// Kripke states are `(model state, incoming transition label)` pairs: one
    /// "quiescent" state per model state (no incoming event) plus one state per
    /// distinct `(destination, event, app)` combination among the transitions.
    pub fn from_state_model(model: &StateModel) -> Kripke {
        let mut kripke = Kripke::default();
        let schema = &model.schema;
        let mut atom_lookup: HashMap<String, usize> = HashMap::new();
        let mut intern = |atoms: &mut Vec<String>, name: String| -> usize {
            if let Some(&i) = atom_lookup.get(&name) {
                return i;
            }
            let i = atoms.len();
            atom_lookup.insert(name.clone(), i);
            atoms.push(name);
            i
        };

        // Attribute propositions, formatted once per (attribute, value) pair of the
        // schema instead of once per state. The state-name fragments reuse the same
        // iteration so names can be derived lazily from a model-state id alone.
        let mut attr_atoms: Vec<Vec<usize>> = Vec::with_capacity(schema.attr_count());
        for a in 0..schema.attr_count() {
            let attr = a as soteria_model::AttrId;
            let (handle, attribute) = &schema.keys()[a];
            let mut atoms_row = Vec::new();
            let mut fragments = Vec::new();
            for value in schema.domain(attr) {
                atoms_row.push(intern(
                    &mut kripke.atoms,
                    format!("attr:{handle}.{attribute}={value}"),
                ));
                fragments.push(soteria_model::label_fragment(handle, attribute, value));
            }
            attr_atoms.push(atoms_row);
            kripke.name_fragments.push(fragments);
        }
        // The schema's own mixed-radix strides, so digit extraction in `state_name`
        // uses the same state-id arithmetic as the model layer.
        kripke.name_strides = (0..schema.attr_count())
            .map(|a| schema.stride(a as soteria_model::AttrId))
            .collect();

        // Per-state atom-index lists, turned into bitset rows by `set_labels` once
        // the state universe is complete.
        let mut per_state: Vec<Vec<usize>> = Vec::new();

        // Quiescent states: one per model state, all initial, labelled with the
        // attribute propositions of the state's digits.
        let mut digits = vec![0u8; schema.attr_count()];
        for s in 0..model.state_count() {
            let labels: Vec<usize> =
                digits.iter().enumerate().map(|(a, d)| attr_atoms[a][*d as usize]).collect();
            per_state.push(labels);
            kripke.model_state.push(s);
            kripke.incoming_event.push(None);
            kripke.incoming_app.push(None);
            kripke.initial.push(s);
            schema.advance(&mut digits);
        }

        // Event states: one per distinct (destination, event label, app).
        let mut event_state: HashMap<(StateId, String, String), usize> = HashMap::new();
        for t in &model.transitions {
            let event = t.label.event.kind.label();
            let app = t.label.app.clone();
            event_state.entry((t.to, event.clone(), app.clone())).or_insert_with(|| {
                let id = per_state.len();
                let mut labels: Vec<usize> = (0..schema.attr_count())
                    .map(|a| attr_atoms[a][schema.digit_of(t.to, a as soteria_model::AttrId) as usize])
                    .collect();
                labels.push(intern(&mut kripke.atoms, format!("event:{event}")));
                labels.push(intern(&mut kripke.atoms, "triggered".to_string()));
                labels.push(intern(&mut kripke.atoms, format!("by-app:{app}")));
                per_state.push(labels);
                kripke.model_state.push(t.to);
                kripke.incoming_event.push(Some(event.clone()));
                kripke.incoming_app.push(Some(app.clone()));
                id
            });
        }

        // Transitions: every Kripke state sharing the source model state gets an edge
        // to the (destination, label) Kripke state. Kripke states are grouped by
        // model state up front, so this is O(edges) rather than the seed's
        // O(transitions x states) scan.
        let mut states_of_model: Vec<Vec<usize>> = vec![Vec::new(); model.state_count()];
        for (id, &ms) in kripke.model_state.iter().enumerate() {
            states_of_model[ms].push(id);
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for t in &model.transitions {
            let key = (t.to, t.label.event.kind.label(), t.label.app.clone());
            let to_id = event_state[&key] as u32;
            for &from_id in &states_of_model[t.from] {
                edges.push((from_id as u32, to_id));
            }
        }
        kripke.set_transitions(edges);
        kripke.set_labels(&per_state);
        kripke
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_analysis::PathCondition;
    use soteria_capability::{AttributeValue, Event, EventKind};
    use soteria_model::{Transition, TransitionLabel};
    use std::collections::BTreeMap;

    fn water_leak_model() -> StateModel {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            ("sensor".to_string(), "water".to_string()),
            vec![AttributeValue::symbol("dry"), AttributeValue::symbol("wet")],
        );
        attrs.insert(
            ("valve".to_string(), "valve".to_string()),
            vec![AttributeValue::symbol("open"), AttributeValue::symbol("closed")],
        );
        let mut model = StateModel::with_attributes("WaterLeak", attrs);
        let index = model.state_index();
        let wet_closed = index
            .iter()
            .find(|(s, _)| {
                s.get("sensor", "water") == Some(&AttributeValue::symbol("wet"))
                    && s.get("valve", "valve") == Some(&AttributeValue::symbol("closed"))
            })
            .map(|(_, &i)| i)
            .unwrap();
        let mut transitions = Vec::new();
        for from in 0..model.state_count() {
            transitions.push(Transition {
                from,
                to: wet_closed,
                label: TransitionLabel {
                    event: Event::new("sensor", EventKind::device("waterSensor", "water", Some("wet"))),
                    condition: PathCondition::top(),
                    app: "WaterLeak".into(),
                    handler: "h".into(),
                    via_reflection: false,
                },
            });
        }
        for t in transitions {
            model.add_transition(t);
        }
        model
    }

    #[test]
    fn kripke_has_quiescent_and_event_states() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        // 4 quiescent states + 1 event state (wet/closed after water.wet).
        assert_eq!(kripke.state_count(), 5);
        assert_eq!(kripke.initial.len(), 4);
        let event_state = (0..kripke.state_count())
            .find(|s| kripke.incoming_event[*s].is_some())
            .unwrap();
        assert!(kripke.holds(event_state, "event:water.wet"));
        assert!(kripke.holds(event_state, "triggered"));
        assert!(kripke.holds(event_state, "attr:valve.valve=closed"));
        assert!(kripke.holds(event_state, "by-app:WaterLeak"));
        assert!(!kripke.holds(0, "triggered"));
    }

    #[test]
    fn relation_is_total() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        assert!((0..kripke.state_count()).all(|s| !kripke.successors(s).is_empty()));
    }

    #[test]
    fn every_source_state_reaches_the_event_state() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        let event_state = (0..kripke.state_count())
            .find(|s| kripke.incoming_event[*s].is_some())
            .unwrap();
        for init in &kripke.initial {
            assert!(kripke.successors(*init).contains(&(event_state as u32)));
        }
    }

    #[test]
    fn reverse_csr_mirrors_forward_csr() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        let n = kripke.state_count();
        let mut forward: Vec<(u32, u32)> = Vec::new();
        for s in 0..n {
            for &t in kripke.successors(s) {
                forward.push((s as u32, t));
            }
        }
        let mut reverse: Vec<(u32, u32)> = Vec::new();
        for t in 0..n {
            for &s in kripke.predecessors(t) {
                reverse.push((s, t as u32));
            }
        }
        forward.sort_unstable();
        reverse.sort_unstable();
        assert_eq!(forward, reverse);
        assert_eq!(forward.len(), kripke.edge_count());
    }

    #[test]
    fn state_names_are_formatted_lazily_and_match_model_labels() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        for s in 0..kripke.state_count() {
            let expected = match &kripke.incoming_event[s] {
                Some(event) => {
                    format!("{} after {}", model.state(kripke.model_state[s]).label(), event)
                }
                None => model.state(kripke.model_state[s]).label(),
            };
            assert_eq!(kripke.state_name(s), expected, "state {s}");
        }
    }

    #[test]
    fn from_lists_builds_a_named_structure() {
        let mut kripke = Kripke::from_lists(
            vec!["p".into()],
            vec!["a".into(), "b".into()],
            &[vec![1], vec![]],
            vec![0],
        );
        kripke.set_labels(&[vec![0], vec![]]);
        assert_eq!(kripke.state_name(0), "a");
        assert_eq!(kripke.successors(0), &[1]);
        // Deadlocked state 1 gets a self-loop.
        assert_eq!(kripke.successors(1), &[1]);
        assert_eq!(kripke.predecessors(1), &[0, 1]);
        assert!(kripke.holds(0, "p"));
    }

    #[test]
    fn unknown_atom_never_holds() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        assert!(!kripke.holds(0, "attr:missing.device=on"));
        assert_eq!(kripke.atom_index("nonexistent"), None);
        assert!(!kripke.atoms_of(0).is_empty());
    }

    #[test]
    fn atom_rows_match_per_state_view() {
        let model = water_leak_model();
        let kripke = Kripke::from_state_model(&model);
        for (i, atom) in kripke.atoms.iter().enumerate() {
            let row = kripke.atom_row(i);
            for s in 0..kripke.state_count() {
                assert_eq!(row.contains(s), kripke.holds(s, atom));
                assert_eq!(row.contains(s), kripke.atoms_of(s).contains(&atom.as_str()));
            }
        }
    }
}
