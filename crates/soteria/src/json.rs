//! A dependency-free JSON value type: deterministic rendering plus a small
//! recursive-descent parser.
//!
//! The service responses (`soteria-serve`), the machine-readable report
//! serializers in [`crate::report`], and the bench output all need JSON without
//! pulling a serialization framework into the dependency-free workspace. A
//! [`JsonValue`] keeps object members in insertion order, so rendering is
//! deterministic — two structurally equal values render byte-identically — which
//! is what lets the cache tests assert *byte*-equality of resubmitted reports.
//!
//! The parser exists for round-tripping: protocol smoke gates parse the served
//! responses back and compare them structurally (minus measured timings) against
//! the direct-API serialization.

use std::fmt;

/// A JSON document: `null`, booleans, numbers, strings, arrays, and objects
/// (insertion-ordered members).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers render without a decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; members keep insertion order (no sorting, no deduplication).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object from key/value pairs (insertion order preserved).
    pub fn object(members: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// An unsigned integer value (exact up to 2^53).
    pub fn uint(n: usize) -> JsonValue {
        JsonValue::Number(n as f64)
    }

    /// Looks a member up in an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if this is a non-negative
    /// number with no fractional part inside the exact-f64 range (< 2^53).
    /// Decoders use this for counts and nanosecond timings: any such value that
    /// was rendered with [`JsonValue::uint`] round-trips exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n)
                if *n >= 0.0 && n.fract() == 0.0 && *n < 9.007_199_254_740_992e15 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Removes an object member (used to strip run-dependent fields — measured
    /// timings — before structural comparison). No-op on non-objects and missing
    /// keys; returns `self` for chaining.
    pub fn without(mut self, key: &str) -> JsonValue {
        if let JsonValue::Object(members) = &mut self {
            members.retain(|(k, _)| k != key);
        }
        self
    }

    /// Renders the value as compact JSON (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(*n, out),
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value plus optional
    /// whitespace).
    ///
    /// Nesting is limited to [`MAX_PARSE_DEPTH`] levels: the parser is
    /// recursive-descent, so adversarial input like ten thousand `[`s would
    /// otherwise overflow the stack instead of returning an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_whitespace(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { position: pos, message: "trailing characters".into() });
        }
        Ok(value)
    }
}

/// The maximum container nesting depth [`JsonValue::parse`] accepts. Deep
/// enough for any report this workspace serializes (reports nest < 10 levels),
/// shallow enough that the recursive parser stays far from stack exhaustion on
/// adversarial input.
pub const MAX_PARSE_DEPTH: usize = 128;

/// A parse failure: byte position and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; nothing we serialize produces them
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, message: impl Into<String>) -> JsonError {
    JsonError { position: pos, message: message.into() }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(fail(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    skip_whitespace(bytes, pos);
    if depth >= MAX_PARSE_DEPTH {
        return Err(fail(*pos, format!("nesting deeper than {MAX_PARSE_DEPTH} levels")));
    }
    match bytes.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_whitespace(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_whitespace(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(fail(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_whitespace(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            loop {
                skip_whitespace(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_whitespace(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_whitespace(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(members));
                    }
                    _ => return Err(fail(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(fail(*pos, format!("expected '{literal}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| fail(start, "not utf-8"))?;
    token
        .parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| fail(start, format!("invalid number '{token}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(fail(*pos, "unterminated string"));
        };
        match byte {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&escape) = bytes.get(*pos) else {
                    return Err(fail(*pos, "unterminated escape"));
                };
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let unit = parse_hex4(bytes, pos)?;
                        // Surrogate pair: a high surrogate must be followed by
                        // \uXXXX with a *low* surrogate.
                        let code = if (0xD800..0xDC00).contains(&unit) {
                            if bytes.get(*pos) == Some(&b'\\')
                                && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(fail(*pos, "unpaired surrogate"));
                                }
                                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err(fail(*pos, "unpaired surrogate"));
                            }
                        } else {
                            unit
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| fail(*pos, "invalid code point"))?,
                        );
                    }
                    other => {
                        return Err(fail(*pos, format!("invalid escape '\\{}'", other as char)))
                    }
                }
            }
            _ => {
                // Copy one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| fail(*pos, "not utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    if *pos + 4 > bytes.len() {
        return Err(fail(*pos, "truncated \\u escape"));
    }
    let token = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| fail(*pos, "not utf-8"))?;
    let value =
        u32::from_str_radix(token, 16).map_err(|_| fail(*pos, "invalid \\u escape"))?;
    *pos += 4;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_deterministic_json() {
        let value = JsonValue::object([
            ("name", JsonValue::string("Water-Leak \"Detector\"\n")),
            ("states", JsonValue::uint(4)),
            ("ratio", JsonValue::Number(0.5)),
            ("flags", JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null])),
        ]);
        assert_eq!(
            value.render(),
            r#"{"name":"Water-Leak \"Detector\"\n","states":4,"ratio":0.5,"flags":[true,null]}"#
        );
        // Rendering is a pure function: equal values render byte-identically.
        assert_eq!(value.render(), value.clone().render());
    }

    #[test]
    fn parse_render_round_trip() {
        let value = JsonValue::object([
            ("kinds", JsonValue::Array(vec![
                JsonValue::string("unicode ✓ and \t control"),
                JsonValue::Number(-12.25),
                JsonValue::uint(9_007_199_254_740_991),
                JsonValue::Object(vec![]),
                JsonValue::Array(vec![]),
            ])),
            ("nested", JsonValue::object([("deep", JsonValue::Bool(false))])),
        ]);
        let rendered = value.render();
        let parsed = JsonValue::parse(&rendered).expect("round-trip parse");
        assert_eq!(parsed, value);
        // And the re-render is byte-identical (render∘parse is idempotent).
        assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn parses_whitespace_escapes_and_surrogates() {
        let parsed = JsonValue::parse(
            " { \"a\" : [ 1 , 2.5e2 , \"\\u0041\\u00e9\\ud83d\\ude00\" ] } ",
        )
        .unwrap();
        assert_eq!(
            parsed.get("a").and_then(|v| v.as_array()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(parsed.get("a").unwrap().as_array().unwrap()[2].as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "1 2",
            // High surrogate followed by a non-low-surrogate unit, a lone low
            // surrogate, and a truncated pair: all rejected, never panicking.
            "\"\\ud800\\u0041\"",
            "\"\\udc00\"",
            "\"\\ud800\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_render_as_null_and_round_trip() {
        // JSON has no NaN/Infinity tokens: emitting them raw (as `{n}` would —
        // "NaN"/"inf") produces invalid documents every parser rejects.
        // Non-finite values therefore serialize as `null`, and the result
        // round-trips through our own parser.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let rendered = JsonValue::Number(bad).render();
            assert_eq!(rendered, "null", "{bad} rendered as {rendered}");
            assert_eq!(JsonValue::parse(&rendered).unwrap(), JsonValue::Null);
        }
        // Embedded in a document, the member stays parseable.
        let doc = JsonValue::object([
            ("ratio", JsonValue::Number(f64::NAN)),
            ("ok", JsonValue::Number(0.5)),
        ])
        .render();
        assert_eq!(doc, r#"{"ratio":null,"ok":0.5}"#);
        assert!(JsonValue::parse(&doc).is_ok());
        // Finite extremes still render as valid, round-trippable numbers.
        let big = JsonValue::Number(1e300).render();
        assert_eq!(JsonValue::parse(&big).unwrap(), JsonValue::Number(1e300));
    }

    #[test]
    fn parser_rejects_excessive_nesting_instead_of_overflowing() {
        // Far beyond the limit: adversarial input must error, not crash.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}null{}", open.repeat(100_000), close.repeat(100_000));
            let err = JsonValue::parse(&deep).expect_err("deep nesting accepted");
            assert!(
                err.message.contains("nesting deeper than"),
                "unexpected error: {err}"
            );
        }
        // Exactly at the limit: accepted (the limit bounds recursion, not data).
        let depth = MAX_PARSE_DEPTH - 1;
        let ok = format!("{}null{}", "[".repeat(depth), "]".repeat(depth));
        assert!(JsonValue::parse(&ok).is_ok(), "depth {depth} rejected");
        // One past: rejected.
        let over = format!("{}null{}", "[".repeat(depth + 1), "]".repeat(depth + 1));
        assert!(JsonValue::parse(&over).is_err(), "depth {} accepted", depth + 1);
    }

    #[test]
    fn without_strips_object_members() {
        let value = JsonValue::object([
            ("keep", JsonValue::uint(1)),
            ("drop", JsonValue::uint(2)),
        ]);
        assert_eq!(value.without("drop"), JsonValue::object([("keep", JsonValue::uint(1))]));
    }
}
