//! The end-to-end Soteria analyzer: source code → IR → state model → model checking.

use crate::report::{AppAnalysis, EnvironmentAnalysis, IngestedApp};
use soteria_analysis::{abstract_domains, AnalysisConfig, SymbolicExecutor, TransitionSpec};
use soteria_capability::CapabilityRegistry;
use soteria_checker::{check_all_parallel, Ctl, Engine, Kripke};
use soteria_ir::AppIr;
use soteria_lang::ParseError;
use soteria_model::{build_state_model, union_models, BuildOptions, StateModel, UnionOptions};
use soteria_properties::{
    applicable_properties, check_general, formula, property_info, AppUnderTest, DeviceContext,
    PropertyId, Violation,
};
use std::time::Instant;

/// The Soteria analyzer (Fig. 3): obtains the IR of an app, constructs its state
/// model, and performs model checking against the general and app-specific properties,
/// both for individual apps and for multi-app environments.
#[derive(Debug, Clone)]
pub struct Soteria {
    /// The device capability reference.
    pub registry: CapabilityRegistry,
    /// The static-analysis configuration.
    pub config: AnalysisConfig,
    /// The model-checking engine.
    pub engine: Engine,
}

impl Default for Soteria {
    fn default() -> Self {
        Soteria {
            registry: CapabilityRegistry::standard(),
            config: AnalysisConfig::paper(),
            engine: Engine::Symbolic,
        }
    }
}

impl Soteria {
    /// Creates an analyzer with the paper's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with a custom analysis configuration (used by the ablation
    /// benches).
    pub fn with_config(config: AnalysisConfig) -> Self {
        Soteria { config, ..Self::default() }
    }

    /// The resolved worker count for this analyzer's fan-out sites:
    /// [`AnalysisConfig::threads`] when non-zero, else `SOTERIA_THREADS`, else the
    /// machine's available parallelism.
    pub fn threads(&self) -> usize {
        soteria_exec::resolve_threads(self.config.threads)
    }

    /// Analyzes a batch of `(name, source)` apps — the corpus-sweep entry point used
    /// by the market/MalIoT drivers, examples, and benches.
    ///
    /// Apps are independent, so the per-app [`Soteria::analyze_app`] calls fan out
    /// across the shared long-lived worker pool ([`soteria_exec::global_pool`]; up
    /// to [`Soteria::threads`] workers serve the call — no per-call thread spawns);
    /// the analyzer itself is only read. Results come back in input order and are
    /// byte-identical to a sequential loop at every thread count.
    pub fn analyze_apps(
        &self,
        apps: &[(&str, &str)],
    ) -> Vec<Result<AppAnalysis, ParseError>> {
        soteria_exec::pool_map(apps, self.threads(), |(name, source)| {
            self.analyze_app(name, source)
        })
    }

    /// Analyzes a batch of named multi-app environments — the per-group sweep of the
    /// MalIoT and market drivers.
    ///
    /// Groups are independent: each [`Soteria::analyze_environment`] call runs on its
    /// own shared-pool worker (the member analyses are only read). Results come back
    /// in input order, byte-identical to a sequential loop at every thread count.
    pub fn analyze_environments(
        &self,
        groups: &[(&str, &[AppAnalysis])],
    ) -> Vec<EnvironmentAnalysis> {
        soteria_exec::pool_map(groups, self.threads(), |(name, apps)| {
            self.analyze_environment(name, apps)
        })
    }

    /// Analyzes a single app: IR extraction, state-model construction, and
    /// verification of every applicable property.
    ///
    /// Equivalent to [`Soteria::ingest_app`] followed by [`Soteria::verify_app`];
    /// the service pipelines the two stages so ingestion of the next app overlaps
    /// verification of the previous one.
    pub fn analyze_app(&self, name: &str, source: &str) -> Result<AppAnalysis, ParseError> {
        Ok(self.verify_app(self.ingest_app(name, source)?))
    }

    /// Stage 1 of [`Soteria::analyze_app`]: parses the source, extracts the IR,
    /// runs the symbolic executor, and builds the state model — everything up to
    /// (but not including) property verification.
    pub fn ingest_app(&self, name: &str, source: &str) -> Result<IngestedApp, ParseError> {
        let started = Instant::now();
        let ir = AppIr::from_source(name, source, &self.registry)?;
        let executor = SymbolicExecutor::new(&ir, &self.registry, self.config.clone());
        let specs = executor.transition_specs();
        let summaries = executor.handler_summaries();
        let abstraction = abstract_domains(&ir, &self.registry, &specs);
        let states_before_reduction = abstraction.states_before();
        let model =
            build_state_model(&ir.name, &abstraction, &specs, &BuildOptions::default());
        let extraction_time = started.elapsed();
        Ok(IngestedApp {
            ir,
            specs,
            summaries,
            abstraction,
            model,
            states_before_reduction,
            extraction_time,
        })
    }

    /// Stage 2 of [`Soteria::analyze_app`]: verifies every applicable property on
    /// an ingested app's state model. Pure function of the ingested app and this
    /// analyzer's configuration — results are identical whether the two stages run
    /// back-to-back or pipelined on different workers.
    pub fn verify_app(&self, ingested: IngestedApp) -> AppAnalysis {
        let IngestedApp {
            ir,
            specs,
            summaries,
            abstraction,
            model,
            states_before_reduction,
            extraction_time,
        } = ingested;
        let verification_started = Instant::now();
        let mut violations = Vec::new();
        let app_under_test =
            AppUnderTest { name: &ir.name, ir: &ir, specs: &specs, summaries: &summaries };
        violations.extend(check_general(&[app_under_test], &self.registry));
        violations.extend(self.determinism_violations(&model, std::slice::from_ref(&ir.name)));
        violations.extend(self.check_app_specific(
            &model,
            &specs,
            &abstraction,
            &DeviceContext::from_apps(&[app_under_test]),
            std::slice::from_ref(&ir.name),
        ));
        let verification_time = verification_started.elapsed();

        AppAnalysis {
            ir,
            specs,
            summaries,
            abstraction,
            model,
            violations,
            states_before_reduction,
            extraction_time,
            verification_time,
        }
    }

    /// Analyzes a multi-app environment: builds the union state model (Algorithm 2)
    /// and re-checks every applicable property on the combined behaviour.
    pub fn analyze_environment(
        &self,
        group_name: &str,
        apps: &[AppAnalysis],
    ) -> EnvironmentAnalysis {
        let refs: Vec<&AppAnalysis> = apps.iter().collect();
        self.analyze_environment_refs(group_name, &refs)
    }

    /// [`Soteria::analyze_environment`] over borrowed member analyses — the
    /// service path, where members are frozen behind `Arc`s and must not be
    /// deep-copied per environment job.
    pub fn analyze_environment_refs(
        &self,
        group_name: &str,
        apps: &[&AppAnalysis],
    ) -> EnvironmentAnalysis {
        let started = Instant::now();
        let models: Vec<&StateModel> = apps.iter().map(|a| &a.model).collect();
        // Thread the configured worker count into the union lift (Algorithm 2's free
        // sub-product enumeration parallelizes; the result is byte-identical).
        let union_options =
            UnionOptions { threads: self.config.threads, ..UnionOptions::default() };
        let union_model = union_models(group_name, &models, &union_options);
        let union_time = started.elapsed();

        let verification_started = Instant::now();
        let under_test: Vec<AppUnderTest<'_>> = apps
            .iter()
            .map(|a| AppUnderTest {
                name: a.ir.name.as_str(),
                ir: &a.ir,
                specs: &a.specs,
                summaries: &a.summaries,
            })
            .collect();
        let app_names: Vec<String> = apps.iter().map(|a| a.ir.name.clone()).collect();
        let mut violations = check_general(&under_test, &self.registry);

        // App-specific properties on the union Kripke structure.
        let ctx = DeviceContext::from_apps(&under_test);
        let all_specs: Vec<TransitionSpec> =
            apps.iter().flat_map(|a| a.specs.iter().cloned()).collect();
        // Start offset of each app's slice within `all_specs`, so kept indices can be
        // mapped back to their owning app in O(log n) instead of the former
        // O(specs²) pointer scan.
        let spec_offsets: Vec<usize> = apps
            .iter()
            .scan(0usize, |acc, a| {
                let start = *acc;
                *acc += a.specs.len();
                Some(start)
            })
            .collect();
        // The union model uses the abstractions already baked into the per-app models;
        // an aggregate abstraction is only needed for FP re-checking, so reuse the
        // first app's (values outside any domain collapse to `other`).
        violations.extend(self.check_specific_on_model(
            &union_model,
            &ctx,
            &app_names,
            &all_specs,
            |kept| {
                let filtered_models: Vec<StateModel> = apps
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        let start = spec_offsets[i];
                        let end = start + a.specs.len();
                        // `kept` is ascending, so this app's share is one subrange.
                        let lo = kept.partition_point(|&k| k < start);
                        let hi = kept.partition_point(|&k| k < end);
                        let kept_specs: Vec<TransitionSpec> =
                            kept[lo..hi].iter().map(|&k| a.specs[k - start].clone()).collect();
                        build_state_model(
                            &a.ir.name,
                            &a.abstraction,
                            &kept_specs,
                            &BuildOptions::default(),
                        )
                    })
                    .collect();
                let refs: Vec<&StateModel> = filtered_models.iter().collect();
                union_models(group_name, &refs, &union_options)
            },
        ));
        // Individual-app violations are reported by individual analysis; keep only the
        // findings that need the environment (multiple apps involved or not present in
        // any single app's report).
        let single_app: Vec<&Violation> = apps.iter().flat_map(|a| a.violations.iter()).collect();
        violations.retain(|v| {
            v.apps.len() > 1
                || !single_app
                    .iter()
                    .any(|s| s.property == v.property && s.description == v.description)
        });
        let verification_time = verification_started.elapsed();

        EnvironmentAnalysis {
            name: group_name.to_string(),
            app_names,
            union_model,
            violations,
            union_time,
            verification_time,
        }
    }

    /// Nondeterministic state models are reported as a safety violation (Sec. 4.2).
    fn determinism_violations(&self, model: &StateModel, apps: &[String]) -> Vec<Violation> {
        model
            .nondeterminism()
            .into_iter()
            .map(|nd| {
                Violation::new(
                    PropertyId::Determinism,
                    format!(
                        "nondeterministic model: event {} from state {} may reach both {} and {}",
                        nd.event.kind,
                        model.state(nd.state).label(),
                        model.state(nd.targets.0).label(),
                        model.state(nd.targets.1).label()
                    ),
                    apps.to_vec(),
                )
            })
            .collect()
    }

    /// Checks the applicable app-specific properties on one app's model.
    fn check_app_specific(
        &self,
        model: &StateModel,
        specs: &[TransitionSpec],
        abstraction: &soteria_analysis::Abstraction,
        ctx: &DeviceContext,
        apps: &[String],
    ) -> Vec<Violation> {
        self.check_specific_on_model(model, ctx, apps, specs, |kept| {
            let kept_owned: Vec<TransitionSpec> =
                kept.iter().map(|&i| specs[i].clone()).collect();
            build_state_model(&model.name, abstraction, &kept_owned, &BuildOptions::default())
        })
    }

    /// Shared logic for checking P.1–P.30 on a model. `rebuild_without_reflection`
    /// receives the (ascending) indices into `specs` of the specs to keep and
    /// rebuilds the model from them, so that violations that disappear without the
    /// reflection over-approximation can be marked as possible false positives (the
    /// MalIoT App5 case).
    ///
    /// The applicable formulas are checked as one batch ([`check_all_parallel`]):
    /// on larger-than-one-word state universes the ~30 properties share cached
    /// subformula satisfaction sets within a shard, and above the checker's
    /// `PARALLEL_UNIVERSE` threshold the shards fan out across per-thread checkers
    /// (small universes recompute — see the checker's `SMALL_UNIVERSE` note); the
    /// reflection-free re-check batches the failing formulas the same way.
    fn check_specific_on_model(
        &self,
        model: &StateModel,
        ctx: &DeviceContext,
        apps: &[String],
        specs: &[TransitionSpec],
        rebuild_without_reflection: impl Fn(&[usize]) -> StateModel,
    ) -> Vec<Violation> {
        let applicable = applicable_properties(ctx);
        if applicable.is_empty() {
            return Vec::new();
        }
        let mut ids: Vec<u8> = Vec::new();
        let mut formulas: Vec<Ctl> = Vec::new();
        for id in applicable {
            let Some(f) = formula(id, ctx) else { continue };
            if f == Ctl::True {
                continue;
            }
            ids.push(id);
            formulas.push(f);
        }
        if formulas.is_empty() {
            return Vec::new();
        }
        // Property-level fan-out: the root formulas are independent, so on large
        // universes they shard across per-thread checkers (each with its own
        // sat-set memo); small universes run the memoized sequential batch.
        let kripke = default_initial_kripke(model);
        let results = check_all_parallel(&kripke, self.engine, &formulas, self.threads());

        let failing: Vec<usize> =
            (0..results.len()).filter(|&i| !results[i].holds).collect();
        if failing.is_empty() {
            return Vec::new();
        }
        // Re-check the failures on the reflection-free model (built once) to flag
        // possible false positives.
        let holds_without_reflection: Vec<bool> = if specs.iter().any(|s| s.via_reflection) {
            let kept: Vec<usize> =
                (0..specs.len()).filter(|&i| !specs[i].via_reflection).collect();
            let m = rebuild_without_reflection(&kept);
            let k = default_initial_kripke(&m);
            let failing_formulas: Vec<Ctl> =
                failing.iter().map(|&i| formulas[i].clone()).collect();
            check_all_parallel(&k, self.engine, &failing_formulas, self.threads())
                .iter()
                .map(|r| r.holds)
                .collect()
        } else {
            vec![false; failing.len()]
        };

        let mut violations = Vec::new();
        for (&i, &fp) in failing.iter().zip(&holds_without_reflection) {
            let id = ids[i];
            let info = property_info(PropertyId::AppSpecific(id));
            let mut violation = Violation::new(
                PropertyId::AppSpecific(id),
                info.map(|i| i.description.to_string()).unwrap_or_else(|| format!("property P.{id}")),
                apps.to_vec(),
            );
            if let Some(trace) = &results[i].counterexample {
                violation = violation.with_counterexample(trace.clone());
            }
            if fp {
                violation = violation.as_possible_false_positive();
            }
            violations.push(violation);
        }
        violations
    }
}

/// Builds the Kripke structure of a model and restricts its initial states to the
/// model's default configuration, so that `AG` properties quantify over the states the
/// app can actually drive the environment into.
pub fn default_initial_kripke(model: &StateModel) -> Kripke {
    let mut kripke = Kripke::from_state_model(model);
    // Quiescent Kripke states are created first, one per model state, in order — so
    // the Kripke id of the default state equals the model's initial state id.
    kripke.initial = vec![model.initial];
    kripke
}

#[cfg(test)]
mod tests {
    use super::*;

    const WATER_LEAK: &str = r#"
        definition(name: "Water-Leak-Detector", category: "Safety & Security")
        preferences {
            section("When there's water detected...") {
                input "water_sensor", "capability.waterSensor", title: "Where?"
                input "valve_device", "capability.valve", title: "Valve device"
            }
        }
        def installed() {
            subscribe(water_sensor, "water.wet", waterWetHandler)
        }
        def waterWetHandler(evt) {
            valve_device.close()
        }
    "#;

    const BROKEN_LEAK: &str = r#"
        definition(name: "Broken-Leak-Detector", category: "Safety & Security")
        preferences {
            section("d") {
                input "water_sensor", "capability.waterSensor"
                input "valve_device", "capability.valve"
            }
        }
        def installed() {
            subscribe(water_sensor, "water.wet", h)
        }
        def h(evt) {
            valve_device.open()
        }
    "#;

    #[test]
    fn correct_water_leak_detector_has_no_violations() {
        let soteria = Soteria::new();
        let analysis = soteria.analyze_app("wld", WATER_LEAK).unwrap();
        assert_eq!(analysis.ir.name, "Water-Leak-Detector");
        assert_eq!(analysis.model.state_count(), 4);
        assert!(analysis.violations.is_empty(), "violations: {:?}", analysis.violations);
    }

    #[test]
    fn broken_water_leak_detector_violates_p30() {
        let soteria = Soteria::new();
        let analysis = soteria.analyze_app("broken", BROKEN_LEAK).unwrap();
        let p30: Vec<&Violation> = analysis
            .violations
            .iter()
            .filter(|v| v.property == PropertyId::AppSpecific(30))
            .collect();
        assert_eq!(p30.len(), 1);
        let trace = p30[0].counterexample.as_ref().unwrap();
        assert!(trace.last().unwrap().contains("water.wet"), "trace: {trace:?}");
    }

    #[test]
    fn environment_of_conflicting_apps_reports_cross_app_violation() {
        let smoke_on = r#"
            definition(name: "Smoke-Light-On")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "smoke", "capability.smokeDetector"
            } }
            def installed() { subscribe(smoke, "smoke.detected", h) }
            def h(evt) { sw.on() }
        "#;
        let smoke_off = r#"
            definition(name: "Smoke-Light-Off")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "smoke", "capability.smokeDetector"
            } }
            def installed() { subscribe(smoke, "smoke.detected", h) }
            def h(evt) { sw.off() }
        "#;
        let soteria = Soteria::new();
        let a = soteria.analyze_app("a", smoke_on).unwrap();
        let b = soteria.analyze_app("b", smoke_off).unwrap();
        assert!(a.violations.is_empty());
        assert!(b.violations.is_empty());
        let env = soteria.analyze_environment("G", &[a, b]);
        assert!(env
            .violations
            .iter()
            .any(|v| v.property == PropertyId::General(1) && v.apps.len() == 2));
        assert!(env.union_model.state_count() >= 2);
    }

    #[test]
    fn batch_analysis_matches_individual_calls_at_any_thread_count() {
        let apps = [("wld", WATER_LEAK), ("broken", BROKEN_LEAK)];
        let sequential = Soteria::with_config(AnalysisConfig { threads: 1, ..AnalysisConfig::paper() });
        let expected: Vec<Vec<Violation>> = apps
            .iter()
            .map(|(n, s)| sequential.analyze_app(n, s).unwrap().violations)
            .collect();
        for threads in [1, 4] {
            let soteria =
                Soteria::with_config(AnalysisConfig { threads, ..AnalysisConfig::paper() });
            let batch = soteria.analyze_apps(&apps);
            assert_eq!(batch.len(), 2);
            for (analysis, want) in batch.iter().zip(&expected) {
                assert_eq!(&analysis.as_ref().unwrap().violations, want, "threads = {threads}");
            }
        }
    }

    #[test]
    fn batch_environments_match_individual_calls() {
        let soteria = Soteria::new();
        let a = soteria.analyze_app("wld", WATER_LEAK).unwrap();
        let b = soteria.analyze_app("broken", BROKEN_LEAK).unwrap();
        let g1 = [a.clone()];
        let g2 = [a.clone(), b.clone()];
        let groups: Vec<(&str, &[AppAnalysis])> = vec![("G1", &g1), ("G2", &g2)];
        let batch = soteria.analyze_environments(&groups);
        let individual =
            [soteria.analyze_environment("G1", &g1), soteria.analyze_environment("G2", &g2)];
        assert_eq!(batch.len(), 2);
        for (got, want) in batch.iter().zip(&individual) {
            assert_eq!(got.name, want.name);
            assert_eq!(got.violations, want.violations);
            assert_eq!(got.union_model.transitions, want.union_model.transitions);
        }
    }

    #[test]
    fn parse_errors_surface_per_app_in_the_batch() {
        let soteria = Soteria::new();
        let results = soteria.analyze_apps(&[("ok", WATER_LEAK), ("bad", "definition(")]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn timing_fields_are_populated() {
        let soteria = Soteria::new();
        let analysis = soteria.analyze_app("wld", WATER_LEAK).unwrap();
        // Durations are non-negative by construction; just confirm they were measured.
        assert!(analysis.extraction_time.as_nanos() > 0);
        assert!(analysis.states_before_reduction >= analysis.model.state_count());
    }
}
