//! The end-to-end Soteria analyzer: source code → IR → state model → model checking.

use crate::report::{
    AppAnalysis, EnvironmentAnalysis, IngestedApp, StoredAppAnalysis,
    StoredEnvironmentAnalysis,
};
use soteria_analysis::{abstract_domains, AnalysisConfig, SymbolicExecutor, TransitionSpec};
use soteria_capability::CapabilityRegistry;
use soteria_checker::{
    check_all_parallel_with, Ctl, Engine, Kripke, ModelChecker, SatSnapshot,
};
use soteria_ir::AppIr;
use soteria_lang::ParseError;
use soteria_model::{
    build_state_model, union_models, union_models_delta, BuildOptions, StateModel, Transition,
    UnionOptions,
};
use soteria_properties::{
    applicable_properties, check_general, formula, property_info, AppUnderTest, DeviceContext,
    PropertyId, Violation,
};
use std::sync::Arc;
use std::time::Instant;

/// How an environment analysis builds its union model and runs its checks.
///
/// Every mode produces a byte-identical [`EnvironmentAnalysis`]; the modes only
/// differ in how much work they reuse and whether they export a
/// [`SatSnapshot`] for the *next* analysis of the same group.
enum EnvMode<'a> {
    /// From scratch, property-level parallel check, no snapshot (the batch /
    /// corpus-sweep path — zero overhead when nobody will re-verify).
    Batch,
    /// From scratch on a single memo-sharing checker, exporting its sat sets
    /// (the service's cold path: first analysis of a resident group).
    Snapshot,
    /// One member changed: delta-union against the cached base model, sat-set
    /// reuse from the cached snapshot, fresh snapshot exported.
    Incremental {
        base: &'a EnvironmentAnalysis,
        snapshot: &'a SatSnapshot,
        changed_member: usize,
    },
}

/// The checking half of [`EnvMode`], passed into `check_specific_on_model`.
enum CheckMode<'a> {
    Batch,
    Snapshot,
    Reuse { snapshot: &'a SatSnapshot, dirty_prefixes: &'a [String] },
}

/// The Soteria analyzer (Fig. 3): obtains the IR of an app, constructs its state
/// model, and performs model checking against the general and app-specific properties,
/// both for individual apps and for multi-app environments.
#[derive(Debug, Clone)]
pub struct Soteria {
    /// The device capability reference.
    pub registry: CapabilityRegistry,
    /// The static-analysis configuration.
    pub config: AnalysisConfig,
    /// The model-checking engine.
    pub engine: Engine,
}

impl Default for Soteria {
    fn default() -> Self {
        Soteria {
            registry: CapabilityRegistry::standard(),
            config: AnalysisConfig::paper(),
            engine: Engine::Symbolic,
        }
    }
}

impl Soteria {
    /// Creates an analyzer with the paper's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with a custom analysis configuration (used by the ablation
    /// benches).
    pub fn with_config(config: AnalysisConfig) -> Self {
        Soteria { config, ..Self::default() }
    }

    /// The resolved worker count for this analyzer's fan-out sites:
    /// [`AnalysisConfig::threads`] when non-zero, else `SOTERIA_THREADS`, else the
    /// machine's available parallelism.
    pub fn threads(&self) -> usize {
        soteria_exec::resolve_threads(self.config.threads)
    }

    /// Analyzes a batch of `(name, source)` apps — the corpus-sweep entry point used
    /// by the market/MalIoT drivers, examples, and benches.
    ///
    /// Apps are independent, so the per-app [`Soteria::analyze_app`] calls fan out
    /// across the shared long-lived worker pool ([`soteria_exec::global_pool`]; up
    /// to [`Soteria::threads`] workers serve the call — no per-call thread spawns);
    /// the analyzer itself is only read. Results come back in input order and are
    /// byte-identical to a sequential loop at every thread count.
    pub fn analyze_apps(
        &self,
        apps: &[(&str, &str)],
    ) -> Vec<Result<AppAnalysis, ParseError>> {
        soteria_exec::pool_map(apps, self.threads(), |(name, source)| {
            self.analyze_app(name, source)
        })
    }

    /// Analyzes a batch of named multi-app environments — the per-group sweep of the
    /// MalIoT and market drivers.
    ///
    /// Groups are independent: each [`Soteria::analyze_environment`] call runs on its
    /// own shared-pool worker (the member analyses are only read). Results come back
    /// in input order, byte-identical to a sequential loop at every thread count.
    pub fn analyze_environments(
        &self,
        groups: &[(&str, &[AppAnalysis])],
    ) -> Vec<EnvironmentAnalysis> {
        soteria_exec::pool_map(groups, self.threads(), |(name, apps)| {
            self.analyze_environment(name, apps)
        })
    }

    /// Analyzes a single app: IR extraction, state-model construction, and
    /// verification of every applicable property.
    ///
    /// Equivalent to [`Soteria::ingest_app`] followed by [`Soteria::verify_app`];
    /// the service pipelines the two stages so ingestion of the next app overlaps
    /// verification of the previous one.
    pub fn analyze_app(&self, name: &str, source: &str) -> Result<AppAnalysis, ParseError> {
        Ok(self.verify_app(self.ingest_app(name, source)?))
    }

    /// Stage 1 of [`Soteria::analyze_app`]: parses the source, extracts the IR,
    /// runs the symbolic executor, and builds the state model — everything up to
    /// (but not including) property verification.
    pub fn ingest_app(&self, name: &str, source: &str) -> Result<IngestedApp, ParseError> {
        let _span = soteria_obs::span("soteria.ingest");
        let started = Instant::now();
        let ir = {
            let _s = soteria_obs::span("ingest.parse");
            AppIr::from_source(name, source, &self.registry)?
        };
        let (specs, summaries) = {
            let _s = soteria_obs::span("ingest.symbolic");
            let executor = SymbolicExecutor::new(&ir, &self.registry, self.config.clone());
            (executor.transition_specs(), executor.handler_summaries())
        };
        let abstraction = {
            let _s = soteria_obs::span("ingest.abstraction");
            abstract_domains(&ir, &self.registry, &specs)
        };
        let states_before_reduction = abstraction.states_before();
        let model = {
            let _s = soteria_obs::span("ingest.model");
            build_state_model(&ir.name, &abstraction, &specs, &BuildOptions::default())
        };
        let extraction_time = started.elapsed();
        Ok(IngestedApp {
            ir,
            specs,
            summaries,
            abstraction,
            model,
            states_before_reduction,
            extraction_time,
        })
    }

    /// Stage 2 of [`Soteria::analyze_app`]: verifies every applicable property on
    /// an ingested app's state model. Pure function of the ingested app and this
    /// analyzer's configuration — results are identical whether the two stages run
    /// back-to-back or pipelined on different workers.
    pub fn verify_app(&self, ingested: IngestedApp) -> AppAnalysis {
        let _span = soteria_obs::span("soteria.verify");
        let IngestedApp {
            ir,
            specs,
            summaries,
            abstraction,
            model,
            states_before_reduction,
            extraction_time,
        } = ingested;
        let verification_started = Instant::now();
        let mut violations = Vec::new();
        let app_under_test =
            AppUnderTest { name: &ir.name, ir: &ir, specs: &specs, summaries: &summaries };
        violations.extend(check_general(&[app_under_test], &self.registry));
        violations.extend(self.determinism_violations(&model, std::slice::from_ref(&ir.name)));
        violations.extend(self.check_app_specific(
            &model,
            &specs,
            &abstraction,
            &DeviceContext::from_apps(&[app_under_test]),
            std::slice::from_ref(&ir.name),
        ));
        let verification_time = verification_started.elapsed();

        AppAnalysis {
            ir,
            specs,
            summaries,
            abstraction,
            model,
            violations,
            states_before_reduction,
            extraction_time,
            verification_time,
        }
    }

    /// Analyzes a multi-app environment: builds the union state model (Algorithm 2)
    /// and re-checks every applicable property on the combined behaviour.
    pub fn analyze_environment(
        &self,
        group_name: &str,
        apps: &[AppAnalysis],
    ) -> EnvironmentAnalysis {
        let refs: Vec<&AppAnalysis> = apps.iter().collect();
        self.analyze_environment_refs(group_name, &refs)
    }

    /// [`Soteria::analyze_environment`] over borrowed member analyses — the
    /// service path, where members are frozen behind `Arc`s and must not be
    /// deep-copied per environment job.
    pub fn analyze_environment_refs(
        &self,
        group_name: &str,
        apps: &[&AppAnalysis],
    ) -> EnvironmentAnalysis {
        self.analyze_environment_impl(group_name, apps, EnvMode::Batch).0
    }

    /// [`Soteria::analyze_environment_refs`] plus a [`SatSnapshot`] of the
    /// union check's memoized satisfaction sets — the cold half of incremental
    /// re-verification. The analysis itself is byte-identical to the plain
    /// call; the snapshot (when the group had checkable properties) is what a
    /// later [`Soteria::analyze_environment_incremental`] consumes.
    pub fn analyze_environment_with_snapshot(
        &self,
        group_name: &str,
        apps: &[&AppAnalysis],
    ) -> (EnvironmentAnalysis, Option<SatSnapshot>) {
        self.analyze_environment_impl(group_name, apps, EnvMode::Snapshot)
    }

    /// Re-analyzes an environment after exactly one member changed, reusing a
    /// cached base: the union model is rebuilt by
    /// [`union_models_delta`] (re-lifting only the changed member and splicing
    /// the rest from `base`), and the property check seeds its sat-set memo
    /// from `snapshot` for every subformula over unchanged members' attributes
    /// ([`ModelChecker::reuse_from`]). Falls back to full recomputation —
    /// silently, member by mechanism — whenever a guarantee fails (changed
    /// attribute domains, unprojectable states), so the result is always
    /// byte-identical to [`Soteria::analyze_environment_refs`] on the same
    /// members. Returns the fresh analysis and the next snapshot.
    pub fn analyze_environment_incremental(
        &self,
        group_name: &str,
        apps: &[&AppAnalysis],
        base: &EnvironmentAnalysis,
        snapshot: &SatSnapshot,
        changed_member: usize,
    ) -> (EnvironmentAnalysis, Option<SatSnapshot>) {
        self.analyze_environment_impl(
            group_name,
            apps,
            EnvMode::Incremental { base, snapshot, changed_member },
        )
    }

    /// Shared body of the three environment entry points; see [`EnvMode`].
    fn analyze_environment_impl(
        &self,
        group_name: &str,
        apps: &[&AppAnalysis],
        mode: EnvMode<'_>,
    ) -> (EnvironmentAnalysis, Option<SatSnapshot>) {
        // An out-of-range changed member cannot be incremental; degrade to the
        // cold snapshot path rather than indexing past the member list.
        let mode = match mode {
            EnvMode::Incremental { changed_member, .. } if changed_member >= apps.len() => {
                EnvMode::Snapshot
            }
            m => m,
        };
        let started = Instant::now();
        let models: Vec<&StateModel> = apps.iter().map(|a| &a.model).collect();
        // Thread the configured worker count into the union lift (Algorithm 2's free
        // sub-product enumeration parallelizes; the result is byte-identical).
        let union_options =
            UnionOptions { threads: self.config.threads, ..UnionOptions::default() };
        let union_model = match &mode {
            EnvMode::Incremental { base, changed_member, .. }
                if base.union_model.name == group_name =>
            {
                union_models_delta(&base.union_model, &models, *changed_member, &union_options)
                    .unwrap_or_else(|| union_models(group_name, &models, &union_options))
            }
            _ => union_models(group_name, &models, &union_options),
        };
        let union_time = started.elapsed();

        let verification_started = Instant::now();
        let under_test: Vec<AppUnderTest<'_>> = apps
            .iter()
            .map(|a| AppUnderTest {
                name: a.ir.name.as_str(),
                ir: &a.ir,
                specs: &a.specs,
                summaries: &a.summaries,
            })
            .collect();
        let app_names: Vec<String> = apps.iter().map(|a| a.ir.name.clone()).collect();
        let mut violations = check_general(&under_test, &self.registry);

        // App-specific properties on the union Kripke structure.
        let ctx = DeviceContext::from_apps(&under_test);
        let all_specs: Vec<TransitionSpec> =
            apps.iter().flat_map(|a| a.specs.iter().cloned()).collect();
        // Start offset of each app's slice within `all_specs`, so kept indices can be
        // mapped back to their owning app in O(log n) instead of the former
        // O(specs²) pointer scan.
        let spec_offsets: Vec<usize> = apps
            .iter()
            .scan(0usize, |acc, a| {
                let start = *acc;
                *acc += a.specs.len();
                Some(start)
            })
            .collect();
        // The changed member's attribute partition: its own attributes' `attr:`
        // prefixes plus its `by-app:` atom. These atoms are force-marked dirty in
        // the reuse tier (anything over them recomputes); everything else is
        // pointwise-verified stable before reuse, so the partition is a work
        // hint, never a soundness input.
        let dirty_prefixes: Vec<String> = match &mode {
            EnvMode::Incremental { changed_member, .. } => {
                let changed = apps[*changed_member];
                let mut prefixes: Vec<String> = changed
                    .model
                    .attributes
                    .keys()
                    .map(|(handle, attribute)| format!("attr:{handle}.{attribute}="))
                    .collect();
                prefixes.push(format!("by-app:{}", changed.ir.name));
                prefixes
            }
            _ => Vec::new(),
        };
        // Incremental structure reuse: rebuild the union's Kripke structure from
        // the snapshot's (no-op resubmissions hand back the very same
        // allocation; single-member edits copy the unchanged members' states)
        // instead of from scratch. `projectable` reports whether the sat-set
        // projection onto the rebuilt structure can be total; when it cannot,
        // the doomed projection attempt is skipped outright (snapshot-only
        // mode), which changes no verdict — an untotal projection stays cold.
        let (prebuilt, projectable) = match &mode {
            EnvMode::Incremental { base, snapshot, changed_member } => incremental_kripke(
                &union_model,
                base,
                snapshot,
                apps[*changed_member].ir.name.as_str(),
            ),
            _ => (None, true),
        };
        let check_mode = match &mode {
            EnvMode::Batch => CheckMode::Batch,
            EnvMode::Snapshot => CheckMode::Snapshot,
            EnvMode::Incremental { snapshot, .. } if projectable => {
                CheckMode::Reuse { snapshot, dirty_prefixes: &dirty_prefixes }
            }
            EnvMode::Incremental { .. } => CheckMode::Snapshot,
        };
        // The union model uses the abstractions already baked into the per-app models;
        // an aggregate abstraction is only needed for FP re-checking, so reuse the
        // first app's (values outside any domain collapse to `other`).
        let (specific, out_snapshot) = self.check_specific_on_model(
            &union_model,
            prebuilt,
            &ctx,
            &app_names,
            &all_specs,
            check_mode,
            |kept| {
                let filtered_models: Vec<StateModel> = apps
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        let start = spec_offsets[i];
                        let end = start + a.specs.len();
                        // `kept` is ascending, so this app's share is one subrange.
                        let lo = kept.partition_point(|&k| k < start);
                        let hi = kept.partition_point(|&k| k < end);
                        let kept_specs: Vec<TransitionSpec> =
                            kept[lo..hi].iter().map(|&k| a.specs[k - start].clone()).collect();
                        build_state_model(
                            &a.ir.name,
                            &a.abstraction,
                            &kept_specs,
                            &BuildOptions::default(),
                        )
                    })
                    .collect();
                let refs: Vec<&StateModel> = filtered_models.iter().collect();
                union_models(group_name, &refs, &union_options)
            },
        );
        violations.extend(specific);
        // Individual-app violations are reported by individual analysis; keep only the
        // findings that need the environment (multiple apps involved or not present in
        // any single app's report).
        let single_app: Vec<&Violation> = apps.iter().flat_map(|a| a.violations.iter()).collect();
        violations.retain(|v| {
            v.apps.len() > 1
                || !single_app
                    .iter()
                    .any(|s| s.property == v.property && s.description == v.description)
        });
        let verification_time = verification_started.elapsed();

        (
            EnvironmentAnalysis {
                name: group_name.to_string(),
                app_names,
                union_model,
                violations,
                union_time,
                verification_time,
            },
            out_snapshot,
        )
    }

    /// Rebuilds a full [`AppAnalysis`] from a persistent-store record: re-runs
    /// the deterministic ingestion stage ([`Soteria::ingest_app`]) on the stored
    /// source — reproducing the IR, specs, abstraction, and state model exactly —
    /// and attaches the stored verdicts and original timings, skipping
    /// verification entirely. The result serializes byte-identical to the
    /// analysis the record was taken from (including timing fields, which
    /// round-trip as exact nanoseconds).
    pub fn restore_app_analysis(
        &self,
        stored: StoredAppAnalysis,
    ) -> Result<AppAnalysis, ParseError> {
        let IngestedApp {
            ir,
            specs,
            summaries,
            abstraction,
            model,
            states_before_reduction,
            extraction_time: _,
        } = self.ingest_app(&stored.name, &stored.source)?;
        Ok(AppAnalysis {
            ir,
            specs,
            summaries,
            abstraction,
            model,
            violations: stored.violations,
            states_before_reduction,
            extraction_time: stored.extraction_time,
            verification_time: stored.verification_time,
        })
    }

    /// Rebuilds a full [`EnvironmentAnalysis`] from a persistent-store record
    /// and the (already restored or resident) member analyses: the union model
    /// is a deterministic function of the member models, so it is reconstructed
    /// rather than stored, and the stored verdicts and original timings are
    /// attached — verification is skipped. Byte-identical serialization to the
    /// original, like [`Soteria::restore_app_analysis`].
    pub fn restore_environment(
        &self,
        stored: StoredEnvironmentAnalysis,
        members: &[&AppAnalysis],
    ) -> EnvironmentAnalysis {
        let models: Vec<&StateModel> = members.iter().map(|a| &a.model).collect();
        let union_options =
            UnionOptions { threads: self.config.threads, ..UnionOptions::default() };
        let union_model = union_models(&stored.name, &models, &union_options);
        EnvironmentAnalysis {
            name: stored.name,
            app_names: stored.app_names,
            union_model,
            violations: stored.violations,
            union_time: stored.union_time,
            verification_time: stored.verification_time,
        }
    }

    /// Nondeterministic state models are reported as a safety violation (Sec. 4.2).
    fn determinism_violations(&self, model: &StateModel, apps: &[String]) -> Vec<Violation> {
        model
            .nondeterminism()
            .into_iter()
            .map(|nd| {
                Violation::new(
                    PropertyId::Determinism,
                    format!(
                        "nondeterministic model: event {} from state {} may reach both {} and {}",
                        nd.event.kind,
                        model.state(nd.state).label(),
                        model.state(nd.targets.0).label(),
                        model.state(nd.targets.1).label()
                    ),
                    apps.to_vec(),
                )
            })
            .collect()
    }

    /// Checks the applicable app-specific properties on one app's model.
    fn check_app_specific(
        &self,
        model: &StateModel,
        specs: &[TransitionSpec],
        abstraction: &soteria_analysis::Abstraction,
        ctx: &DeviceContext,
        apps: &[String],
    ) -> Vec<Violation> {
        self.check_specific_on_model(model, None, ctx, apps, specs, CheckMode::Batch, |kept| {
            let kept_owned: Vec<TransitionSpec> =
                kept.iter().map(|&i| specs[i].clone()).collect();
            build_state_model(&model.name, abstraction, &kept_owned, &BuildOptions::default())
        })
        .0
    }

    /// Shared logic for checking P.1–P.30 on a model. `rebuild_without_reflection`
    /// receives the (ascending) indices into `specs` of the specs to keep and
    /// rebuilds the model from them, so that violations that disappear without the
    /// reflection over-approximation can be marked as possible false positives (the
    /// MalIoT App5 case).
    ///
    /// The applicable formulas are checked as one batch: in [`CheckMode::Batch`]
    /// via [`check_all_parallel_with`] (on larger-than-one-word state universes
    /// the ~30 properties share cached subformula satisfaction sets within a
    /// shard, and above the property threshold the shards fan out across
    /// per-thread checkers; small universes recompute — see the checker's
    /// `SMALL_UNIVERSE` note). The snapshot modes run the whole batch on one
    /// memo-sharing checker instead so its sat sets can be exported (and, in
    /// [`CheckMode::Reuse`], seeded from the previous check) — the existing
    /// parallel-identity gate makes the two schedules byte-identical. The
    /// reflection-free re-check batches the failing formulas the parallel way
    /// in every mode.
    #[allow(clippy::too_many_arguments)]
    fn check_specific_on_model(
        &self,
        model: &StateModel,
        prebuilt: Option<Arc<Kripke>>,
        ctx: &DeviceContext,
        apps: &[String],
        specs: &[TransitionSpec],
        mode: CheckMode<'_>,
        rebuild_without_reflection: impl Fn(&[usize]) -> StateModel,
    ) -> (Vec<Violation>, Option<SatSnapshot>) {
        let applicable = applicable_properties(ctx);
        if applicable.is_empty() {
            return (Vec::new(), None);
        }
        let mut ids: Vec<u8> = Vec::new();
        let mut formulas: Vec<Ctl> = Vec::new();
        for id in applicable {
            let Some(f) = formula(id, ctx) else { continue };
            if f == Ctl::True {
                continue;
            }
            ids.push(id);
            formulas.push(f);
        }
        if formulas.is_empty() {
            return (Vec::new(), None);
        }
        // `prebuilt` (the incremental paths) is byte-identical to this scratch
        // build by the delta builder's contract; it just skips re-deriving ~50k
        // states from an unchanged-but-for-one-member model.
        let kripke: Arc<Kripke> =
            prebuilt.unwrap_or_else(|| Arc::new(default_initial_kripke(model)));
        let (results, snapshot) = match mode {
            CheckMode::Batch => {
                let _s = soteria_obs::span("check.batch");
                (
                    check_all_parallel_with(
                        &kripke,
                        self.engine,
                        &formulas,
                        self.threads(),
                        self.config.property_shard_states,
                        self.config.fixpoint_shard_states,
                    ),
                    None,
                )
            }
            CheckMode::Snapshot => {
                let _s = soteria_obs::span("check.cold");
                let checker = ModelChecker::with_sharding(
                    &kripke,
                    self.engine,
                    self.config.threads,
                    self.config.fixpoint_shard_states,
                );
                let results = checker.check_all(&formulas);
                let exported = checker.snapshot_with(kripke.clone());
                (results, Some(exported))
            }
            CheckMode::Reuse { snapshot, dirty_prefixes } => {
                let _s = soteria_obs::span("check.reuse");
                let checker = ModelChecker::with_sharding(
                    &kripke,
                    self.engine,
                    self.config.threads,
                    self.config.fixpoint_shard_states,
                )
                .reuse_from(snapshot, dirty_prefixes);
                let results = checker.check_all(&formulas);
                let exported = checker.snapshot_with(kripke.clone());
                (results, Some(exported))
            }
        };

        let failing: Vec<usize> =
            (0..results.len()).filter(|&i| !results[i].holds).collect();
        if failing.is_empty() {
            return (Vec::new(), snapshot);
        }
        // Re-check the failures on the reflection-free model (built once) to flag
        // possible false positives.
        let holds_without_reflection: Vec<bool> = if specs.iter().any(|s| s.via_reflection) {
            let kept: Vec<usize> =
                (0..specs.len()).filter(|&i| !specs[i].via_reflection).collect();
            let m = rebuild_without_reflection(&kept);
            let k = default_initial_kripke(&m);
            let failing_formulas: Vec<Ctl> =
                failing.iter().map(|&i| formulas[i].clone()).collect();
            check_all_parallel_with(
                &k,
                self.engine,
                &failing_formulas,
                self.threads(),
                self.config.property_shard_states,
                self.config.fixpoint_shard_states,
            )
            .iter()
            .map(|r| r.holds)
            .collect()
        } else {
            vec![false; failing.len()]
        };

        let mut violations = Vec::new();
        for (&i, &fp) in failing.iter().zip(&holds_without_reflection) {
            let id = ids[i];
            let info = property_info(PropertyId::AppSpecific(id));
            let mut violation = Violation::new(
                PropertyId::AppSpecific(id),
                info.map(|i| i.description.to_string()).unwrap_or_else(|| format!("property P.{id}")),
                apps.to_vec(),
            );
            if let Some(trace) = &results[i].counterexample {
                violation = violation.with_counterexample(trace.clone());
            }
            if fp {
                violation = violation.as_possible_false_positive();
            }
            violations.push(violation);
        }
        (violations, snapshot)
    }
}

/// Builds the Kripke structure of a model and restricts its initial states to the
/// model's default configuration, so that `AG` properties quantify over the states the
/// app can actually drive the environment into.
pub fn default_initial_kripke(model: &StateModel) -> Kripke {
    let mut kripke = Kripke::from_state_model(model);
    // Quiescent Kripke states are created first, one per model state, in order — so
    // the Kripke id of the default state equals the model's initial state id.
    kripke.initial = vec![model.initial];
    kripke
}

/// Rebuilds the union's Kripke structure from the snapshot's for the
/// incremental path, returning `(prebuilt structure, sat-set projection can be
/// total)`. Three outcomes, in order:
///
/// * the rebuilt union equals the base's (a no-op resubmission): the
///   snapshot's own allocation is handed back, so the checker's reuse tier
///   resolves on pointer equality;
/// * the union differs in one member's block: [`Kripke::from_state_model_delta`]
///   copies every unchanged member's states (byte-identical to a scratch
///   build); projection is only worth attempting if the changed member's event
///   states all existed before;
/// * the delta preconditions fail: `None`, and the caller builds from scratch
///   exactly as the cold path does.
fn incremental_kripke(
    union_model: &StateModel,
    base: &EnvironmentAnalysis,
    snapshot: &SatSnapshot,
    changed_app: &str,
) -> (Option<Arc<Kripke>>, bool) {
    let base_kripke = snapshot.kripke();
    if base_kripke.initial.as_slice() == [union_model.initial]
        && union_model.name == base.union_model.name
        && union_model.initial == base.union_model.initial
        && union_model.attributes == base.union_model.attributes
        && transitions_equal(&union_model.transitions, &base.union_model.transitions)
    {
        return (Some(base_kripke.clone()), true);
    }
    match Kripke::from_state_model_delta(base_kripke, union_model, changed_app) {
        Some((mut kripke, all_in_base)) => {
            kripke.initial = vec![union_model.initial];
            (Some(Arc::new(kripke)), all_in_base)
        }
        None => (None, true),
    }
}

/// Value equality of two transition lists, short-cutting on shared labels: the
/// delta union splices unchanged members' transitions by `Arc` handle, so for a
/// no-op resubmission all but one member's block compares by pointer.
fn transitions_equal(a: &[Transition], b: &[Transition]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.from == y.from
                && x.to == y.to
                && (Arc::ptr_eq(&x.label, &y.label) || x.label == y.label)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const WATER_LEAK: &str = r#"
        definition(name: "Water-Leak-Detector", category: "Safety & Security")
        preferences {
            section("When there's water detected...") {
                input "water_sensor", "capability.waterSensor", title: "Where?"
                input "valve_device", "capability.valve", title: "Valve device"
            }
        }
        def installed() {
            subscribe(water_sensor, "water.wet", waterWetHandler)
        }
        def waterWetHandler(evt) {
            valve_device.close()
        }
    "#;

    const BROKEN_LEAK: &str = r#"
        definition(name: "Broken-Leak-Detector", category: "Safety & Security")
        preferences {
            section("d") {
                input "water_sensor", "capability.waterSensor"
                input "valve_device", "capability.valve"
            }
        }
        def installed() {
            subscribe(water_sensor, "water.wet", h)
        }
        def h(evt) {
            valve_device.open()
        }
    "#;

    #[test]
    fn correct_water_leak_detector_has_no_violations() {
        let soteria = Soteria::new();
        let analysis = soteria.analyze_app("wld", WATER_LEAK).unwrap();
        assert_eq!(analysis.ir.name, "Water-Leak-Detector");
        assert_eq!(analysis.model.state_count(), 4);
        assert!(analysis.violations.is_empty(), "violations: {:?}", analysis.violations);
    }

    #[test]
    fn broken_water_leak_detector_violates_p30() {
        let soteria = Soteria::new();
        let analysis = soteria.analyze_app("broken", BROKEN_LEAK).unwrap();
        let p30: Vec<&Violation> = analysis
            .violations
            .iter()
            .filter(|v| v.property == PropertyId::AppSpecific(30))
            .collect();
        assert_eq!(p30.len(), 1);
        let trace = p30[0].counterexample.as_ref().unwrap();
        assert!(trace.last().unwrap().contains("water.wet"), "trace: {trace:?}");
    }

    #[test]
    fn environment_of_conflicting_apps_reports_cross_app_violation() {
        let smoke_on = r#"
            definition(name: "Smoke-Light-On")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "smoke", "capability.smokeDetector"
            } }
            def installed() { subscribe(smoke, "smoke.detected", h) }
            def h(evt) { sw.on() }
        "#;
        let smoke_off = r#"
            definition(name: "Smoke-Light-Off")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "smoke", "capability.smokeDetector"
            } }
            def installed() { subscribe(smoke, "smoke.detected", h) }
            def h(evt) { sw.off() }
        "#;
        let soteria = Soteria::new();
        let a = soteria.analyze_app("a", smoke_on).unwrap();
        let b = soteria.analyze_app("b", smoke_off).unwrap();
        assert!(a.violations.is_empty());
        assert!(b.violations.is_empty());
        let env = soteria.analyze_environment("G", &[a, b]);
        assert!(env
            .violations
            .iter()
            .any(|v| v.property == PropertyId::General(1) && v.apps.len() == 2));
        assert!(env.union_model.state_count() >= 2);
    }

    #[test]
    fn batch_analysis_matches_individual_calls_at_any_thread_count() {
        let apps = [("wld", WATER_LEAK), ("broken", BROKEN_LEAK)];
        let sequential = Soteria::with_config(AnalysisConfig { threads: 1, ..AnalysisConfig::paper() });
        let expected: Vec<Vec<Violation>> = apps
            .iter()
            .map(|(n, s)| sequential.analyze_app(n, s).unwrap().violations)
            .collect();
        for threads in [1, 4] {
            let soteria =
                Soteria::with_config(AnalysisConfig { threads, ..AnalysisConfig::paper() });
            let batch = soteria.analyze_apps(&apps);
            assert_eq!(batch.len(), 2);
            for (analysis, want) in batch.iter().zip(&expected) {
                assert_eq!(&analysis.as_ref().unwrap().violations, want, "threads = {threads}");
            }
        }
    }

    #[test]
    fn batch_environments_match_individual_calls() {
        let soteria = Soteria::new();
        let a = soteria.analyze_app("wld", WATER_LEAK).unwrap();
        let b = soteria.analyze_app("broken", BROKEN_LEAK).unwrap();
        let g1 = [a.clone()];
        let g2 = [a.clone(), b.clone()];
        let groups: Vec<(&str, &[AppAnalysis])> = vec![("G1", &g1), ("G2", &g2)];
        let batch = soteria.analyze_environments(&groups);
        let individual =
            [soteria.analyze_environment("G1", &g1), soteria.analyze_environment("G2", &g2)];
        assert_eq!(batch.len(), 2);
        for (got, want) in batch.iter().zip(&individual) {
            assert_eq!(got.name, want.name);
            assert_eq!(got.violations, want.violations);
            assert_eq!(got.union_model.transitions, want.union_model.transitions);
        }
    }

    #[test]
    fn incremental_environment_is_byte_identical_to_batch() {
        // The same app name and devices as BROKEN_LEAK, with the handler fixed
        // (close instead of open) — a same-domain single-member edit.
        let fixed_leak = r#"
            definition(name: "Broken-Leak-Detector", category: "Safety & Security")
            preferences { section("d") {
                input "water_sensor", "capability.waterSensor"
                input "valve_device", "capability.valve"
            } }
            def installed() { subscribe(water_sensor, "water.wet", h) }
            def h(evt) { valve_device.close() }
        "#;
        let soteria = Soteria::new();
        let a = soteria.analyze_app("wld", WATER_LEAK).unwrap();
        let b = soteria.analyze_app("broken", BROKEN_LEAK).unwrap();
        let refs = [&a, &b];
        let (cold, snapshot) = soteria.analyze_environment_with_snapshot("G", &refs);
        let batch = soteria.analyze_environment_refs("G", &refs);
        assert_eq!(cold.violations, batch.violations);
        assert_eq!(cold.union_model.transitions, batch.union_model.transitions);
        let snapshot = snapshot.expect("a checkable group exports a snapshot");

        // Edit member 1, re-verify incrementally, and compare to a full rebuild.
        let edited = soteria.analyze_app("broken", fixed_leak).unwrap();
        let new_refs = [&a, &edited];
        let (incremental, next_snapshot) =
            soteria.analyze_environment_incremental("G", &new_refs, &cold, &snapshot, 1);
        let scratch = soteria.analyze_environment_refs("G", &new_refs);
        assert_eq!(incremental.violations, scratch.violations);
        assert_eq!(incremental.app_names, scratch.app_names);
        assert_eq!(
            incremental.union_model.transitions,
            scratch.union_model.transitions
        );
        assert!(next_snapshot.is_some());

        // A no-op "edit" (identical members) exercises the identical-structure
        // reuse tier and must also reproduce the batch result.
        let (warm, _) = soteria.analyze_environment_incremental("G", &refs, &cold, &snapshot, 1);
        assert_eq!(warm.violations, batch.violations);
        assert_eq!(warm.union_model.transitions, batch.union_model.transitions);
    }

    #[test]
    fn parse_errors_surface_per_app_in_the_batch() {
        let soteria = Soteria::new();
        let results = soteria.analyze_apps(&[("ok", WATER_LEAK), ("bad", "definition(")]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn timing_fields_are_populated() {
        let soteria = Soteria::new();
        let analysis = soteria.analyze_app("wld", WATER_LEAK).unwrap();
        // Durations are non-negative by construction; just confirm they were measured.
        assert!(analysis.extraction_time.as_nanos() > 0);
        assert!(analysis.states_before_reduction >= analysis.model.state_count());
    }
}
