//! Analysis results and textual reports (the console output of Fig. 9).

use soteria_analysis::{Abstraction, HandlerSummary, TransitionSpec};
use soteria_ir::AppIr;
use soteria_model::StateModel;
use soteria_properties::{PropertyId, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// The result of analysing one app.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    /// The app's intermediate representation.
    pub ir: AppIr,
    /// Transition specifications from the symbolic executor.
    pub specs: Vec<TransitionSpec>,
    /// Per-handler path summaries.
    pub summaries: BTreeMap<String, HandlerSummary>,
    /// Property abstraction of the app's attribute domains.
    pub abstraction: Abstraction,
    /// The extracted state model.
    pub model: StateModel,
    /// All property violations found.
    pub violations: Vec<Violation>,
    /// Number of states before property abstraction (Fig. 11 top).
    pub states_before_reduction: usize,
    /// Time spent extracting the IR and the state model (Fig. 11 bottom).
    pub extraction_time: Duration,
    /// Time spent verifying properties.
    pub verification_time: Duration,
}

impl AppAnalysis {
    /// Violations of general properties (S.1–S.5).
    pub fn general_violations(&self) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| matches!(v.property, PropertyId::General(_)))
            .collect()
    }

    /// Violations of app-specific properties (P.1–P.30).
    pub fn specific_violations(&self) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| matches!(v.property, PropertyId::AppSpecific(_)))
            .collect()
    }

    /// The distinct properties violated, in catalogue order.
    pub fn violated_properties(&self) -> Vec<PropertyId> {
        let mut ids: Vec<PropertyId> = self.violations.iter().map(|v| v.property).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// True if the analysis found at least one violation that is not marked as a
    /// possible false positive.
    pub fn has_confirmed_violation(&self) -> bool {
        self.violations.iter().any(|v| !v.possibly_false_positive)
    }
}

/// The result of analysing a multi-app environment.
#[derive(Debug, Clone)]
pub struct EnvironmentAnalysis {
    /// Group name.
    pub name: String,
    /// The names of the member apps.
    pub app_names: Vec<String>,
    /// The union state model (Algorithm 2).
    pub union_model: StateModel,
    /// Violations that require the combined behaviour (not already reported by any
    /// single member app).
    pub violations: Vec<Violation>,
    /// Time spent building the union model.
    pub union_time: Duration,
    /// Time spent verifying properties on the union.
    pub verification_time: Duration,
}

impl EnvironmentAnalysis {
    /// The distinct properties violated by the environment.
    pub fn violated_properties(&self) -> Vec<PropertyId> {
        let mut ids: Vec<PropertyId> = self.violations.iter().map(|v| v.property).collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

/// Renders a human-readable report for one app, mirroring the console output of
/// Fig. 9: the IR, the state-model summary, and one verdict per checked property.
pub fn render_report(analysis: &AppAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Soteria analysis: {} ===", analysis.ir.name);
    let _ = writeln!(
        out,
        "devices: {}   user inputs: {}   entry points: {}",
        analysis.ir.permissions.len(),
        analysis.ir.user_inputs.len(),
        analysis.ir.entry_points().len()
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "--- Intermediate representation ---");
    let _ = out.write_str(&soteria_ir::render_ir(&analysis.ir));
    let _ = writeln!(out, "--- State model ---");
    let _ = writeln!(
        out,
        "states: {} (before reduction: {})   transitions: {}   attributes: {}",
        analysis.model.state_count(),
        analysis.states_before_reduction,
        analysis.model.transition_count(),
        analysis.model.attribute_count()
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "--- Property verification ---");
    if analysis.violations.is_empty() {
        let _ = writeln!(out, "all checked properties hold");
    }
    for violation in &analysis.violations {
        let _ = writeln!(out, "VIOLATION {violation}");
        if let Some(trace) = &violation.counterexample {
            let _ = writeln!(out, "  counter-example: {}", trace.join(" -> "));
        }
    }
    let _ = writeln!(
        out,
        "extraction: {:.1} ms   verification: {:.1} ms",
        analysis.extraction_time.as_secs_f64() * 1000.0,
        analysis.verification_time.as_secs_f64() * 1000.0
    );
    out
}

/// Renders a report for a multi-app environment.
pub fn render_environment_report(env: &EnvironmentAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Soteria environment analysis: {} ===", env.name);
    let _ = writeln!(out, "apps: {}", env.app_names.join(", "));
    let _ = writeln!(
        out,
        "union model: {} states, {} transitions, {} attributes",
        env.union_model.state_count(),
        env.union_model.transition_count(),
        env.union_model.attribute_count()
    );
    if env.violations.is_empty() {
        let _ = writeln!(out, "no additional violations in the combined environment");
    }
    for violation in &env.violations {
        let _ = writeln!(out, "VIOLATION {violation}");
        if let Some(trace) = &violation.counterexample {
            let _ = writeln!(out, "  counter-example: {}", trace.join(" -> "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Soteria;

    const APP: &str = r#"
        definition(name: "Report-App")
        preferences { section("d") {
            input "water_sensor", "capability.waterSensor"
            input "valve_device", "capability.valve"
        } }
        def installed() { subscribe(water_sensor, "water.wet", h) }
        def h(evt) { valve_device.open() }
    "#;

    #[test]
    fn report_contains_all_sections() {
        let analysis = Soteria::new().analyze_app("r", APP).unwrap();
        let report = render_report(&analysis);
        assert!(report.contains("=== Soteria analysis: Report-App ==="));
        assert!(report.contains("--- Intermediate representation ---"));
        assert!(report.contains("--- State model ---"));
        assert!(report.contains("--- Property verification ---"));
        assert!(report.contains("VIOLATION P.30"));
        assert!(report.contains("counter-example:"));
    }

    #[test]
    fn analysis_accessors() {
        let analysis = Soteria::new().analyze_app("r", APP).unwrap();
        assert!(analysis.has_confirmed_violation());
        assert!(!analysis.specific_violations().is_empty());
        assert!(analysis.general_violations().is_empty());
        assert_eq!(analysis.violated_properties(), vec![PropertyId::AppSpecific(30)]);
    }

    #[test]
    fn environment_report_lists_apps() {
        let soteria = Soteria::new();
        let a = soteria.analyze_app("r", APP).unwrap();
        let env = soteria.analyze_environment("solo-group", std::slice::from_ref(&a));
        let report = render_environment_report(&env);
        assert!(report.contains("solo-group"));
        assert!(report.contains("Report-App"));
        assert!(env.violated_properties().len() <= a.violated_properties().len());
    }
}
