//! Analysis results and reports: the textual console output of Fig. 9 plus
//! machine-readable JSON serializations (used by `soteria-serve` responses and
//! the bench bins).

use crate::json::JsonValue;
use soteria_analysis::{Abstraction, HandlerSummary, TransitionSpec};
use soteria_ir::AppIr;
use soteria_model::StateModel;
use soteria_properties::{PropertyId, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// The output of the *ingestion* stage of the pipeline ([`Soteria::ingest_app`]):
/// everything up to the state model, before any property has been verified.
///
/// The service pipelines this stage against verification — while one worker
/// verifies app *N*, another can already be parsing and model-building app
/// *N + 1*.
///
/// [`Soteria::ingest_app`]: crate::Soteria::ingest_app
#[derive(Debug, Clone)]
pub struct IngestedApp {
    /// The app's intermediate representation.
    pub ir: AppIr,
    /// Transition specifications from the symbolic executor.
    pub specs: Vec<TransitionSpec>,
    /// Per-handler path summaries.
    pub summaries: BTreeMap<String, HandlerSummary>,
    /// Property abstraction of the app's attribute domains.
    pub abstraction: Abstraction,
    /// The extracted state model.
    pub model: StateModel,
    /// Number of states before property abstraction (Fig. 11 top).
    pub states_before_reduction: usize,
    /// Time spent extracting the IR and the state model (Fig. 11 bottom).
    pub extraction_time: Duration,
}

/// The result of analysing one app.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    /// The app's intermediate representation.
    pub ir: AppIr,
    /// Transition specifications from the symbolic executor.
    pub specs: Vec<TransitionSpec>,
    /// Per-handler path summaries.
    pub summaries: BTreeMap<String, HandlerSummary>,
    /// Property abstraction of the app's attribute domains.
    pub abstraction: Abstraction,
    /// The extracted state model.
    pub model: StateModel,
    /// All property violations found.
    pub violations: Vec<Violation>,
    /// Number of states before property abstraction (Fig. 11 top).
    pub states_before_reduction: usize,
    /// Time spent extracting the IR and the state model (Fig. 11 bottom).
    pub extraction_time: Duration,
    /// Time spent verifying properties.
    pub verification_time: Duration,
}

impl AppAnalysis {
    /// Violations of general properties (S.1–S.5).
    pub fn general_violations(&self) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| matches!(v.property, PropertyId::General(_)))
            .collect()
    }

    /// Violations of app-specific properties (P.1–P.30).
    pub fn specific_violations(&self) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| matches!(v.property, PropertyId::AppSpecific(_)))
            .collect()
    }

    /// The distinct properties violated, in catalogue order.
    pub fn violated_properties(&self) -> Vec<PropertyId> {
        let mut ids: Vec<PropertyId> = self.violations.iter().map(|v| v.property).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// True if the analysis found at least one violation that is not marked as a
    /// possible false positive.
    pub fn has_confirmed_violation(&self) -> bool {
        self.violations.iter().any(|v| !v.possibly_false_positive)
    }
}

/// The result of analysing a multi-app environment.
#[derive(Debug, Clone)]
pub struct EnvironmentAnalysis {
    /// Group name.
    pub name: String,
    /// The names of the member apps.
    pub app_names: Vec<String>,
    /// The union state model (Algorithm 2).
    pub union_model: StateModel,
    /// Violations that require the combined behaviour (not already reported by any
    /// single member app).
    pub violations: Vec<Violation>,
    /// Time spent building the union model.
    pub union_time: Duration,
    /// Time spent verifying properties on the union.
    pub verification_time: Duration,
}

impl EnvironmentAnalysis {
    /// The distinct properties violated by the environment.
    pub fn violated_properties(&self) -> Vec<PropertyId> {
        let mut ids: Vec<PropertyId> = self.violations.iter().map(|v| v.property).collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

/// Renders a human-readable report for one app, mirroring the console output of
/// Fig. 9: the IR, the state-model summary, and one verdict per checked property.
pub fn render_report(analysis: &AppAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Soteria analysis: {} ===", analysis.ir.name);
    let _ = writeln!(
        out,
        "devices: {}   user inputs: {}   entry points: {}",
        analysis.ir.permissions.len(),
        analysis.ir.user_inputs.len(),
        analysis.ir.entry_points().len()
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "--- Intermediate representation ---");
    let _ = out.write_str(&soteria_ir::render_ir(&analysis.ir));
    let _ = writeln!(out, "--- State model ---");
    let _ = writeln!(
        out,
        "states: {} (before reduction: {})   transitions: {}   attributes: {}",
        analysis.model.state_count(),
        analysis.states_before_reduction,
        analysis.model.transition_count(),
        analysis.model.attribute_count()
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "--- Property verification ---");
    if analysis.violations.is_empty() {
        let _ = writeln!(out, "all checked properties hold");
    }
    for violation in &analysis.violations {
        let _ = writeln!(out, "VIOLATION {violation}");
        if let Some(trace) = &violation.counterexample {
            let _ = writeln!(out, "  counter-example: {}", trace.join(" -> "));
        }
    }
    let _ = writeln!(
        out,
        "extraction: {:.1} ms   verification: {:.1} ms",
        analysis.extraction_time.as_secs_f64() * 1000.0,
        analysis.verification_time.as_secs_f64() * 1000.0
    );
    out
}

/// Serializes one violation as a JSON object.
pub fn violation_json(violation: &Violation) -> JsonValue {
    JsonValue::object([
        ("property", JsonValue::string(violation.property.to_string())),
        ("description", JsonValue::string(&violation.description)),
        (
            "apps",
            JsonValue::Array(violation.apps.iter().map(JsonValue::string).collect()),
        ),
        (
            "counterexample",
            match &violation.counterexample {
                Some(trace) => {
                    JsonValue::Array(trace.iter().map(JsonValue::string).collect())
                }
                None => JsonValue::Null,
            },
        ),
        ("possibly_false_positive", JsonValue::Bool(violation.possibly_false_positive)),
    ])
}

/// Serializes an app analysis as a JSON object — the machine-readable twin of
/// [`render_report`].
///
/// Everything except the two measured timing fields (`extraction_ms`,
/// `verification_ms`) is a pure function of `(source, configuration)`, so two
/// analyses of the same input serialize byte-identically once those fields are
/// stripped ([`JsonValue::without`]); a *cached* resubmission returns the frozen
/// original and is byte-identical including them.
pub fn app_analysis_json(analysis: &AppAnalysis) -> JsonValue {
    JsonValue::object([
        ("name", JsonValue::string(&analysis.ir.name)),
        ("devices", JsonValue::uint(analysis.ir.permissions.len())),
        ("user_inputs", JsonValue::uint(analysis.ir.user_inputs.len())),
        ("entry_points", JsonValue::uint(analysis.ir.entry_points().len())),
        ("states", JsonValue::uint(analysis.model.state_count())),
        ("states_before_reduction", JsonValue::uint(analysis.states_before_reduction)),
        ("transitions", JsonValue::uint(analysis.model.transition_count())),
        ("attributes", JsonValue::uint(analysis.model.attribute_count())),
        (
            "violations",
            JsonValue::Array(analysis.violations.iter().map(violation_json).collect()),
        ),
        (
            "extraction_ms",
            JsonValue::Number(analysis.extraction_time.as_secs_f64() * 1000.0),
        ),
        (
            "verification_ms",
            JsonValue::Number(analysis.verification_time.as_secs_f64() * 1000.0),
        ),
    ])
}

/// Serializes an environment analysis as a JSON object — the machine-readable
/// twin of [`render_environment_report`]. Measured timings live in `union_ms` /
/// `verification_ms`; everything else is input-determined.
pub fn environment_json(env: &EnvironmentAnalysis) -> JsonValue {
    JsonValue::object([
        ("name", JsonValue::string(&env.name)),
        (
            "apps",
            JsonValue::Array(env.app_names.iter().map(JsonValue::string).collect()),
        ),
        ("states", JsonValue::uint(env.union_model.state_count())),
        ("transitions", JsonValue::uint(env.union_model.transition_count())),
        ("attributes", JsonValue::uint(env.union_model.attribute_count())),
        (
            "violations",
            JsonValue::Array(env.violations.iter().map(violation_json).collect()),
        ),
        ("union_ms", JsonValue::Number(env.union_time.as_secs_f64() * 1000.0)),
        (
            "verification_ms",
            JsonValue::Number(env.verification_time.as_secs_f64() * 1000.0),
        ),
    ])
}

/// Deserializes one violation from its [`violation_json`] object. `None` on any
/// structural mismatch — the persistent store treats that as a corrupt entry,
/// never as a partially-decoded result.
pub fn violation_from_json(value: &JsonValue) -> Option<Violation> {
    let property = property_from_str(value.get("property")?.as_str()?)?;
    let description = value.get("description")?.as_str()?.to_string();
    let apps = string_array(value.get("apps")?)?;
    let counterexample = match value.get("counterexample")? {
        JsonValue::Null => None,
        trace => Some(string_array(trace)?),
    };
    let possibly_false_positive = value.get("possibly_false_positive")?.as_bool()?;
    Some(Violation { property, description, apps, counterexample, possibly_false_positive })
}

/// Parses the [`PropertyId`] display form (`S.n`, `P.n`, `DET`).
fn property_from_str(s: &str) -> Option<PropertyId> {
    if s == "DET" {
        return Some(PropertyId::Determinism);
    }
    let number = |rest: &str| rest.parse::<u8>().ok();
    if let Some(rest) = s.strip_prefix("S.") {
        return number(rest).map(PropertyId::General);
    }
    if let Some(rest) = s.strip_prefix("P.") {
        return number(rest).map(PropertyId::AppSpecific);
    }
    None
}

fn string_array(value: &JsonValue) -> Option<Vec<String>> {
    value
        .as_array()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect()
}

/// The input-side record of one app analysis, as the persistent store keeps it:
/// the *submitted* name and source (everything [`Soteria::ingest_app`] needs to
/// deterministically rebuild the IR, model, and abstraction) plus the verified
/// verdicts and the original measured timings in exact nanoseconds.
///
/// [`Soteria::ingest_app`]: crate::Soteria::ingest_app
#[derive(Debug, Clone, PartialEq)]
pub struct StoredAppAnalysis {
    /// The name the app was submitted under (the cache-key name — not
    /// necessarily `ir.name`, which the definition block may override).
    pub name: String,
    /// The full source text.
    pub source: String,
    /// All property violations found by the original verification.
    pub violations: Vec<Violation>,
    /// The original extraction time.
    pub extraction_time: Duration,
    /// The original verification time.
    pub verification_time: Duration,
}

/// The persistent-store record of one environment analysis: group name, member
/// names, verdicts, and original timings. The union model is *not* stored — it
/// is a deterministic function of the member models, which the restore path
/// rebuilds.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEnvironmentAnalysis {
    /// Group name.
    pub name: String,
    /// The member app names (`ir.name`s), in submission order.
    pub app_names: Vec<String>,
    /// Violations found by the original combined verification.
    pub violations: Vec<Violation>,
    /// The original union-construction time.
    pub union_time: Duration,
    /// The original verification time.
    pub verification_time: Duration,
}

/// Durations persist as exact integer nanoseconds: `u64` nanoseconds round-trip
/// exactly through an f64 JSON number (all realistic values are far below
/// 2^53), so a restored report renders timing fields byte-identical to the
/// original's.
fn duration_json(d: Duration) -> JsonValue {
    JsonValue::uint(d.as_nanos() as usize)
}

fn duration_from_json(value: &JsonValue) -> Option<Duration> {
    value.as_u64().map(Duration::from_nanos)
}

/// Serializes an app analysis as a persistent-store payload. Inverse:
/// [`app_from_store_json`].
pub fn app_store_json(name: &str, source: &str, analysis: &AppAnalysis) -> JsonValue {
    JsonValue::object([
        ("kind", JsonValue::string("app")),
        ("name", JsonValue::string(name)),
        ("source", JsonValue::string(source)),
        (
            "violations",
            JsonValue::Array(analysis.violations.iter().map(violation_json).collect()),
        ),
        ("extraction_ns", duration_json(analysis.extraction_time)),
        ("verification_ns", duration_json(analysis.verification_time)),
    ])
}

/// Deserializes a persistent-store app payload. `None` on any mismatch.
pub fn app_from_store_json(value: &JsonValue) -> Option<StoredAppAnalysis> {
    if value.get("kind")?.as_str()? != "app" {
        return None;
    }
    Some(StoredAppAnalysis {
        name: value.get("name")?.as_str()?.to_string(),
        source: value.get("source")?.as_str()?.to_string(),
        violations: value
            .get("violations")?
            .as_array()?
            .iter()
            .map(violation_from_json)
            .collect::<Option<Vec<_>>>()?,
        extraction_time: duration_from_json(value.get("extraction_ns")?)?,
        verification_time: duration_from_json(value.get("verification_ns")?)?,
    })
}

/// Serializes an environment analysis as a persistent-store payload. Inverse:
/// [`env_from_store_json`].
pub fn env_store_json(env: &EnvironmentAnalysis) -> JsonValue {
    JsonValue::object([
        ("kind", JsonValue::string("env")),
        ("name", JsonValue::string(&env.name)),
        (
            "app_names",
            JsonValue::Array(env.app_names.iter().map(JsonValue::string).collect()),
        ),
        (
            "violations",
            JsonValue::Array(env.violations.iter().map(violation_json).collect()),
        ),
        ("union_ns", duration_json(env.union_time)),
        ("verification_ns", duration_json(env.verification_time)),
    ])
}

/// Deserializes a persistent-store environment payload. `None` on any mismatch.
pub fn env_from_store_json(value: &JsonValue) -> Option<StoredEnvironmentAnalysis> {
    if value.get("kind")?.as_str()? != "env" {
        return None;
    }
    Some(StoredEnvironmentAnalysis {
        name: value.get("name")?.as_str()?.to_string(),
        app_names: string_array(value.get("app_names")?)?,
        violations: value
            .get("violations")?
            .as_array()?
            .iter()
            .map(violation_from_json)
            .collect::<Option<Vec<_>>>()?,
        union_time: duration_from_json(value.get("union_ns")?)?,
        verification_time: duration_from_json(value.get("verification_ns")?)?,
    })
}

/// Renders a report for a multi-app environment.
pub fn render_environment_report(env: &EnvironmentAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Soteria environment analysis: {} ===", env.name);
    let _ = writeln!(out, "apps: {}", env.app_names.join(", "));
    let _ = writeln!(
        out,
        "union model: {} states, {} transitions, {} attributes",
        env.union_model.state_count(),
        env.union_model.transition_count(),
        env.union_model.attribute_count()
    );
    if env.violations.is_empty() {
        let _ = writeln!(out, "no additional violations in the combined environment");
    }
    for violation in &env.violations {
        let _ = writeln!(out, "VIOLATION {violation}");
        if let Some(trace) = &violation.counterexample {
            let _ = writeln!(out, "  counter-example: {}", trace.join(" -> "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Soteria;

    const APP: &str = r#"
        definition(name: "Report-App")
        preferences { section("d") {
            input "water_sensor", "capability.waterSensor"
            input "valve_device", "capability.valve"
        } }
        def installed() { subscribe(water_sensor, "water.wet", h) }
        def h(evt) { valve_device.open() }
    "#;

    #[test]
    fn report_contains_all_sections() {
        let analysis = Soteria::new().analyze_app("r", APP).unwrap();
        let report = render_report(&analysis);
        assert!(report.contains("=== Soteria analysis: Report-App ==="));
        assert!(report.contains("--- Intermediate representation ---"));
        assert!(report.contains("--- State model ---"));
        assert!(report.contains("--- Property verification ---"));
        assert!(report.contains("VIOLATION P.30"));
        assert!(report.contains("counter-example:"));
    }

    #[test]
    fn analysis_accessors() {
        let analysis = Soteria::new().analyze_app("r", APP).unwrap();
        assert!(analysis.has_confirmed_violation());
        assert!(!analysis.specific_violations().is_empty());
        assert!(analysis.general_violations().is_empty());
        assert_eq!(analysis.violated_properties(), vec![PropertyId::AppSpecific(30)]);
    }

    #[test]
    fn json_reports_round_trip_and_freeze_deterministically() {
        let soteria = Soteria::new();
        let analysis = soteria.analyze_app("r", APP).unwrap();
        let env = soteria.analyze_environment("G", std::slice::from_ref(&analysis));

        // Round trip: render → parse reproduces the value, and the re-render is
        // byte-identical.
        for value in [app_analysis_json(&analysis), environment_json(&env)] {
            let rendered = value.render();
            let parsed = JsonValue::parse(&rendered).expect("serializer output parses");
            assert_eq!(parsed, value);
            assert_eq!(parsed.render(), rendered);
        }

        // Everything but the measured timings is input-determined: a second
        // analysis of the same source serializes byte-identically once they are
        // stripped.
        let again = soteria.analyze_app("r", APP).unwrap();
        let stable = |a: &AppAnalysis| {
            app_analysis_json(a).without("extraction_ms").without("verification_ms").render()
        };
        assert_eq!(stable(&analysis), stable(&again));

        // Spot-check content.
        let value = app_analysis_json(&analysis);
        assert_eq!(value.get("name").and_then(|v| v.as_str()), Some("Report-App"));
        let violations = value.get("violations").and_then(|v| v.as_array()).unwrap();
        assert_eq!(violations.len(), analysis.violations.len());
        assert_eq!(
            violations[0].get("property").and_then(|v| v.as_str()),
            Some("P.30")
        );
    }

    #[test]
    fn store_records_restore_byte_identically() {
        let soteria = Soteria::new();
        let analysis = soteria.analyze_app("r", APP).unwrap();

        // App: encode → render → parse → decode → restore reproduces the exact
        // report, *including* the measured timing fields (persisted as exact
        // nanoseconds).
        let rendered = app_store_json("r", APP, &analysis).render();
        let stored = app_from_store_json(&JsonValue::parse(&rendered).unwrap())
            .expect("app store payload decodes");
        assert_eq!(stored.name, "r");
        assert_eq!(stored.extraction_time, analysis.extraction_time);
        let restored = soteria.restore_app_analysis(stored).unwrap();
        assert_eq!(
            app_analysis_json(&restored).render(),
            app_analysis_json(&analysis).render()
        );

        // Environment: union model rebuilt from members, verdicts and timings
        // from the record.
        let env = soteria.analyze_environment("G", std::slice::from_ref(&analysis));
        let env_rendered = env_store_json(&env).render();
        let stored_env = env_from_store_json(&JsonValue::parse(&env_rendered).unwrap())
            .expect("env store payload decodes");
        let restored_env = soteria.restore_environment(stored_env, &[&restored]);
        assert_eq!(
            environment_json(&restored_env).render(),
            environment_json(&env).render()
        );

        // Structural damage decodes to None, never to a partial record.
        assert!(app_from_store_json(&JsonValue::Null).is_none());
        assert!(app_from_store_json(&JsonValue::parse(&env_rendered).unwrap()).is_none());
        let wrong_type = JsonValue::parse(&rendered).unwrap().without("source");
        assert!(app_from_store_json(&wrong_type).is_none());
        assert!(env_from_store_json(&JsonValue::parse(&rendered).unwrap()).is_none());
    }

    #[test]
    fn environment_report_lists_apps() {
        let soteria = Soteria::new();
        let a = soteria.analyze_app("r", APP).unwrap();
        let env = soteria.analyze_environment("solo-group", std::slice::from_ref(&a));
        let report = render_environment_report(&env);
        assert!(report.contains("solo-group"));
        assert!(report.contains("Report-App"));
        assert!(env.violated_properties().len() <= a.violated_properties().len());
    }
}
