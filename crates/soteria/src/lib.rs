//! Soteria: automated IoT safety and security analysis.
//!
//! A from-scratch Rust reproduction of *Soteria* (Celik, McDaniel, Tan — USENIX ATC
//! 2018): a static-analysis system that validates whether an IoT app, or a collection
//! of apps working in concert, adheres to identified safety, security, and functional
//! properties.
//!
//! The pipeline (Fig. 3 of the paper):
//!
//! 1. translate the app source (a Groovy-subset SmartApp DSL) into an intermediate
//!    representation — permissions, events/actions, call graphs (`soteria-ir`);
//! 2. extract a finite state model via path-sensitive symbolic execution and property
//!    abstraction (`soteria-analysis`, `soteria-model`);
//! 3. verify the general properties S.1–S.5 and the applicable app-specific properties
//!    P.1–P.30 with a CTL model checker (`soteria-properties`, `soteria-checker`);
//! 4. for multi-app environments, build the union state model (Algorithm 2) and
//!    re-check the properties on the combined behaviour.
//!
//! Corpus sweeps go through the batch entry points [`Soteria::analyze_apps`] and
//! [`Soteria::analyze_environments`], which fan the independent per-app / per-group
//! analyses out across scoped worker threads ([`AnalysisConfig::threads`] or the
//! `SOTERIA_THREADS` environment variable; results are byte-identical at every
//! thread count).
//!
//! [`AnalysisConfig::threads`]: soteria_analysis::AnalysisConfig
//!
//! # Quick start
//!
//! ```
//! use soteria::Soteria;
//!
//! let source = r#"
//!     definition(name: "Water-Leak-Detector")
//!     preferences {
//!         section("When there's water detected...") {
//!             input "water_sensor", "capability.waterSensor", title: "Where?"
//!             input "valve_device", "capability.valve", title: "Valve device"
//!         }
//!     }
//!     def installed() {
//!         subscribe(water_sensor, "water.wet", waterWetHandler)
//!     }
//!     def waterWetHandler(evt) {
//!         valve_device.close()
//!     }
//! "#;
//!
//! let analysis = Soteria::new().analyze_app("Water-Leak-Detector", source).unwrap();
//! assert_eq!(analysis.model.state_count(), 4);
//! assert!(analysis.violations.is_empty());
//! ```

pub mod analyzer;
pub mod json;
pub mod report;

pub use analyzer::{default_initial_kripke, Soteria};
pub use json::{JsonError, JsonValue, MAX_PARSE_DEPTH};
pub use report::{
    app_analysis_json, app_from_store_json, app_store_json, env_from_store_json,
    env_store_json, environment_json, render_environment_report, render_report,
    violation_from_json, violation_json, AppAnalysis, EnvironmentAnalysis, IngestedApp,
    StoredAppAnalysis, StoredEnvironmentAnalysis,
};

// Re-export the sub-crates so downstream users need a single dependency.
pub use soteria_analysis as analysis;
pub use soteria_capability as capability;
pub use soteria_checker as checker;
pub use soteria_ir as ir;
pub use soteria_lang as lang;
pub use soteria_model as model;
pub use soteria_properties as properties;
