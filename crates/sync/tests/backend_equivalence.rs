//! Real-vs-model backend agreement on randomly scripted traces.
//!
//! The facade's promise is that the `model` backend is *semantically* the real
//! backend with an adversarial scheduler bolted on: the same program, run over
//! either set of types, must converge to the same final state. These tests
//! generate small lock/condvar/atomic scripts with the workspace proptest
//! shim, execute each once on real OS threads and across many model schedules,
//! and require the final `(counter, atomic, flag)` triple to agree everywhere.
//!
//! A deliberately racy fixture closes the loop in the other direction: the
//! detector must flag it, and the failing schedule's seed must replay the same
//! violation deterministically.

use proptest::{proptest, ProptestConfig, TestRng};
use soteria_sync::model::{FailureKind, Model, ModelCell};
use std::sync::Arc;

/// One step of a scripted thread. The script language is deliberately tiny:
/// enough to cross a mutex, a condvar hand-off, and an atomic in one trace.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Lock the shared mutex and add to the counter behind it.
    LockAdd(u64),
    /// `fetch_add` on the shared atomic.
    AtomicAdd(u64),
    /// Block until the flag thread sets the condvar-guarded flag.
    WaitFlag,
    /// Set the flag and `notify_all` (always the flag thread's last op).
    SetFlagNotify,
    /// A scheduling point with no effect.
    Yield,
}

/// A script: one op-list per thread. Thread 0 never waits and always ends
/// with [`Op::SetFlagNotify`], which makes every script deadlock-free: any
/// `WaitFlag` either observes the flag already set or is woken by that final
/// `notify_all` (waiters re-check the flag under the lock, so there is no
/// lost-wakeup window).
type Script = Vec<Vec<Op>>;

fn gen_script(rng: &mut TestRng, threads: usize, ops_per_thread: usize) -> Script {
    let mut script = Vec::with_capacity(threads);
    for tid in 0..threads {
        let mut ops = Vec::with_capacity(ops_per_thread + 1);
        for _ in 0..ops_per_thread {
            let roll = (rng.next_u64() % 8) as usize;
            ops.push(match roll {
                0 | 1 => Op::LockAdd(1 + rng.next_u64() % 9),
                2 | 3 => Op::AtomicAdd(1 + rng.next_u64() % 9),
                4 if tid != 0 => Op::WaitFlag,
                _ => Op::Yield,
            });
        }
        if tid == 0 {
            ops.push(Op::SetFlagNotify);
        }
        script.push(ops);
    }
    script
}

/// The schedule-independent final state every run must reach: the adds are
/// commutative and the flag ends set, so *any* interleaving that terminates
/// agrees on this triple.
fn expected(script: &Script) -> (u64, u64, bool) {
    let mut counter = 0;
    let mut atomic = 0;
    for ops in script {
        for op in ops {
            match op {
                Op::LockAdd(n) => counter += n,
                Op::AtomicAdd(n) => atomic += n,
                _ => {}
            }
        }
    }
    (counter, atomic, true)
}

/// Runs the script on the real backend: actual OS threads over the facade's
/// zero-cost `std::sync` newtypes.
fn run_real(script: &Script) -> (u64, u64, bool) {
    use soteria_sync::atomic::{AtomicU64, Ordering};
    use soteria_sync::{Condvar, Mutex};

    struct Shared {
        counter: Mutex<u64>,
        atomic: AtomicU64,
        flag: Mutex<bool>,
        flag_set: Condvar,
    }
    let shared = Arc::new(Shared {
        counter: Mutex::new(0),
        atomic: AtomicU64::new(0),
        flag: Mutex::new(false),
        flag_set: Condvar::new(),
    });
    let handles: Vec<_> = script
        .iter()
        .map(|ops| {
            let shared = Arc::clone(&shared);
            let ops = ops.clone();
            soteria_sync::thread::spawn(move || {
                for op in ops {
                    match op {
                        Op::LockAdd(n) => *shared.counter.lock() += n,
                        Op::AtomicAdd(n) => {
                            shared.atomic.fetch_add(n, Ordering::SeqCst);
                        }
                        Op::WaitFlag => {
                            let mut flag = shared.flag.lock();
                            while !*flag {
                                flag = shared.flag_set.wait(flag);
                            }
                        }
                        Op::SetFlagNotify => {
                            *shared.flag.lock() = true;
                            shared.flag_set.notify_all();
                        }
                        Op::Yield => soteria_sync::thread::yield_now(),
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("scripted thread panicked on the real backend");
    }
    let counter = *shared.counter.lock();
    let atomic = shared.atomic.load(Ordering::SeqCst);
    let flag = *shared.flag.lock();
    (counter, atomic, flag)
}

/// Runs the script once per explored schedule on the model backend and asserts
/// the final state inside the execution (an assertion failure surfaces as a
/// [`FailureKind::Panic`] violation carrying the replayable schedule).
fn check_model(script: &Script, want: (u64, u64, bool), seeds: usize) {
    use soteria_sync::model::atomic::{AtomicU64, Ordering};
    use soteria_sync::model::{thread, Condvar, Mutex};

    struct Shared {
        counter: Mutex<u64>,
        atomic: AtomicU64,
        flag: Mutex<bool>,
        flag_set: Condvar,
    }
    let model = Model::new();
    let report = model.explore_seeds(0x5EED5, seeds, || {
        let shared = Arc::new(Shared {
            counter: Mutex::new(0),
            atomic: AtomicU64::new(0),
            flag: Mutex::new(false),
            flag_set: Condvar::new(),
        });
        let handles: Vec<_> = script
            .iter()
            .map(|ops| {
                let shared = Arc::clone(&shared);
                let ops = ops.clone();
                thread::spawn(move || {
                    for op in ops {
                        match op {
                            Op::LockAdd(n) => *shared.counter.lock() += n,
                            Op::AtomicAdd(n) => {
                                shared.atomic.fetch_add(n, Ordering::SeqCst);
                            }
                            Op::WaitFlag => {
                                let mut flag = shared.flag.lock();
                                while !*flag {
                                    flag = shared.flag_set.wait(flag);
                                }
                            }
                            Op::SetFlagNotify => {
                                *shared.flag.lock() = true;
                                shared.flag_set.notify_all();
                            }
                            Op::Yield => thread::yield_now(),
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("scripted thread panicked on the model backend");
        }
        let got = (
            *shared.counter.lock(),
            shared.atomic.load(Ordering::SeqCst),
            *shared.flag.lock(),
        );
        assert_eq!(got, want, "model schedule diverged from the real backend");
    });
    report.assert_ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary deadlock-free scripts reach the same final state on real OS
    /// threads and on every explored model schedule.
    #[test]
    fn backends_agree_on_scripted_traces(case in 0usize..1_000_000) {
        let mut rng = TestRng::deterministic();
        for _ in 0..(case % 89) {
            rng.next_u64();
        }
        let threads = 2 + (rng.next_u64() % 2) as usize; // 2..=3 script threads
        let ops = 2 + (rng.next_u64() % 3) as usize; // 2..=4 ops each
        let script = gen_script(&mut rng, threads, ops);
        let want = expected(&script);

        // Real backend: one run per case (real schedules are not enumerable).
        assert_eq!(run_real(&script), want, "real backend diverged: {script:?}");

        // Model backend: many seeded schedules of the same script.
        check_model(&script, want, 40);
    }
}

/// The deliberately racy fixture the detector must flag: two threads write a
/// [`ModelCell`] with no ordering between them. The failing schedule's seed
/// must reproduce the identical violation on replay.
#[test]
fn detector_flags_racy_fixture_and_seed_replays() {
    let model = Model::new();
    let fixture = || {
        let cell = Arc::new(ModelCell::named("racy-slot", 0u32));
        let other = {
            let cell = Arc::clone(&cell);
            soteria_sync::model::thread::spawn(move || cell.set(1))
        };
        cell.set(2);
        other.join().expect("writer thread");
    };
    let report = model.explore_seeds(0xFEED, 512, fixture);
    let violation = report.violation.expect("unsynchronized writers must race");
    assert_eq!(violation.kind, FailureKind::Race);
    let seed = violation.seed.expect("seeded runs report their seed");
    for _ in 0..3 {
        let replay =
            model.run_seed(seed, fixture).violation.expect("seed must reproduce the race");
        assert_eq!(replay.kind, violation.kind);
        assert_eq!(replay.message, violation.message);
        assert_eq!(replay.schedule, violation.schedule);
    }
}
