//! The workspace synchronization facade.
//!
//! Every crate in the service stack (`soteria-exec`, `soteria-service`,
//! `soteria-obs`) takes its `Mutex`/`Condvar`/`RwLock`/atomics/`thread` through
//! this crate instead of `std::sync` directly — `soteria-lint` enforces it.
//! Two backends share the API shape:
//!
//! * the **real backend** (this crate's root, always on): thin newtypes over
//!   `std::sync` that are zero-cost by construction — every method is a
//!   `#[inline]` delegation — and that bake in the workspace's poisoning
//!   policy: [`Mutex::lock`] and [`Condvar::wait`] *recover* a poisoned lock
//!   instead of returning a `Result`, exactly the `lock_recover` semantics the
//!   service has shipped since PR 5. A panic while a guard is held cannot
//!   cascade `PoisonError`s across unrelated jobs, and no call site can write
//!   a bare `lock().unwrap()` again because there is no `Result` to unwrap.
//! * the **model backend** ([`model`], behind the `model` feature): the same
//!   vocabulary of primitives re-implemented on a deterministic cooperative
//!   scheduler. Every synchronization point yields; a schedule (seeded
//!   pseudo-random, or a preemption-bounded DFS branch) picks which model
//!   thread performs the next operation; a happens-before vector-clock race
//!   detector flags unsynchronized access pairs on the [`model::ModelCell`]
//!   shared-state wrapper. Failing schedules print as replayable seeds
//!   (`SOTERIA_SCHED_SEED`). `tests/sync_model.rs` model-checks the service's
//!   scariest protocols against it.
//!
//! The split is additive, not a switcheroo: enabling the `model` feature adds
//! the [`model`] module but leaves the real types untouched, so feature
//! unification across the workspace can never put the production service on
//! the model scheduler.
//!
//! # What the real backend guarantees
//!
//! * **Zero cost.** Each newtype is `#[repr(transparent)]`-shaped delegation;
//!   the `sync_overhead` bench gates the facade-vs-raw ratio at ~1.0x and the
//!   service sweep at byte-identity (`BENCH_pr10.json`).
//! * **Poison recovery.** Locks hand back the inner value after a panic
//!   (`unwrap_or_else(|p| p.into_inner())`). Mutex invariants in this
//!   workspace hold between any two operations — see the PR 5 poisoning sweep
//!   rationale on [`lock_recover`].
//! * **One vocabulary.** `soteria_sync::thread` re-exports the `std::thread`
//!   surface the workspace uses (spawn, Builder, scope, current, sleep,
//!   yield_now, available_parallelism), so the lint can forbid
//!   `std::thread::spawn` outside this crate and migrated code reads the same
//!   as before.

mod real;

pub use real::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

pub mod atomic {
    //! Atomics, re-exported from `std::sync::atomic`.
    //!
    //! The real backend adds nothing over std here (atomics cannot poison and
    //! need no recovery policy); the value of routing them through the facade
    //! is that the model backend mirrors this exact surface
    //! ([`crate::model::atomic`]) with scheduler yields and clock propagation,
    //! so code written against one backend reads identically under the other.
    pub use std::sync::atomic::{
        AtomicBool, AtomicU16, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

pub mod thread {
    //! Thread primitives, re-exported from `std::thread`.
    //!
    //! `soteria-lint` forbids `std::thread::spawn` / `std::thread::Builder`
    //! outside `crates/sync`; every spawn in the workspace goes through this
    //! module so the model backend's [`crate::model::thread`] can mirror it.
    pub use std::thread::{
        available_parallelism, current, scope, sleep, spawn, yield_now, Builder, JoinHandle,
        Scope, ScopedJoinHandle, Thread, ThreadId,
    };
}

/// Locks a raw `std::sync::Mutex`, recovering the guard from a poisoned lock.
///
/// This is the interop helper for crates that still hold `std` mutexes (the
/// facade's own [`Mutex::lock`] recovers internally and needs no helper).
/// Every mutex in this workspace protects a *plain value* (queues, counters,
/// memo tables) whose invariants hold between any two operations — a panic
/// while the guard was held cannot leave state half-updated in a way later
/// readers would misinterpret. Propagating the poison instead would turn one
/// panicking analysis job into a cascade of unrelated `PoisonError` panics
/// across every other job sharing the service.
pub fn lock_recover<T: ?Sized>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    recover(mutex.lock())
}

/// Unwraps any `std` [`LockResult`](std::sync::LockResult) (a `lock()`, a
/// `Condvar::wait`, or an `into_inner()`), recovering the value from a
/// poisoned lock — same rationale as [`lock_recover`].
pub fn recover<T>(result: std::sync::LockResult<T>) -> T {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(feature = "model")]
pub mod model;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_recovers_after_a_poisoning_panic() {
        let shared = Arc::new(Mutex::new(41));
        let poisoner = Arc::clone(&shared);
        let caught = std::panic::catch_unwind(move || {
            let mut guard = poisoner.lock();
            *guard = 42; // complete the update, *then* panic: state is consistent
            panic!("poisoning panic");
        });
        assert!(caught.is_err());
        assert!(shared.is_poisoned());
        assert_eq!(*shared.lock(), 42);
        let shared = Arc::into_inner(shared).unwrap();
        assert_eq!(shared.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let signaller = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (flag, cv) = &*signaller;
            *flag.lock() = true;
            cv.notify_one();
        });
        let (flag, cv) = &*pair;
        let mut ready = flag.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        drop(ready);
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_reports_timeouts() {
        let flag = Mutex::new(());
        let cv = Condvar::new();
        let (guard, timed_out) =
            cv.wait_timeout(flag.lock(), std::time::Duration::from_millis(1));
        assert!(timed_out.timed_out());
        drop(guard);
    }

    #[test]
    fn rwlock_readers_and_writers_recover_poison() {
        let lock = Arc::new(RwLock::new(7));
        assert_eq!(*lock.read(), 7);
        *lock.write() = 8;
        let poisoner = Arc::clone(&lock);
        let caught = std::panic::catch_unwind(move || {
            let _guard = poisoner.write();
            panic!("poison the rwlock");
        });
        assert!(caught.is_err());
        assert_eq!(*lock.read(), 8);
        assert_eq!(*lock.write(), 8);
    }

    #[test]
    fn raw_helpers_still_cover_std_mutexes() {
        let raw = std::sync::Mutex::new(5);
        assert_eq!(*lock_recover(&raw), 5);
        assert_eq!(recover(raw.into_inner()), 5);
    }
}
