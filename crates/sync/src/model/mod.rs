//! The model backend: deterministic, bounded, systematic exploration of
//! thread interleavings over the facade's own vocabulary of primitives.
//!
//! # How a check is written
//!
//! A protocol under test is a closure using *model* primitives —
//! [`Mutex`]/[`Condvar`]/[`RwLock`], [`atomic`], [`thread::spawn`], and
//! [`ModelCell`] for state whose synchronization is exactly what is being
//! checked. A [`Model`] runs the closure many times, each time under a
//! different schedule:
//!
//! * [`Model::explore_seeds`] draws schedules from a seeded SplitMix64 PRNG.
//!   Every run's seed is reported on failure; re-running with
//!   `SOTERIA_SCHED_SEED=<seed>` (see [`SCHED_SEED_ENV`]) replays exactly
//!   that interleaving.
//! * [`Model::explore_dfs`] enumerates schedules depth-first by backtracking
//!   over recorded branch points, optionally preemption-bounded
//!   ([`Model::preemption_bound`]) — exhaustive at small sizes, where most
//!   ordering bugs already manifest.
//!
//! Four violation classes fail a run ([`FailureKind`]): vector-clock **data
//! races** on [`ModelCell`]s, **deadlocks** (no eligible thread — including
//! lost wakeups, which on the host OS would hang forever), user **panics**
//! (protocol invariant assertions), and **step-limit** overruns (livelock).
//! The first violation aborts the run and is reported with a replayable
//! seed or schedule.

mod exec;
#[path = "sync.rs"]
mod objects;

pub use exec::{FailureKind, SCHED_SEED_ENV};
pub use objects::{
    Condvar, ModelCell, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};

pub mod atomic {
    //! Model atomics (mirrors [`crate::atomic`]).
    pub use super::objects::{
        AtomicBool, AtomicU16, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

pub mod thread {
    //! Model threads (mirrors [`crate::thread`]).
    pub use super::objects::thread::{current_id, spawn, yield_now, JoinHandle};
}

use exec::{Chooser, DecisionRecord, Limits, SplitMix64};
use std::collections::HashSet;
use std::fmt;

/// A violation found during exploration, carrying everything needed to replay
/// the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: FailureKind,
    pub message: String,
    /// The PRNG seed of the failing run (seeded exploration only).
    pub seed: Option<u64>,
    /// The branch indices of the failing run (always present; replayable via
    /// [`Model::replay`]).
    pub schedule: Vec<u32>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} violation: {}", self.kind, self.message)?;
        match self.seed {
            Some(seed) => write!(f, "\n  replay with {}={}", SCHED_SEED_ENV, seed),
            None => write!(f, "\n  replay schedule: {:?}", self.schedule),
        }
    }
}

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub runs: usize,
    /// Distinct schedules among them (by branch-choice signature).
    pub distinct_schedules: usize,
    /// The first violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
    /// True when a DFS exhausted every schedule within its bounds.
    pub complete: bool,
}

impl Report {
    pub fn is_ok(&self) -> bool {
        self.violation.is_none()
    }

    /// Panics with the violation (message + replay instructions) if one was
    /// found — the assertion protocol tests use.
    #[track_caller]
    pub fn assert_ok(&self) {
        if let Some(violation) = &self.violation {
            panic!(
                "model check failed after {} runs ({} distinct schedules)\n{}",
                self.runs, self.distinct_schedules, violation
            );
        }
    }
}

/// Configuration for one model-checking session. Fields are public knobs;
/// the defaults fit the workspace's protocol tests.
#[derive(Debug, Clone)]
pub struct Model {
    /// Abort a single run after this many scheduler steps (livelock guard).
    pub max_steps: usize,
    /// Abort when a run spawns more model threads than this.
    pub max_threads: usize,
    /// DFS only: skip branches that would exceed this many preemptions
    /// (`None` = unbounded, i.e. truly exhaustive).
    pub preemption_bound: Option<usize>,
    /// Let the scheduler fire spurious condvar wakeups as branches.
    pub spurious_wakeups: bool,
    /// How many times per thread per run a `wait_timeout` timeout (or a
    /// spurious wakeup) may fire — the bound that keeps predicate loops over
    /// `wait_timeout` a finite subtree.
    pub max_timeout_fires: usize,
    /// Stop a DFS after this many runs even if not exhausted (safety cap;
    /// the report's `complete` stays `false`).
    pub max_dfs_runs: usize,
}

impl Default for Model {
    fn default() -> Self {
        Model {
            max_steps: 20_000,
            max_threads: 8,
            preemption_bound: None,
            spurious_wakeups: false,
            max_timeout_fires: 2,
            max_dfs_runs: 200_000,
        }
    }
}

impl Model {
    pub fn new() -> Self {
        Self::default()
    }

    fn limits(&self) -> Limits {
        Limits {
            max_steps: self.max_steps,
            max_threads: self.max_threads,
            spurious_wakeups: self.spurious_wakeups,
            max_timeout_fires: self.max_timeout_fires,
        }
    }

    fn violation_from(
        failure: exec::Failure,
        decisions: &[DecisionRecord],
        seed: Option<u64>,
    ) -> Violation {
        Violation {
            kind: failure.kind,
            message: failure.message,
            seed,
            schedule: decisions.iter().map(|d| d.chosen as u32).collect(),
        }
    }

    /// Runs exactly one schedule from `seed`.
    pub fn run_seed<F: Fn() + Sync>(&self, seed: u64, f: F) -> Report {
        let result =
            exec::run_once(self.limits(), Chooser::Seeded(SplitMix64::new(seed)), &f);
        Report {
            runs: 1,
            distinct_schedules: 1,
            violation: result
                .failure
                .map(|fail| Self::violation_from(fail, &result.decisions, Some(seed))),
            complete: false,
        }
    }

    /// Runs `runs` seeded schedules derived from `base_seed` (seed of run `i`
    /// is `base_seed + i`), stopping at the first violation.
    ///
    /// When `SOTERIA_SCHED_SEED` is set in the environment it replaces
    /// `base_seed`, so exporting a reported failing seed reproduces the
    /// violation on the very first run — the replay knob documented in the
    /// README.
    pub fn explore_seeds<F: Fn() + Sync>(&self, base_seed: u64, runs: usize, f: F) -> Report {
        let base_seed = seed_from_env().unwrap_or(base_seed);
        let mut distinct = HashSet::new();
        for i in 0..runs {
            let seed = base_seed.wrapping_add(i as u64);
            let result =
                exec::run_once(self.limits(), Chooser::Seeded(SplitMix64::new(seed)), &f);
            distinct.insert(result.signature);
            if let Some(fail) = result.failure {
                return Report {
                    runs: i + 1,
                    distinct_schedules: distinct.len(),
                    violation: Some(Self::violation_from(fail, &result.decisions, Some(seed))),
                    complete: false,
                };
            }
        }
        Report { runs, distinct_schedules: distinct.len(), violation: None, complete: false }
    }

    /// Replays one exact schedule (the `schedule` of a [`Violation`]).
    pub fn replay<F: Fn() + Sync>(&self, schedule: &[u32], f: F) -> Report {
        let chooser = Chooser::Replay { path: schedule.to_vec(), cursor: 0 };
        let result = exec::run_once(self.limits(), chooser, &f);
        Report {
            runs: 1,
            distinct_schedules: 1,
            violation: result
                .failure
                .map(|fail| Self::violation_from(fail, &result.decisions, None)),
            complete: false,
        }
    }

    /// Enumerates schedules depth-first by backtracking over branch points,
    /// respecting [`preemption_bound`](Model::preemption_bound). Returns with
    /// `complete: true` when the (bounded) space is exhausted.
    pub fn explore_dfs<F: Fn() + Sync>(&self, f: F) -> Report {
        let mut distinct = HashSet::new();
        let mut runs = 0usize;
        let mut stack: Vec<DecisionRecord> = Vec::new();
        loop {
            let path: Vec<u32> = stack.iter().map(|d| d.chosen as u32).collect();
            let result =
                exec::run_once(self.limits(), Chooser::Replay { path, cursor: 0 }, &f);
            runs += 1;
            distinct.insert(result.signature);
            if let Some(fail) = result.failure {
                return Report {
                    runs,
                    distinct_schedules: distinct.len(),
                    violation: Some(Self::violation_from(fail, &result.decisions, None)),
                    complete: false,
                };
            }
            if runs >= self.max_dfs_runs {
                return Report {
                    runs,
                    distinct_schedules: distinct.len(),
                    violation: None,
                    complete: false,
                };
            }
            stack = result.decisions;
            // Backtrack to the deepest branch with an untried (and, under the
            // bound, affordable) option.
            let advanced = loop {
                let Some(mut decision) = stack.pop() else { break false };
                let used: usize =
                    stack.iter().map(|d| d.is_preemption(d.chosen) as usize).sum();
                let mut next = decision.chosen + 1;
                let mut pushed = false;
                while next < decision.options.len() {
                    let extra = decision.is_preemption(next) as usize;
                    if self.preemption_bound.is_none_or(|bound| used + extra <= bound) {
                        decision.chosen = next;
                        stack.push(decision);
                        pushed = true;
                        break;
                    }
                    next += 1;
                }
                if pushed {
                    break true;
                }
            };
            if !advanced {
                return Report {
                    runs,
                    distinct_schedules: distinct.len(),
                    violation: None,
                    complete: true,
                };
            }
        }
    }
}

/// Reads the replay seed from `SOTERIA_SCHED_SEED`, if set.
pub fn seed_from_env() -> Option<u64> {
    let raw = std::env::var(SCHED_SEED_ENV).ok()?;
    let raw = raw.trim();
    match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Two threads increment a mutex-guarded counter; exhaustively explored,
    /// the final value is always 2.
    #[test]
    fn dfs_explores_mutex_counter_exhaustively() {
        let model = Model::new();
        let report = model.explore_dfs(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let mut guard = counter.lock();
                        *guard += 1;
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            assert_eq!(*counter.lock(), 2);
        });
        report.assert_ok();
        assert!(report.complete, "two-thread counter should be exhaustible");
        assert!(report.runs > 1, "exploration should branch (got {} runs)", report.runs);
    }

    /// Unsynchronized increments through a ModelCell are a race the
    /// vector-clock detector must flag.
    #[test]
    fn detector_flags_unsynchronized_cell_writes() {
        let model = Model::new();
        let report = model.explore_dfs(|| {
            let cell = Arc::new(ModelCell::named("counter", 0u32));
            let writer = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.with_mut(|v| *v += 1))
            };
            cell.with_mut(|v| *v += 1);
            writer.join().unwrap();
        });
        let violation = report.violation.expect("unsynchronized writes must be flagged");
        assert_eq!(violation.kind, FailureKind::Race);
        assert!(violation.message.contains("counter"), "race names the cell: {violation}");
    }

    /// Publishing data via a Relaxed flag is the classic almost-correct
    /// pattern: the flag's value flows, but no happens-before does.
    #[test]
    fn relaxed_publication_races_but_release_acquire_does_not() {
        let racy = |publish: atomic::Ordering, observe: atomic::Ordering| {
            let model = Model::new();
            model.explore_dfs(move || {
                let data = Arc::new(ModelCell::named("payload", 0u32));
                let flag = Arc::new(atomic::AtomicBool::new(false));
                let producer = {
                    let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                    thread::spawn(move || {
                        data.set(42);
                        flag.store(true, publish);
                    })
                };
                if flag.load(observe) {
                    data.with(|v| assert_eq!(*v, 42));
                }
                producer.join().unwrap();
            })
        };
        let relaxed = racy(atomic::Ordering::Relaxed, atomic::Ordering::Relaxed);
        let violation = relaxed.violation.expect("Relaxed publication must race");
        assert_eq!(violation.kind, FailureKind::Race);
        racy(atomic::Ordering::Release, atomic::Ordering::Acquire).assert_ok();
    }

    /// ABBA lock ordering deadlocks under some schedule; the model reports it
    /// instead of hanging.
    #[test]
    fn dfs_finds_abba_deadlock() {
        let model = Model::new();
        let report = model.explore_dfs(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            t.join().unwrap();
        });
        let violation = report.violation.expect("ABBA ordering must deadlock somewhere");
        assert_eq!(violation.kind, FailureKind::Deadlock);
    }

    /// A wakeup sent before the wait starts is lost; the stranded waiter is a
    /// deadlock the scheduler can prove.
    #[test]
    fn dfs_finds_lost_wakeup() {
        let model = Model::new();
        let report = model.explore_dfs(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let waker = {
                let pair = Arc::clone(&pair);
                thread::spawn(move || pair.1.notify_one())
            };
            // Deliberately broken: no predicate, so a notify that lands
            // before this wait is lost forever.
            let guard = pair.0.lock();
            drop(pair.1.wait(guard));
            waker.join().unwrap();
        });
        let violation = report.violation.expect("notify-before-wait must strand the waiter");
        assert_eq!(violation.kind, FailureKind::Deadlock);
    }

    /// The fixed version of the same protocol — flag + predicate loop with
    /// wait_timeout — survives exhaustive exploration including timeouts.
    #[test]
    fn predicate_loop_with_timeout_survives_exploration() {
        let model = Model::new();
        let report = model.explore_dfs(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let waker = {
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    *pair.0.lock() = true;
                    pair.1.notify_one();
                })
            };
            let mut ready = pair.0.lock();
            while !*ready {
                let (guard, _timed_out) =
                    pair.1.wait_timeout(ready, std::time::Duration::from_millis(1));
                ready = guard;
            }
            drop(ready);
            waker.join().unwrap();
        });
        report.assert_ok();
        assert!(report.complete);
    }

    /// Replaying a violation's recorded schedule reproduces it exactly.
    #[test]
    fn failing_schedules_replay_deterministically() {
        let model = Model::new();
        let protocol = || {
            let cell = Arc::new(ModelCell::named("slot", 0u32));
            let writer = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.set(1))
            };
            cell.set(2);
            writer.join().unwrap();
        };
        let found = model.explore_seeds(0xB0B, 256, protocol);
        let violation = found.violation.expect("two unsynchronized writers must race");
        let seed = violation.seed.expect("seeded exploration reports its seed");
        // Replaying the seed reproduces the violation, run after run.
        for _ in 0..3 {
            let replay = model.run_seed(seed, protocol);
            let again = replay.violation.expect("seed replay must reproduce the race");
            assert_eq!(again.kind, violation.kind);
            assert_eq!(again.message, violation.message);
            assert_eq!(again.schedule, violation.schedule);
        }
        // And so does replaying the recorded branch path directly.
        let by_path = model.replay(&violation.schedule, protocol);
        assert_eq!(
            by_path.violation.expect("path replay must reproduce the race").message,
            violation.message
        );
    }

    /// Spawn and join establish happens-before: parent reads what the child
    /// wrote, no race.
    #[test]
    fn spawn_and_join_are_synchronization() {
        let model = Model::new();
        let report = model.explore_dfs(|| {
            let cell = Arc::new(ModelCell::named("handoff", 0u32));
            let child = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.set(7))
            };
            child.join().unwrap();
            assert_eq!(cell.get(), 7);
        });
        report.assert_ok();
        assert!(report.complete);
    }

    /// try_lock never blocks: under exploration it observes both outcomes.
    #[test]
    fn try_lock_sees_both_outcomes() {
        let model = Model::new();
        let saw = Arc::new(std::sync::atomic::AtomicU8::new(0));
        let saw2 = Arc::clone(&saw);
        let report = model.explore_dfs(move || {
            let lock = Arc::new(Mutex::new(()));
            let holder = {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    let guard = lock.lock();
                    // A scheduling point inside the critical section, so the
                    // parent's try_lock can observe the lock held.
                    thread::yield_now();
                    drop(guard);
                })
            };
            match lock.try_lock() {
                Some(_guard) => saw2.fetch_or(1, std::sync::atomic::Ordering::Relaxed),
                None => saw2.fetch_or(2, std::sync::atomic::Ordering::Relaxed),
            };
            holder.join().unwrap();
        });
        report.assert_ok();
        assert_eq!(saw.load(std::sync::atomic::Ordering::Relaxed), 3, "both outcomes explored");
    }

    /// RwLock: two readers may hold the lock together; a writer excludes both;
    /// release/acquire through the lock orders a cell handoff.
    #[test]
    fn rwlock_orders_cell_handoff() {
        let model = Model::new();
        let report = model.explore_dfs(|| {
            let lock = Arc::new(RwLock::new(0u32));
            let cell = Arc::new(ModelCell::named("side", 0u32));
            let writer = {
                let (lock, cell) = (Arc::clone(&lock), Arc::clone(&cell));
                thread::spawn(move || {
                    let mut guard = lock.write();
                    cell.set(9);
                    *guard = 1;
                })
            };
            let guard = lock.read();
            if *guard > 0 {
                // The writer released after its cell write; the read lock
                // acquire orders us after it.
                assert_eq!(cell.get(), 9);
            }
            drop(guard);
            writer.join().unwrap();
        });
        report.assert_ok();
    }

    /// Seeded exploration covers many distinct schedules on a three-thread
    /// protocol (the distinct-schedule counter the acceptance bar uses).
    #[test]
    fn seeded_exploration_covers_distinct_schedules() {
        let model = Model::new();
        let report = model.explore_seeds(42, 400, || {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        for _ in 0..2 {
                            *counter.lock() += 1;
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            assert_eq!(*counter.lock(), 6);
        });
        report.assert_ok();
        assert!(
            report.distinct_schedules > 100,
            "expected broad coverage, got {} distinct schedules",
            report.distinct_schedules
        );
    }

    /// The step bound catches livelock (a spin that never makes progress).
    #[test]
    fn step_bound_reports_livelock() {
        let model = Model { max_steps: 500, ..Model::new() };
        let report = model.run_seed(1, || {
            let flag = atomic::AtomicBool::new(false);
            while !flag.load(atomic::Ordering::Acquire) {
                thread::yield_now();
            }
        });
        let violation = report.violation.expect("an unsatisfiable spin must hit the bound");
        assert_eq!(violation.kind, FailureKind::StepLimit);
    }
}
