//! Model-backend synchronization objects: the same vocabulary as the real
//! backend (`Mutex`/`Condvar`/`RwLock`/atomics/`thread::spawn`), re-implemented
//! on the deterministic scheduler in [`super::exec`], plus [`ModelCell`] — the
//! race-detected wrapper for state that is *supposed* to be protected by
//! something else.
//!
//! Every operation is two halves: a scheduling point (the scheduler may run
//! any other eligible thread first — this is where interleavings come from)
//! and an effect applied atomically under the execution lock (this is where
//! vector clocks propagate and races are checked). Blocking operations park
//! the thread in a state the scheduler understands (`Lock`, `CondWait`,
//! `Join`), so a cycle of blocked threads is reported as a deadlock instead of
//! hanging the test.

use super::exec::{
    self, current_execution_weak, same_execution, sync_point, with_state, Execution, FailureKind,
    Obj, RunState, VClock, WakeReason,
};
use std::cell::UnsafeCell;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Atomic memory orderings, mirrored from `std::sync::atomic::Ordering`.
///
/// In the model, `Acquire`/`Release`/`AcqRel`/`SeqCst` operations propagate
/// vector clocks (they establish happens-before); `Relaxed` operations touch
/// the value only. That asymmetry is the race detector's teeth: publishing a
/// pointer with a `Relaxed` store *looks* synchronized but orders nothing, and
/// the detector flags the subsequent read.
pub use std::sync::atomic::Ordering;

fn resolve(weak: &Weak<Execution>, what: &str) -> (Arc<Execution>, usize) {
    same_execution(weak).unwrap_or_else(|| {
        panic!("model {what} used outside the model run that created it")
    })
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// The model mutex: acquisition order is a scheduler choice, release publishes
/// the holder's vector clock.
pub struct Mutex<T> {
    exec: Weak<Execution>,
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler serializes model threads (exactly one runs user code
// at a time) and the `owner` field gates data access, so `&Mutex<T>` may cross
// threads whenever the protected value may.
unsafe impl<T: Send> Sync for Mutex<T> {}
unsafe impl<T: Send> Send for Mutex<T> {}

/// Guard for a locked model [`Mutex`]; unlocking on drop is itself an effect
/// (clock release), not a scheduling point.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex registered with the current model run. Panics outside
    /// a run: model objects are per-schedule, create them inside the closure.
    pub fn new(value: T) -> Self {
        let weak = current_execution_weak();
        let id = with_state(|g, _| g.register_object(Obj::Mutex { owner: None, clock: VClock::default() }));
        Mutex { exec: weak, id, data: UnsafeCell::new(value) }
    }

    /// Acquires the lock; blocks (in model time) while held elsewhere.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        resolve(&self.exec, "Mutex");
        sync_point(RunState::Lock { obj: self.id, write: true });
        MutexGuard { lock: self }
    }

    /// Acquires the lock only if free at this scheduling point.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        resolve(&self.exec, "Mutex");
        sync_point(RunState::Runnable);
        let acquired = with_state(|g, me| {
            let thread_clock = &mut g.threads[me].clock as *mut VClock;
            if let Obj::Mutex { owner, clock } = &mut g.objects[self.id] {
                if owner.is_none() {
                    *owner = Some(me);
                    // SAFETY: threads and objects are disjoint Vec fields.
                    unsafe { (*thread_clock).join(clock) };
                    return true;
                }
            }
            false
        });
        // `then`, not `then_some`: the guard must only exist (and ever drop)
        // when the lock was actually acquired.
        acquired.then(|| MutexGuard { lock: self })
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> MutexGuard<'_, T> {
    fn unlock(&self) {
        if std::thread::panicking() {
            // Teardown path: release the object state so other unwinding
            // threads stay consistent, but never yield or park mid-unwind.
            let (exec, _) = exec::current();
            let mut g = exec.lock();
            if let Obj::Mutex { owner, .. } = &mut g.objects[self.lock.id] {
                *owner = None;
            }
            return;
        }
        with_state(|g, me| {
            g.threads[me].clock.tick(me);
            let thread_clock = g.threads[me].clock.clone();
            if let Obj::Mutex { owner, clock } = &mut g.objects[self.lock.id] {
                debug_assert_eq!(*owner, Some(me), "unlocking a mutex the thread does not hold");
                *owner = None;
                clock.join(&thread_clock);
            }
        });
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.unlock();
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: this thread holds the model lock, and the scheduler runs one
        // thread at a time.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self` for uniqueness of this guard.
        unsafe { &mut *self.lock.data.get() }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Whether a [`Condvar::wait_timeout`] returned by timing out. In the model,
/// "the timeout fired" is a schedule branch, not a clock read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// The model condition variable. `notify_one`'s choice of waiter is a recorded
/// scheduler decision; lost wakeups become deadlock reports.
pub struct Condvar {
    exec: Weak<Execution>,
    id: usize,
}

impl Condvar {
    pub fn new() -> Self {
        let weak = current_execution_weak();
        let id = with_state(|g, _| g.register_object(Obj::Condvar { waiters: Vec::new() }));
        Condvar { exec: weak, id }
    }

    fn park<'a, T>(&self, guard: MutexGuard<'a, T>, timeout: bool) -> (MutexGuard<'a, T>, bool) {
        let (exec, me) = resolve(&self.exec, "Condvar");
        let mutex = guard.lock;
        // The wait releases the mutex and parks atomically — run it as one
        // effect, bypassing the guard's drop-unlock.
        std::mem::forget(guard);
        {
            let mut g = exec.lock();
            if g.abort {
                if let Obj::Mutex { owner, .. } = &mut g.objects[mutex.id] {
                    *owner = None;
                }
                drop(g);
                exec::abort_unwind();
            }
            g.step();
            g.threads[me].clock.tick(me);
            let thread_clock = g.threads[me].clock.clone();
            if let Obj::Mutex { owner, clock } = &mut g.objects[mutex.id] {
                debug_assert_eq!(*owner, Some(me), "waiting on a condvar without holding the mutex");
                *owner = None;
                clock.join(&thread_clock);
            }
            if let Obj::Condvar { waiters } = &mut g.objects[self.id] {
                waiters.push(me);
            }
            g.threads[me].wake = WakeReason::None;
            g.threads[me].state = RunState::CondWait { cv: self.id, mutex: mutex.id, timeout };
            g.advance();
            exec.cv.notify_all();
        }
        exec::wait_until_dispatched(&exec, me);
        let timed_out = with_state(|g, me| g.threads[me].wake == WakeReason::TimedOut);
        (MutexGuard { lock: mutex }, timed_out)
    }

    /// Releases the guard, parks until notified (or a spurious wakeup, when
    /// the model enables them), and re-acquires the lock.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.park(guard, false).0
    }

    /// [`wait`](Condvar::wait) where the scheduler may also *choose* to fire
    /// the timeout (the duration itself is ignored — model time is schedule
    /// order, not wall clock).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (guard, timed_out) = self.park(guard, true);
        (guard, WaitTimeoutResult { timed_out })
    }

    /// Wakes one waiter — *which* one is a recorded scheduler decision.
    pub fn notify_one(&self) {
        resolve(&self.exec, "Condvar");
        sync_point(RunState::Runnable);
        with_state(|g, _| {
            let waiters = match &g.objects[self.id] {
                Obj::Condvar { waiters } => waiters.clone(),
                _ => unreachable!(),
            };
            if waiters.is_empty() {
                return;
            }
            let index = g.choose_external(&waiters);
            let woken = waiters[index];
            self.wake_waiter(g, woken);
        });
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        resolve(&self.exec, "Condvar");
        sync_point(RunState::Runnable);
        with_state(|g, _| {
            let waiters = match &g.objects[self.id] {
                Obj::Condvar { waiters } => waiters.clone(),
                _ => unreachable!(),
            };
            for woken in waiters {
                self.wake_waiter(g, woken);
            }
        });
    }

    fn wake_waiter(&self, g: &mut exec::ExecInner, woken: usize) {
        if let Obj::Condvar { waiters } = &mut g.objects[self.id] {
            waiters.retain(|&w| w != woken);
        }
        if let RunState::CondWait { mutex, .. } = g.threads[woken].state {
            g.threads[woken].wake = WakeReason::Notified;
            g.threads[woken].state = RunState::Lock { obj: mutex, write: true };
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// The model reader-writer lock. Reader/writer admission order is explored.
pub struct RwLock<T> {
    exec: Weak<Execution>,
    id: usize,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Sync for RwLock<T> {}
unsafe impl<T: Send> Send for RwLock<T> {}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        let weak = current_execution_weak();
        let id = with_state(|g, _| {
            g.register_object(Obj::Rw { writer: None, readers: 0, clock: VClock::default() })
        });
        RwLock { exec: weak, id, data: UnsafeCell::new(value) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        resolve(&self.exec, "RwLock");
        sync_point(RunState::Lock { obj: self.id, write: false });
        RwLockReadGuard { lock: self }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        resolve(&self.exec, "RwLock");
        sync_point(RunState::Lock { obj: self.id, write: true });
        RwLockWriteGuard { lock: self }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    fn release(&self, write: bool) {
        if std::thread::panicking() {
            let (exec, _) = exec::current();
            let mut g = exec.lock();
            if let Obj::Rw { writer, readers, .. } = &mut g.objects[self.id] {
                if write {
                    *writer = None;
                } else {
                    *readers = readers.saturating_sub(1);
                }
            }
            return;
        }
        with_state(|g, me| {
            g.threads[me].clock.tick(me);
            let thread_clock = g.threads[me].clock.clone();
            if let Obj::Rw { writer, readers, clock } = &mut g.objects[self.id] {
                if write {
                    debug_assert_eq!(*writer, Some(me));
                    *writer = None;
                } else {
                    debug_assert!(*readers > 0);
                    *readers -= 1;
                }
                // Reader releases publish too: a writer admitted after a
                // reader happens-after that reader's critical section.
                clock.join(&thread_clock);
            }
        });
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release(false);
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release(true);
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: readers admitted concurrently only with other readers;
        // shared reference matches.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive writer admission.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive writer admission plus `&mut self`.
        unsafe { &mut *self.lock.data.get() }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

fn hb_on_load(ordering: Ordering) -> bool {
    matches!(ordering, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn hb_on_store(ordering: Ordering) -> bool {
    matches!(ordering, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// The shared machinery behind every model atomic: a `u64` cell plus a clock
/// that `Release`-or-stronger stores publish into and `Acquire`-or-stronger
/// loads join from. `Relaxed` operations move the value and nothing else.
struct AtomicInner {
    exec: Weak<Execution>,
    id: usize,
}

impl AtomicInner {
    fn new(value: u64) -> Self {
        let weak = current_execution_weak();
        let id =
            with_state(|g, _| g.register_object(Obj::Atomic { value, clock: VClock::default() }));
        AtomicInner { exec: weak, id }
    }

    fn load(&self, ordering: Ordering) -> u64 {
        resolve(&self.exec, "atomic");
        sync_point(RunState::Runnable);
        with_state(|g, me| {
            let thread_clock = &mut g.threads[me].clock as *mut VClock;
            if let Obj::Atomic { value, clock } = &mut g.objects[self.id] {
                if hb_on_load(ordering) {
                    // SAFETY: threads and objects are disjoint Vec fields.
                    unsafe { (*thread_clock).join(clock) };
                }
                *value
            } else {
                unreachable!()
            }
        })
    }

    fn rmw(&self, ordering: Ordering, op: impl FnOnce(u64) -> u64) -> u64 {
        resolve(&self.exec, "atomic");
        sync_point(RunState::Runnable);
        with_state(|g, me| {
            if hb_on_store(ordering) {
                g.threads[me].clock.tick(me);
            }
            let thread_clock = &mut g.threads[me].clock as *mut VClock;
            if let Obj::Atomic { value, clock } = &mut g.objects[self.id] {
                if hb_on_load(ordering) {
                    unsafe { (*thread_clock).join(clock) };
                }
                let old = *value;
                *value = op(old);
                if hb_on_store(ordering) {
                    unsafe { clock.join(&*thread_clock) };
                }
                old
            } else {
                unreachable!()
            }
        })
    }

    fn store(&self, value: u64, ordering: Ordering) {
        self.rmw(ordering, |_| value);
    }

    fn compare_exchange(&self, current: u64, new: u64, success: Ordering) -> Result<u64, u64> {
        let mut swapped = false;
        let old = self.rmw(success, |v| {
            if v == current {
                swapped = true;
                new
            } else {
                v
            }
        });
        if swapped {
            Ok(old)
        } else {
            Err(old)
        }
    }
}

macro_rules! model_atomic {
    ($name:ident, $ty:ty) => {
        /// A model atomic mirroring the std type of the same name.
        pub struct $name(AtomicInner);

        // The widening casts are identity for u64 itself; keep the macro uniform.
        #[allow(clippy::unnecessary_cast)]
        impl $name {
            pub fn new(value: $ty) -> Self {
                $name(AtomicInner::new(value as u64))
            }

            pub fn load(&self, ordering: Ordering) -> $ty {
                self.0.load(ordering) as $ty
            }

            pub fn store(&self, value: $ty, ordering: Ordering) {
                self.0.store(value as u64, ordering);
            }

            pub fn swap(&self, value: $ty, ordering: Ordering) -> $ty {
                self.0.rmw(ordering, |_| value as u64) as $ty
            }

            pub fn fetch_add(&self, delta: $ty, ordering: Ordering) -> $ty {
                self.0.rmw(ordering, |v| (v as $ty).wrapping_add(delta) as u64) as $ty
            }

            pub fn fetch_sub(&self, delta: $ty, ordering: Ordering) -> $ty {
                self.0.rmw(ordering, |v| (v as $ty).wrapping_sub(delta) as u64) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.0
                    .compare_exchange(current as u64, new as u64, success)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }
        }
    };
}

model_atomic!(AtomicUsize, usize);
model_atomic!(AtomicU64, u64);
model_atomic!(AtomicU32, u32);
model_atomic!(AtomicU16, u16);
model_atomic!(AtomicU8, u8);

/// A model `AtomicBool` (backed by the same machinery).
pub struct AtomicBool(AtomicInner);

impl AtomicBool {
    pub fn new(value: bool) -> Self {
        AtomicBool(AtomicInner::new(value as u64))
    }

    pub fn load(&self, ordering: Ordering) -> bool {
        self.0.load(ordering) != 0
    }

    pub fn store(&self, value: bool, ordering: Ordering) {
        self.0.store(value as u64, ordering);
    }

    pub fn swap(&self, value: bool, ordering: Ordering) -> bool {
        self.0.rmw(ordering, |_| value as u64) != 0
    }

    pub fn fetch_or(&self, value: bool, ordering: Ordering) -> bool {
        self.0.rmw(ordering, |v| v | value as u64) != 0
    }

    pub fn fetch_and(&self, value: bool, ordering: Ordering) -> bool {
        self.0.rmw(ordering, |v| v & value as u64) != 0
    }

    /// The `failure` ordering is ignored: the model's failed CAS performs the
    /// load side of `success` already (conservative, never weaker).
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        self.0
            .compare_exchange(current as u64, new as u64, success)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

// ---------------------------------------------------------------------------
// ModelCell — race-detected shared state
// ---------------------------------------------------------------------------

/// Shared state the protocol under test believes is synchronized *by
/// something else* (a lock, a published flag, a join). Every access is checked
/// against the happens-before clocks: a read unordered with the last write, or
/// a write unordered with any prior read/write, fails the run as a data race
/// with both access sites' threads named.
pub struct ModelCell<T> {
    exec: Weak<Execution>,
    id: usize,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Sync for ModelCell<T> {}
unsafe impl<T: Send> Send for ModelCell<T> {}

impl<T> ModelCell<T> {
    pub fn new(value: T) -> Self {
        Self::named("cell", value)
    }

    /// Like [`new`](ModelCell::new) with a name used in race reports.
    pub fn named(name: &'static str, value: T) -> Self {
        let weak = current_execution_weak();
        let id = with_state(|g, _| {
            g.register_object(Obj::Cell { name, write: None, reads: VClock::default() })
        });
        ModelCell { exec: weak, id, data: UnsafeCell::new(value) }
    }

    fn check(&self, is_write: bool) {
        with_state(|g, me| {
            let my_clock = g.threads[me].clock.clone();
            let my_epoch = my_clock.get(me);
            if let Obj::Cell { name, write, reads } = &mut g.objects[self.id] {
                let name = *name;
                if let Some((writer, epoch)) = *write {
                    if writer != me && my_clock.get(writer) < epoch {
                        let kind = if is_write { "write/write" } else { "read/write" };
                        let msg = format!(
                            "data race on ModelCell `{name}`: {kind} — thread {me} is not \
                             ordered after the write by thread {writer}"
                        );
                        g.fail(FailureKind::Race, msg);
                        return;
                    }
                }
                if is_write {
                    let racy_reader = reads
                        .entries()
                        .find(|&(reader, epoch)| reader != me && my_clock.get(reader) < epoch);
                    if let Some((reader, _)) = racy_reader {
                        let msg = format!(
                            "data race on ModelCell `{name}`: write by thread {me} is not \
                             ordered after the read by thread {reader}"
                        );
                        g.fail(FailureKind::Race, msg);
                        return;
                    }
                    *write = Some((me, my_epoch));
                    *reads = VClock::default();
                } else {
                    reads.set(me, my_epoch);
                }
            }
        });
    }

    /// Reads through a shared reference to the value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        resolve(&self.exec, "ModelCell");
        sync_point(RunState::Runnable);
        self.check(false);
        // SAFETY: the scheduler runs one thread at a time; the race check
        // above reports (and aborts) unordered pairs rather than letting two
        // model threads overlap here.
        f(unsafe { &*self.data.get() })
    }

    /// Writes through an exclusive reference to the value.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        resolve(&self.exec, "ModelCell");
        sync_point(RunState::Runnable);
        self.check(true);
        // SAFETY: as above; serialization makes the exclusive borrow sound.
        f(unsafe { &mut *self.data.get() })
    }

    /// Convenience read for `Copy` values.
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        self.with(|v| *v)
    }

    /// Convenience write.
    pub fn set(&self, value: T) {
        self.with_mut(|v| *v = value);
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

// ---------------------------------------------------------------------------
// thread — spawn/join/yield in model time
// ---------------------------------------------------------------------------

pub mod thread {
    //! Model threads: serialized OS threads whose interleaving the scheduler
    //! owns. Mirrors the `soteria_sync::thread` surface the workspace uses.

    use super::super::exec::{
        self, spawn_model_thread, sync_point, with_state, RunState, VClock,
    };
    use std::sync::{Arc, Mutex as StdMutex};

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        child: usize,
        result: Arc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Blocks (in model time) until the child finishes, establishing
        /// happens-before from everything the child did.
        ///
        /// Always `Ok`: a child panic aborts the whole run as a violation, so
        /// there is no panic payload to hand back. The `Result` mirrors
        /// `std::thread::JoinHandle::join` so call sites read identically.
        pub fn join(self) -> std::thread::Result<T> {
            sync_point(RunState::Join { child: self.child });
            let value = crate::lock_recover(&self.result)
                .take()
                .expect("joined model thread left no result");
            Ok(value)
        }
    }

    /// Spawns a model thread. The spawn point is a scheduler decision; the
    /// child inherits the parent's vector clock (spawn establishes
    /// happens-before, like the real thing).
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, _) = exec::current();
        sync_point(RunState::Runnable);
        let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let slot = Arc::clone(&result);
        let child = with_state(|g, me| {
            if g.threads.len() >= g.limits.max_threads {
                g.fail(
                    super::super::exec::FailureKind::Panic,
                    format!("model thread limit exceeded ({} threads)", g.limits.max_threads),
                );
                return None;
            }
            g.threads[me].clock.tick(me);
            let mut child_clock = VClock::default();
            child_clock.join(&g.threads[me].clock);
            let child = g.register_thread(child_clock);
            g.threads[child].clock.set(child, 1);
            Some(child)
        });
        let child = match child {
            Some(child) => child,
            None => exec::abort_unwind(),
        };
        {
            let mut g = exec.lock();
            spawn_model_thread(&exec, &mut g, child, move || {
                let value = f();
                *crate::lock_recover(&slot) = Some(value);
            });
        }
        JoinHandle { child, result }
    }

    /// A pure scheduling point: lets the scheduler preempt here.
    pub fn yield_now() {
        sync_point(RunState::Runnable);
    }

    /// The current model thread's id (stable within a run; used in tests and
    /// race reports).
    pub fn current_id() -> usize {
        let (_, me) = exec::current();
        me
    }
}
