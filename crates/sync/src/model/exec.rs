//! The deterministic execution engine behind the model backend.
//!
//! One [`Execution`] is one run of a user closure under one schedule. Model
//! threads are real OS threads, but *serialized*: exactly one — the `active`
//! thread — runs user code at any instant. Every synchronization operation
//! first yields to the scheduler ([`sync_point`]), which picks the next thread
//! to dispatch among the currently *eligible* ones; with more than one option
//! the pick is a recorded [`DecisionRecord`] the exploration layer replays,
//! enumerates (DFS), or draws from a seeded PRNG. Blocked threads are not
//! eligible, so a state with no eligible, unfinished threads is a detected
//! deadlock — including classic lost-wakeup states, which on the host OS
//! would just hang.
//!
//! Happens-before is tracked with per-thread [`VClock`]s: lock releases and
//! `Release`-or-stronger atomic stores publish the releasing thread's clock
//! into the object; acquires join it back. `Relaxed` atomics deliberately
//! publish nothing, which is exactly what lets the race detector flag
//! flag-publication patterns that look synchronized but are not.

use std::any::Any;
use std::cell::RefCell;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// The environment variable that pins exploration to a single replayable
/// schedule seed (see [`crate::model::Model::explore_seeds`]).
pub const SCHED_SEED_ENV: &str = "SOTERIA_SCHED_SEED";

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over model-thread ids (grows lazily as threads register).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, tid: usize, value: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = value;
    }

    /// Advances this thread's own component (a new epoch).
    pub(crate) fn tick(&mut self, tid: usize) {
        let next = self.get(tid) + 1;
        self.set(tid, next);
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub(crate) fn join(&mut self, other: &VClock) {
        for (tid, &value) in other.0.iter().enumerate() {
            if self.get(tid) < value {
                self.set(tid, value);
            }
        }
    }

    /// Iterate the non-zero components.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.0.iter().copied().enumerate().filter(|&(_, v)| v > 0)
    }
}

// ---------------------------------------------------------------------------
// Deterministic PRNG (SplitMix64 — tiny, seedable, dependency-free)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` (`n > 0`).
    pub(crate) fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Thread and object state
// ---------------------------------------------------------------------------

/// Why a condvar wait returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeReason {
    None,
    Notified,
    TimedOut,
    Spurious,
}

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunState {
    /// Dispatchable: running user code (if `active`) or ready to.
    Runnable,
    /// Blocked acquiring a lock object (`write` covers mutexes and rw-writes).
    Lock { obj: usize, write: bool },
    /// Parked on a condvar, holding nothing; `timeout` marks a `wait_timeout`
    /// that the scheduler may *choose* to fire.
    CondWait { cv: usize, mutex: usize, timeout: bool },
    /// Blocked joining another model thread.
    Join { child: usize },
    Finished,
}

pub(crate) struct ThreadInfo {
    pub(crate) state: RunState,
    pub(crate) clock: VClock,
    pub(crate) wake: WakeReason,
    /// Timeout/spurious wakeups fired for this thread this run. Bounded by
    /// `Limits::max_timeout_fires` so a `wait_timeout` predicate loop is a
    /// finite subtree instead of an infinite timeout-again path.
    pub(crate) forced_wakes: usize,
}

/// One registered synchronization object.
pub(crate) enum Obj {
    Mutex {
        owner: Option<usize>,
        clock: VClock,
    },
    Rw {
        writer: Option<usize>,
        readers: u32,
        clock: VClock,
    },
    Condvar {
        waiters: Vec<usize>,
    },
    Atomic {
        value: u64,
        clock: VClock,
    },
    /// Unsynchronized shared state under race detection: the epoch of the last
    /// write and a clock of last reads per thread.
    Cell {
        name: &'static str,
        write: Option<(usize, u64)>,
        reads: VClock,
    },
}

// ---------------------------------------------------------------------------
// Decisions, failures, schedules
// ---------------------------------------------------------------------------

/// One recorded branch point: which threads were eligible, which was running,
/// and which was chosen. Only points with more than one option are recorded —
/// forced switches are not branches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DecisionRecord {
    pub(crate) options: Vec<usize>,
    pub(crate) prev: usize,
    pub(crate) chosen: usize,
}

impl DecisionRecord {
    /// True when picking `index` would preempt a still-eligible `prev`.
    pub(crate) fn is_preemption(&self, index: usize) -> bool {
        self.options.contains(&self.prev) && self.options[index] != self.prev
    }
}

/// What went wrong in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The vector-clock detector flagged an unordered access pair on a
    /// [`ModelCell`](crate::model::ModelCell).
    Race,
    /// No eligible thread and not all finished (includes lost wakeups).
    Deadlock,
    /// User code panicked (a protocol invariant assertion, usually).
    Panic,
    /// The run exceeded the step bound (a livelock, usually).
    StepLimit,
}

/// A violation found in one run.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub(crate) kind: FailureKind,
    pub(crate) message: String,
}

/// The outcome of one fully-executed (or aborted) schedule.
pub(crate) struct RunResult {
    pub(crate) failure: Option<Failure>,
    pub(crate) decisions: Vec<DecisionRecord>,
    /// FNV-1a hash of the chosen-thread sequence at branch points: the
    /// schedule's identity for distinct-schedule counting.
    pub(crate) signature: u64,
}

// ---------------------------------------------------------------------------
// The execution
// ---------------------------------------------------------------------------

pub(crate) enum Chooser {
    /// Pseudo-random choices from a replayable seed.
    Seeded(SplitMix64),
    /// Replay recorded branch indices; beyond them, continue the running
    /// thread when possible (minimizing preemptions) else take option 0.
    Replay { path: Vec<u32>, cursor: usize },
}

pub(crate) struct Limits {
    pub(crate) max_steps: usize,
    pub(crate) max_threads: usize,
    pub(crate) spurious_wakeups: bool,
    pub(crate) max_timeout_fires: usize,
}

pub(crate) struct ExecInner {
    pub(crate) threads: Vec<ThreadInfo>,
    pub(crate) objects: Vec<Obj>,
    pub(crate) active: usize,
    pub(crate) chooser: Chooser,
    pub(crate) decisions: Vec<DecisionRecord>,
    pub(crate) signature: u64,
    pub(crate) steps: usize,
    pub(crate) limits: Limits,
    pub(crate) abort: bool,
    pub(crate) failure: Option<Failure>,
    /// OS-thread handles of every spawned model thread; the runner joins them
    /// all before the run result is read.
    pub(crate) handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    pub(crate) inner: StdMutex<ExecInner>,
    pub(crate) cv: StdCondvar,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Execution {
    pub(crate) fn new(limits: Limits, chooser: Chooser) -> Arc<Self> {
        Arc::new(Execution {
            inner: StdMutex::new(ExecInner {
                threads: Vec::new(),
                objects: Vec::new(),
                active: 0,
                chooser,
                decisions: Vec::new(),
                signature: FNV_OFFSET,
                steps: 0,
                limits,
                abort: false,
                failure: None,
                handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        })
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, ExecInner> {
        crate::recover(self.inner.lock())
    }
}

impl ExecInner {
    pub(crate) fn register_thread(&mut self, clock: VClock) -> usize {
        let tid = self.threads.len();
        self.threads.push(ThreadInfo {
            state: RunState::Runnable,
            clock,
            wake: WakeReason::None,
            forced_wakes: 0,
        });
        tid
    }

    pub(crate) fn register_object(&mut self, obj: Obj) -> usize {
        self.objects.push(obj);
        self.objects.len() - 1
    }

    /// Records a failure (first one wins) and tells every thread to unwind.
    pub(crate) fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure { kind, message });
        }
        self.abort = true;
    }

    /// True when `tid` could be dispatched right now.
    fn eligible(&self, tid: usize) -> bool {
        match self.threads[tid].state {
            RunState::Runnable => true,
            RunState::Lock { obj, write } => match &self.objects[obj] {
                Obj::Mutex { owner, .. } => owner.is_none(),
                Obj::Rw { writer, readers, .. } => {
                    if write {
                        writer.is_none() && *readers == 0
                    } else {
                        writer.is_none()
                    }
                }
                _ => false,
            },
            RunState::CondWait { mutex, timeout, .. } => {
                // Firing a timeout (or, when enabled, a spurious wakeup) is a
                // scheduler choice — but only once the mutex can be reacquired,
                // so the dispatch is a single step back into user code; and
                // only up to the per-thread fire bound, so predicate loops
                // over wait_timeout stay a finite subtree.
                let mutex_free = matches!(&self.objects[mutex], Obj::Mutex { owner: None, .. });
                mutex_free
                    && (timeout || self.limits.spurious_wakeups)
                    && self.threads[tid].forced_wakes < self.limits.max_timeout_fires
            }
            RunState::Join { child } => {
                matches!(self.threads[child].state, RunState::Finished)
            }
            RunState::Finished => false,
        }
    }

    /// Applies the state transition that makes `tid` runnable. Only call on an
    /// eligible thread.
    fn dispatch(&mut self, tid: usize) {
        match self.threads[tid].state {
            RunState::Runnable => {}
            RunState::Lock { obj, write } => {
                let thread_clock = &mut self.threads[tid].clock as *mut VClock;
                match &mut self.objects[obj] {
                    Obj::Mutex { owner, clock } => {
                        *owner = Some(tid);
                        // Acquire: the new owner's clock joins the lock's.
                        unsafe { (*thread_clock).join(clock) };
                    }
                    Obj::Rw { writer, readers, clock } => {
                        if write {
                            *writer = Some(tid);
                        } else {
                            *readers += 1;
                        }
                        unsafe { (*thread_clock).join(clock) };
                    }
                    _ => unreachable!("lock-blocked on a non-lock object"),
                }
                self.threads[tid].state = RunState::Runnable;
            }
            RunState::CondWait { cv, mutex, timeout } => {
                if let Obj::Condvar { waiters } = &mut self.objects[cv] {
                    waiters.retain(|&w| w != tid);
                }
                let thread_clock = &mut self.threads[tid].clock as *mut VClock;
                if let Obj::Mutex { owner, clock } = &mut self.objects[mutex] {
                    debug_assert!(owner.is_none());
                    *owner = Some(tid);
                    unsafe { (*thread_clock).join(clock) };
                }
                self.threads[tid].wake =
                    if timeout { WakeReason::TimedOut } else { WakeReason::Spurious };
                self.threads[tid].forced_wakes += 1;
                self.threads[tid].state = RunState::Runnable;
            }
            RunState::Join { child } => {
                let child_clock = self.threads[child].clock.clone();
                self.threads[tid].clock.join(&child_clock);
                self.threads[tid].state = RunState::Runnable;
            }
            RunState::Finished => unreachable!("dispatching a finished thread"),
        }
    }

    /// Picks and dispatches the next thread; records the decision when it is a
    /// real branch. On deadlock, fails the run.
    pub(crate) fn advance(&mut self) {
        if self.abort {
            return;
        }
        let mut options: Vec<usize> =
            (0..self.threads.len()).filter(|&tid| self.eligible(tid)).collect();
        // Order the previously-active thread first: option 0 is always
        // "continue without preempting", so a DFS default path takes zero
        // preemptions and backtracking (which bumps indices upward from the
        // default) enumerates every option exactly once.
        if let Some(position) = options.iter().position(|&tid| tid == self.active) {
            options.remove(position);
            options.insert(0, self.active);
        }
        if options.is_empty() {
            if self.threads.iter().all(|t| matches!(t.state, RunState::Finished)) {
                return; // run complete
            }
            let stuck: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.state, RunState::Finished))
                .map(|(tid, t)| format!("thread {tid} {:?}", t.state))
                .collect();
            self.fail(
                FailureKind::Deadlock,
                format!("deadlock: no eligible thread ({})", stuck.join(", ")),
            );
            return;
        }
        let index = self.choose(&options);
        let next = options[index];
        self.dispatch(next);
        self.active = next;
    }

    /// A scheduler decision driven by the same chooser but made *inside* an
    /// effect (e.g. which waiter `notify_one` wakes). Recorded like any other
    /// branch so replay and DFS cover it.
    pub(crate) fn choose_external(&mut self, options: &[usize]) -> usize {
        self.choose(options)
    }

    /// Chooses among `options` (recording the decision when there is a branch).
    fn choose(&mut self, options: &[usize]) -> usize {
        if options.len() == 1 {
            return 0;
        }
        let prev = self.active;
        let index = match &mut self.chooser {
            Chooser::Seeded(rng) => rng.next_below(options.len()),
            Chooser::Replay { path, cursor } => {
                let index = if *cursor < path.len() {
                    let recorded = path[*cursor] as usize;
                    // Divergence (the closure was not deterministic) shows up
                    // as an out-of-range recorded index.
                    recorded.min(options.len() - 1)
                } else {
                    // Beyond the replayed prefix: option 0 is "continue the
                    // running thread" by the ordering above — the canonical
                    // zero-preemption default every DFS suffix starts from.
                    0
                };
                *cursor += 1;
                index
            }
        };
        self.decisions.push(DecisionRecord { options: options.to_vec(), prev, chosen: index });
        let chosen_tid = options[index] as u64;
        self.signature = (self.signature ^ chosen_tid).wrapping_mul(FNV_PRIME);
        index
    }

    /// Counts one scheduler step against the run bound.
    pub(crate) fn step(&mut self) {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            self.fail(
                FailureKind::StepLimit,
                format!("step bound exceeded ({} scheduler steps)", self.limits.max_steps),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local execution context and the sentinel unwind
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The recognized unwind payload that tears a model thread down when the run
/// aborts. Raised with `resume_unwind`, so it never hits the panic hook.
pub(crate) struct ModelAbort;

pub(crate) fn abort_unwind() -> ! {
    std::panic::resume_unwind(Box::new(ModelAbort))
}

pub(crate) fn is_model_abort(payload: &(dyn Any + Send)) -> bool {
    payload.is::<ModelAbort>()
}

/// The execution the current OS thread belongs to. Panics (with a usable
/// message) outside a model run — model sync objects only work under
/// [`crate::model::Model`] exploration.
pub(crate) fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|(exec, tid)| (Arc::clone(exec), *tid))
            .expect("soteria_sync::model primitives may only be used inside a model run")
    })
}

pub(crate) fn current_execution_weak() -> std::sync::Weak<Execution> {
    let (exec, _) = current();
    Arc::downgrade(&exec)
}

/// True when this OS thread is a model thread of `exec`.
pub(crate) fn same_execution(weak: &std::sync::Weak<Execution>) -> Option<(Arc<Execution>, usize)> {
    let exec = weak.upgrade()?;
    let (cur, tid) = CURRENT.with(|slot| {
        slot.borrow().as_ref().map(|(e, t)| (Arc::clone(e), *t)).unzip()
    });
    match (cur, tid) {
        (Some(cur), Some(tid)) if Arc::ptr_eq(&cur, &exec) => Some((exec, tid)),
        _ => None,
    }
}

fn install(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|slot| *slot.borrow_mut() = Some((exec, tid)));
}

fn uninstall() {
    CURRENT.with(|slot| *slot.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// Scheduling entry points used by the sync objects
// ---------------------------------------------------------------------------

/// Parks until this thread is the dispatched active thread again.
pub(crate) fn wait_until_dispatched(exec: &Execution, me: usize) {
    let mut g = exec.lock();
    loop {
        if g.abort {
            drop(g);
            abort_unwind();
        }
        if g.active == me && matches!(g.threads[me].state, RunState::Runnable) {
            return;
        }
        g = crate::recover(exec.cv.wait(g));
    }
}

/// The scheduling point every operation passes through: set the desired state
/// (usually `Runnable`, for a pure preemption opportunity; or a blocked state),
/// let the scheduler pick the next thread, and park until dispatched again.
pub(crate) fn sync_point(desired: RunState) {
    let (exec, me) = current();
    {
        let mut g = exec.lock();
        if g.abort {
            drop(g);
            abort_unwind();
        }
        g.step();
        g.threads[me].state = desired;
        g.advance();
        exec.cv.notify_all();
    }
    wait_until_dispatched(&exec, me);
}

/// Runs `effect` on the execution state without yielding: the mutation half of
/// an operation, executed atomically right after its scheduling point.
pub(crate) fn with_state<R>(effect: impl FnOnce(&mut ExecInner, usize) -> R) -> R {
    let (exec, me) = current();
    let mut g = exec.lock();
    let result = effect(&mut g, me);
    if g.abort && !std::thread::panicking() {
        drop(g);
        exec.cv.notify_all();
        abort_unwind();
    }
    // Effects can change eligibility (an unlock frees waiters) — waiters are
    // reconsidered at the next scheduling point, but wake the condvar so an
    // aborting run tears down promptly.
    exec.cv.notify_all();
    result
}

/// Marks the current thread finished and hands control onward.
pub(crate) fn thread_finish() {
    let (exec, me) = current();
    let mut g = exec.lock();
    g.threads[me].state = RunState::Finished;
    g.advance();
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Spawning model threads and running a schedule
// ---------------------------------------------------------------------------

/// The body every model OS thread runs: install context, wait to be
/// dispatched, run the user closure, finish. Real panics become run failures;
/// the sentinel unwind is absorbed silently.
pub(crate) fn model_thread_body(exec: Arc<Execution>, tid: usize, body: impl FnOnce()) {
    install(Arc::clone(&exec), tid);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        wait_until_dispatched(&exec, tid);
        body();
        thread_finish();
    }));
    if let Err(payload) = result {
        let mut g = exec.lock();
        if !is_model_abort(payload.as_ref()) {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            g.fail(FailureKind::Panic, format!("thread {tid} panicked: {message}"));
        }
        g.threads[tid].state = RunState::Finished;
        g.advance();
        exec.cv.notify_all();
    }
    uninstall();
}

/// Spawns the OS thread for a new model thread and registers its handle.
pub(crate) fn spawn_model_thread(
    exec: &Arc<Execution>,
    g: &mut ExecInner,
    tid: usize,
    body: impl FnOnce() + Send + 'static,
) {
    let exec2 = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("soteria-model-{tid}"))
        .spawn(move || model_thread_body(exec2, tid, body))
        .expect("spawning a model thread");
    g.handles.push(handle);
}

/// Runs one schedule of `f` to completion and returns what happened.
///
/// `f` runs as model thread 0 on a fresh OS thread; the caller blocks until
/// every model OS thread has exited (joins them all), so borrowing `f` across
/// the unsafe `'static` erasure below is sound.
pub(crate) fn run_once<F>(limits: Limits, chooser: Chooser, f: &F) -> RunResult
where
    F: Fn() + Sync,
{
    let exec = Execution::new(limits, chooser);
    {
        let mut g = exec.lock();
        let root = g.register_thread(VClock::default());
        debug_assert_eq!(root, 0);
        g.active = 0;
        // SAFETY: every model OS thread is joined in the loop below before
        // this function returns, so the reference cannot outlive `f`.
        let f_addr = f as *const F as usize;
        spawn_model_thread(&exec, &mut g, 0, move || {
            let f = unsafe { &*(f_addr as *const F) };
            f();
        });
    }
    exec.cv.notify_all();
    loop {
        let handle = {
            let mut g = exec.lock();
            g.handles.pop()
        };
        match handle {
            Some(handle) => {
                let _ = handle.join();
            }
            None => break,
        }
    }
    let inner = crate::recover(exec.inner.lock());
    debug_assert!(
        inner.abort || inner.threads.iter().all(|t| matches!(t.state, RunState::Finished)),
        "run ended with live threads and no abort"
    );
    RunResult {
        failure: inner.failure.clone(),
        decisions: inner.decisions.clone(),
        signature: inner.signature,
    }
}
