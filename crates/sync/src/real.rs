//! The real backend: thin newtypes over `std::sync` with poison recovery.
//!
//! Every method is an `#[inline]` delegation — the newtypes exist so that (a)
//! the poisoning policy lives in exactly one place instead of ~30
//! `lock_recover` call sites, and (b) the model backend can mirror the same
//! API shape. No method returns a `LockResult`: recovery is the policy, so
//! there is nothing to unwrap and a bare `lock().unwrap()` cannot be written.

use crate::recover;
use std::fmt;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock whose [`lock`](Mutex::lock) recovers poison.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`]. Releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex (usable in `static` initializers).
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value (poison recovered).
    #[inline]
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is free. A poisoned lock (a thread
    /// panicked while holding the guard) is recovered, per the workspace
    /// policy documented on [`crate::lock_recover`].
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: recover(self.inner.lock()) }
    }

    /// Acquires the lock only if it is free right now (poison recovered;
    /// `None` means "held by somebody else", never "poisoned").
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                Some(MutexGuard { inner: poisoned.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }

    /// True when a thread panicked while holding the guard. The facade
    /// *recovers* poisoned locks; this observer exists for tests that assert
    /// the recovery actually happened.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Whether a [`Condvar::wait_timeout`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than a notification.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable over facade [`MutexGuard`]s, poison-recovering on the
/// re-acquire path exactly like [`Mutex::lock`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable (usable in `static` initializers).
    #[inline]
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Releases the guard, blocks until notified, and re-acquires the lock.
    ///
    /// Spurious wakeups are possible, exactly as with `std::sync::Condvar`:
    /// callers loop on their predicate. (The model backend exploits the same
    /// contract to *explore* spurious wakeups deterministically.)
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard { inner: recover(self.inner.wait(guard.inner)) }
    }

    /// [`wait`](Condvar::wait) with a timeout.
    #[inline]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (inner, result) = recover(self.inner.wait_timeout(guard.inner, timeout));
        (MutexGuard { inner }, WaitTimeoutResult { timed_out: result.timed_out() })
    }

    /// Wakes one blocked waiter, if any.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock whose acquire paths recover poison.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked reader-writer lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value (poison recovered).
    #[inline]
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (poison recovered).
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: recover(self.inner.read()) }
    }

    /// Acquires exclusive write access (poison recovered).
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: recover(self.inner.write()) }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
