//! Analysis context shared by the property checkers: one entry per app under test.

use soteria_analysis::{HandlerSummary, TransitionSpec};
use soteria_ir::AppIr;
use std::collections::BTreeMap;

/// Everything the property checkers need to know about one analysed app.
#[derive(Debug, Clone, Copy)]
pub struct AppUnderTest<'a> {
    /// App name.
    pub name: &'a str,
    /// The app's IR (permissions, subscriptions, call graphs).
    pub ir: &'a AppIr,
    /// Transition specifications from the symbolic executor.
    pub specs: &'a [TransitionSpec],
    /// Per-handler analysis summaries (used by S.5).
    pub summaries: &'a BTreeMap<String, HandlerSummary>,
}

/// The devices available to a property check: handles grouped by capability, across
/// every app of the environment (a single app is an environment of one).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceContext {
    /// Handles per capability name.
    pub handles: BTreeMap<String, Vec<String>>,
    /// True if any app subscribes to or changes the location mode.
    pub has_location_mode: bool,
}

impl DeviceContext {
    /// Builds the device context of an environment.
    pub fn from_apps(apps: &[AppUnderTest<'_>]) -> Self {
        let mut ctx = DeviceContext::default();
        for app in apps {
            for p in &app.ir.permissions {
                let entry = ctx.handles.entry(p.capability.clone()).or_default();
                if !entry.contains(&p.handle) {
                    entry.push(p.handle.clone());
                }
            }
            ctx.has_location_mode |= app.ir.subscribes_to_mode() || app.ir.changes_mode();
        }
        ctx
    }

    /// Handles of one capability.
    pub fn handles_of(&self, capability: &str) -> &[String] {
        self.handles.get(capability).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// True if at least one device of the capability is present. The pseudo-capability
    /// `"location"` is satisfied by mode usage.
    pub fn has(&self, capability: &str) -> bool {
        if capability == "location" {
            return self.has_location_mode;
        }
        !self.handles_of(capability).is_empty()
    }

    /// Switch-like handles (capabilities exposing a `switch` attribute).
    pub fn switch_handles(&self) -> Vec<&str> {
        ["switch", "switchLevel", "colorControl"]
            .iter()
            .flat_map(|c| self.handles_of(c))
            .map(|s| s.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_analysis::{AnalysisConfig, SymbolicExecutor};
    use soteria_capability::CapabilityRegistry;

    #[test]
    fn context_from_two_apps_merges_handles() {
        let registry = CapabilityRegistry::standard();
        let a_src = r#"
            definition(name: "A")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "m", "capability.motionSensor"
            } }
            def installed() { subscribe(m, "motion.active", h) }
            def h(evt) { sw.on() }
        "#;
        let b_src = r#"
            definition(name: "B")
            preferences { section("d") { input "sw", "capability.switch" } }
            def installed() { subscribe(sw, "switch.on", h) }
            def h(evt) { setLocationMode("home") }
        "#;
        let a_ir = AppIr::from_source("A", a_src, &registry).unwrap();
        let b_ir = AppIr::from_source("B", b_src, &registry).unwrap();
        let a_exec = SymbolicExecutor::new(&a_ir, &registry, AnalysisConfig::paper());
        let b_exec = SymbolicExecutor::new(&b_ir, &registry, AnalysisConfig::paper());
        let a_specs = a_exec.transition_specs();
        let b_specs = b_exec.transition_specs();
        let a_sum = a_exec.handler_summaries();
        let b_sum = b_exec.handler_summaries();
        let apps = [
            AppUnderTest { name: "A", ir: &a_ir, specs: &a_specs, summaries: &a_sum },
            AppUnderTest { name: "B", ir: &b_ir, specs: &b_specs, summaries: &b_sum },
        ];
        let ctx = DeviceContext::from_apps(&apps);
        // The shared handle `sw` is deduplicated.
        assert_eq!(ctx.handles_of("switch"), &["sw".to_string()]);
        assert!(ctx.has("motionSensor"));
        assert!(ctx.has("location")); // app B changes the mode
        assert!(!ctx.has("valve"));
        assert_eq!(ctx.switch_handles(), vec!["sw"]);
    }
}
