//! Property identifiers and violation reports.

use std::fmt;

/// Identifier of a property from the paper's catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PropertyId {
    /// A general property S.1–S.5 (constraints on states and transitions that are
    /// independent of app semantics).
    General(u8),
    /// An application-specific property P.1–P.30 (device-centric use cases).
    AppSpecific(u8),
    /// The implicit determinism requirement: nondeterministic state models are
    /// themselves reported as a safety violation (Sec. 4.2).
    Determinism,
}

impl fmt::Display for PropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyId::General(n) => write!(f, "S.{n}"),
            PropertyId::AppSpecific(n) => write!(f, "P.{n}"),
            PropertyId::Determinism => write!(f, "DET"),
        }
    }
}

/// A reported property violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated property.
    pub property: PropertyId,
    /// Human-readable explanation of the violation.
    pub description: String,
    /// The apps involved (one for individual analysis, several for app groups).
    pub apps: Vec<String>,
    /// Counter-example trace (state names) when produced by the model checker.
    pub counterexample: Option<Vec<String>>,
    /// True if the violation only arises through the reflection over-approximation and
    /// may therefore be a false positive (the paper's MalIoT App5 case).
    pub possibly_false_positive: bool,
}

impl Violation {
    /// Builds a violation report.
    pub fn new(property: PropertyId, description: impl Into<String>, apps: Vec<String>) -> Self {
        Violation {
            property,
            description: description.into(),
            apps,
            counterexample: None,
            possibly_false_positive: false,
        }
    }

    /// Attaches a counter-example trace.
    pub fn with_counterexample(mut self, trace: Vec<String>) -> Self {
        self.counterexample = Some(trace);
        self
    }

    /// Marks the violation as possibly spurious (reflection over-approximation).
    pub fn as_possible_false_positive(mut self) -> Self {
        self.possibly_false_positive = true;
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (apps: {})", self.property, self.description, self.apps.join(", "))?;
        if self.possibly_false_positive {
            write!(f, " [may be a false positive: reflection over-approximation]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_the_paper() {
        assert_eq!(PropertyId::General(4).to_string(), "S.4");
        assert_eq!(PropertyId::AppSpecific(30).to_string(), "P.30");
        assert_eq!(PropertyId::Determinism.to_string(), "DET");
        assert!(PropertyId::General(1) < PropertyId::General(2));
    }

    #[test]
    fn violation_builders() {
        let v = Violation::new(PropertyId::AppSpecific(10), "alarm stays off", vec!["App5".into()])
            .with_counterexample(vec!["s0".into(), "s1".into()])
            .as_possible_false_positive();
        assert!(v.possibly_false_positive);
        assert_eq!(v.counterexample.as_ref().unwrap().len(), 2);
        let text = v.to_string();
        assert!(text.contains("P.10"));
        assert!(text.contains("false positive"));
    }
}
