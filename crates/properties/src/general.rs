//! The general properties S.1–S.5 (Appendix B, Table 1).
//!
//! These are constraints on states and transitions independent of app semantics; they
//! are checked structurally on the transition specifications extracted by the
//! symbolic executor, both for a single app and for a set of apps installed together.

use crate::context::AppUnderTest;
use crate::violation::{PropertyId, Violation};
use soteria_capability::{CapabilityRegistry, EventKind};

/// Checks S.1–S.5 over an environment (one or more apps).
pub fn check_general(
    apps: &[AppUnderTest<'_>],
    registry: &CapabilityRegistry,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    violations.extend(check_s1(apps));
    violations.extend(check_s2(apps));
    violations.extend(check_s3(apps, registry));
    violations.extend(check_s4(apps, registry));
    violations.extend(check_s5(apps));
    dedup(violations)
}

/// S.1: a handler must not change an attribute to conflicting values on one path.
fn check_s1(apps: &[AppUnderTest<'_>]) -> Vec<Violation> {
    let mut out = Vec::new();
    for app in apps {
        for spec in app.specs {
            for (i, a) in spec.effects.iter().enumerate() {
                for b in spec.effects.iter().skip(i + 1) {
                    if a.conflicts_with(b) {
                        let v = Violation::new(
                            PropertyId::General(1),
                            format!(
                                "handler {} sets {}.{} to both {} and {} on the same path (event {})",
                                spec.handler, a.handle, a.attribute, a.value, b.value, spec.event.kind
                            ),
                            vec![app.name.to_string()],
                        );
                        out.push(flag_reflection(v, spec.via_reflection));
                    }
                }
            }
        }
    }
    // In a multi-app environment, the "same path" becomes the joint handling of a
    // single event by several apps (the paper's Smoke-Alarm + App2 example).
    if apps.len() > 1 {
        out.extend(cross_app_same_event(apps, true));
    }
    out
}

/// S.2: a handler must not change an attribute to the same value multiple times.
fn check_s2(apps: &[AppUnderTest<'_>]) -> Vec<Violation> {
    let mut out = Vec::new();
    for app in apps {
        for spec in app.specs {
            for (i, a) in spec.effects.iter().enumerate() {
                for b in spec.effects.iter().skip(i + 1) {
                    if a.repeats(b) {
                        let v = Violation::new(
                            PropertyId::General(2),
                            format!(
                                "handler {} sets {}.{} to {} multiple times (event {})",
                                spec.handler, a.handle, a.attribute, a.value, spec.event.kind
                            ),
                            vec![app.name.to_string()],
                        );
                        out.push(flag_reflection(v, spec.via_reflection));
                    }
                }
            }
        }
    }
    if apps.len() > 1 {
        out.extend(cross_app_same_event(apps, false));
    }
    out
}

/// Cross-app variant of S.1 (`conflicting = true`) / S.2 (`conflicting = false`): two
/// apps handle the same event and change the same attribute to conflicting (S.1) or
/// identical (S.2) values.
fn cross_app_same_event(apps: &[AppUnderTest<'_>], conflicting: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, app_a) in apps.iter().enumerate() {
        for app_b in apps.iter().skip(i + 1) {
            for spec_a in app_a.specs {
                for spec_b in app_b.specs {
                    if !same_event(spec_a, spec_b) {
                        continue;
                    }
                    for ea in &spec_a.effects {
                        for eb in &spec_b.effects {
                            let hit = if conflicting {
                                ea.conflicts_with(eb)
                            } else {
                                ea.repeats(eb)
                            };
                            if hit {
                                let (id, verb) = if conflicting {
                                    (PropertyId::General(1), "conflicting values")
                                } else {
                                    (PropertyId::General(2), "the same value")
                                };
                                let v = Violation::new(
                                    id,
                                    format!(
                                        "event {} makes {} set {}.{} to {} while {} sets it to {} ({verb})",
                                        spec_a.event.kind, app_a.name, ea.handle, ea.attribute,
                                        ea.value, app_b.name, eb.value
                                    ),
                                    vec![app_a.name.to_string(), app_b.name.to_string()],
                                );
                                out.push(flag_reflection(
                                    v,
                                    spec_a.via_reflection || spec_b.via_reflection,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// S.3: handlers of complement events must not change an attribute to the same value.
fn check_s3(apps: &[AppUnderTest<'_>], registry: &CapabilityRegistry) -> Vec<Violation> {
    let mut out = Vec::new();
    let all_specs: Vec<(&AppUnderTest<'_>, &soteria_analysis::TransitionSpec)> =
        apps.iter().flat_map(|a| a.specs.iter().map(move |s| (a, s))).collect();
    for (i, (app_a, spec_a)) in all_specs.iter().enumerate() {
        for (app_b, spec_b) in all_specs.iter().skip(i + 1) {
            let complement = spec_a.event.is_complement_of(&spec_b.event, |cap, attr| {
                registry.enumerated_domain(cap, attr)
            });
            if !complement {
                continue;
            }
            for ea in &spec_a.effects {
                for eb in &spec_b.effects {
                    if ea.repeats(eb) {
                        let v = Violation::new(
                            PropertyId::General(3),
                            format!(
                                "complement events {} and {} both set {}.{} to {}",
                                spec_a.event.kind, spec_b.event.kind, ea.handle, ea.attribute, ea.value
                            ),
                            involved(app_a.name, app_b.name),
                        );
                        out.push(flag_reflection(
                            v,
                            spec_a.via_reflection || spec_b.via_reflection,
                        ));
                    }
                }
            }
        }
    }
    out
}

/// S.4: non-complement handlers must not change an attribute to conflicting values
/// (potential race condition).
fn check_s4(apps: &[AppUnderTest<'_>], registry: &CapabilityRegistry) -> Vec<Violation> {
    let mut out = Vec::new();
    let all_specs: Vec<(&AppUnderTest<'_>, &soteria_analysis::TransitionSpec)> =
        apps.iter().flat_map(|a| a.specs.iter().map(move |s| (a, s))).collect();
    for (i, (app_a, spec_a)) in all_specs.iter().enumerate() {
        for (app_b, spec_b) in all_specs.iter().skip(i + 1) {
            // Same events are covered by S.1; complement events are the normal on/off
            // pattern and are excluded by definition.
            if same_event(spec_a, spec_b) {
                continue;
            }
            if spec_a.event.is_complement_of(&spec_b.event, |cap, attr| {
                registry.enumerated_domain(cap, attr)
            }) {
                continue;
            }
            // Two scheduled (timer) events fire at developer-chosen distinct times and
            // cannot race with each other; the paper's S.4 examples always involve at
            // least one device or user event.
            if matches!(spec_a.event.kind, EventKind::Timer { .. })
                && matches!(spec_b.event.kind, EventKind::Timer { .. })
            {
                continue;
            }
            // Two value-specific events of the same device attribute (e.g.
            // smoke.detected and smoke.clear) are mutually exclusive — the attribute
            // cannot take both values at once — so they cannot race either, even when
            // the attribute's domain has more than two values.
            if let (
                EventKind::Device { attribute: attr_a, value: Some(_), .. },
                EventKind::Device { attribute: attr_b, value: Some(_), .. },
            ) = (&spec_a.event.kind, &spec_b.event.kind)
            {
                if spec_a.event.handle == spec_b.event.handle && attr_a == attr_b {
                    continue;
                }
            }
            // Likewise, two value-specific location-mode events (mode.away vs
            // mode.home) are mutually exclusive and cannot race.
            if matches!(&spec_a.event.kind, EventKind::Mode { value: Some(_) })
                && matches!(&spec_b.event.kind, EventKind::Mode { value: Some(_) })
            {
                continue;
            }
            for ea in &spec_a.effects {
                for eb in &spec_b.effects {
                    if ea.conflicts_with(eb) {
                        let v = Violation::new(
                            PropertyId::General(4),
                            format!(
                                "events {} and {} may race: one sets {}.{} to {}, the other to {}",
                                spec_a.event.kind, spec_b.event.kind, ea.handle, ea.attribute,
                                ea.value, eb.value
                            ),
                            involved(app_a.name, app_b.name),
                        );
                        out.push(flag_reflection(
                            v,
                            spec_a.via_reflection || spec_b.via_reflection,
                        ));
                    }
                }
            }
        }
    }
    out
}

/// S.5: a handler that dispatches on an event value must be subscribed to that event.
fn check_s5(apps: &[AppUnderTest<'_>]) -> Vec<Violation> {
    let mut out = Vec::new();
    for app in apps {
        for (handler, summary) in app.summaries {
            if summary.evt_value_cases.is_empty() {
                continue;
            }
            let subs = app.ir.subscriptions_of(handler);
            for case in &summary.evt_value_cases {
                let covered = subs.iter().any(|s| match &s.event.kind {
                    EventKind::Device { value, .. } => {
                        value.is_none() || value.as_deref() == Some(case.as_str())
                    }
                    EventKind::Mode { value } => {
                        value.is_none() || value.as_deref() == Some(case.as_str())
                    }
                    EventKind::AppTouch | EventKind::Timer { .. } => true,
                });
                if !covered {
                    out.push(Violation::new(
                        PropertyId::General(5),
                        format!(
                            "handler {handler} handles the event value \"{case}\" but the app does not subscribe it to that event"
                        ),
                        vec![app.name.to_string()],
                    ));
                }
            }
        }
    }
    out
}

fn same_event(a: &soteria_analysis::TransitionSpec, b: &soteria_analysis::TransitionSpec) -> bool {
    a.event.handle == b.event.handle && a.event.kind == b.event.kind
}

fn involved(a: &str, b: &str) -> Vec<String> {
    if a == b {
        vec![a.to_string()]
    } else {
        vec![a.to_string(), b.to_string()]
    }
}

fn flag_reflection(v: Violation, via_reflection: bool) -> Violation {
    if via_reflection {
        v.as_possible_false_positive()
    } else {
        v
    }
}

fn dedup(mut violations: Vec<Violation>) -> Vec<Violation> {
    violations.sort_by(|a, b| (a.property, &a.description).cmp(&(b.property, &b.description)));
    violations.dedup_by(|a, b| a.property == b.property && a.description == b.description);
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_analysis::{AnalysisConfig, SymbolicExecutor};
    use soteria_ir::AppIr;
    use std::collections::BTreeMap;

    struct Analyzed {
        ir: AppIr,
        specs: Vec<soteria_analysis::TransitionSpec>,
        summaries: BTreeMap<String, soteria_analysis::HandlerSummary>,
    }

    fn analyze(src: &str) -> Analyzed {
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("app", src, &registry).unwrap();
        let exec = SymbolicExecutor::new(&ir, &registry, AnalysisConfig::paper());
        let specs = exec.transition_specs();
        let summaries = exec.handler_summaries();
        Analyzed { ir, specs, summaries }
    }

    fn check_one(a: &Analyzed) -> Vec<Violation> {
        let registry = CapabilityRegistry::standard();
        let apps = [AppUnderTest {
            name: a.ir.name.as_str(),
            ir: &a.ir,
            specs: &a.specs,
            summaries: &a.summaries,
        }];
        check_general(&apps, &registry)
    }

    fn check_two(a: &Analyzed, b: &Analyzed) -> Vec<Violation> {
        let registry = CapabilityRegistry::standard();
        let apps = [
            AppUnderTest { name: a.ir.name.as_str(), ir: &a.ir, specs: &a.specs, summaries: &a.summaries },
            AppUnderTest { name: b.ir.name.as_str(), ir: &b.ir, specs: &b.specs, summaries: &b.summaries },
        ];
        check_general(&apps, &registry)
    }

    #[test]
    fn s1_conflicting_values_on_one_path() {
        let a = analyze(
            r#"
            definition(name: "TP7")
            preferences { section("d") { input "the_light", "capability.switch" } }
            def installed() { subscribe(app, appTouch, h) }
            def h(evt) {
                the_light.on()
                the_light.off()
            }
        "#,
        );
        let v = check_one(&a);
        assert!(v.iter().any(|v| v.property == PropertyId::General(1)));
    }

    #[test]
    fn s2_repeated_same_value() {
        let a = analyze(
            r#"
            definition(name: "TP9")
            preferences { section("d") {
                input "the_door", "capability.lock"
                input "contact", "capability.contactSensor"
            } }
            def installed() { subscribe(contact, "contact.closed", h) }
            def h(evt) {
                the_door.lock()
                the_door.lock()
            }
        "#,
        );
        let v = check_one(&a);
        assert!(v.iter().any(|v| v.property == PropertyId::General(2)));
        assert!(!v.iter().any(|v| v.property == PropertyId::General(1)));
    }

    #[test]
    fn s3_complement_events_same_value() {
        let a = analyze(
            r#"
            definition(name: "S3App")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "contact", "capability.contactSensor"
            } }
            def installed() {
                subscribe(contact, "contact.open", h1)
                subscribe(contact, "contact.closed", h2)
            }
            def h1(evt) { sw.on() }
            def h2(evt) { sw.on() }
        "#,
        );
        let v = check_one(&a);
        assert!(v.iter().any(|v| v.property == PropertyId::General(3)));
    }

    #[test]
    fn s4_race_between_non_complement_events() {
        let a = analyze(
            r#"
            definition(name: "App7")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "presence", "capability.presenceSensor"
            } }
            def installed() {
                subscribe(presence, "presence.present", h1)
                runIn(3600, h2)
            }
            def h1(evt) { sw.on() }
            def h2() { sw.off() }
        "#,
        );
        let v = check_one(&a);
        assert!(v.iter().any(|v| v.property == PropertyId::General(4)));
    }

    #[test]
    fn complementary_on_off_is_not_a_race() {
        let a = analyze(
            r#"
            definition(name: "Benign")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "m", "capability.motionSensor"
            } }
            def installed() {
                subscribe(m, "motion.active", h1)
                subscribe(m, "motion.inactive", h2)
            }
            def h1(evt) { sw.on() }
            def h2(evt) { sw.off() }
        "#,
        );
        let v = check_one(&a);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn s5_unsubscribed_event_case() {
        let a = analyze(
            r#"
            definition(name: "App8")
            preferences { section("d") {
                input "the_door", "capability.lock"
                input "m", "capability.motionSensor"
            } }
            def installed() {
                subscribe(m, "motion.active", motionHandler)
            }
            def motionHandler(evt) {
                if (evt.value == "active") { the_door.lock() }
                if (evt.value == "inactive") { the_door.unlock() }
            }
        "#,
        );
        let v = check_one(&a);
        // The "inactive" case is handled but never subscribed.
        let s5: Vec<&Violation> =
            v.iter().filter(|v| v.property == PropertyId::General(5)).collect();
        assert_eq!(s5.len(), 1);
        assert!(s5[0].description.contains("inactive"));
    }

    #[test]
    fn cross_app_s1_when_same_event_conflicts() {
        // The paper's Smoke-Alarm + App2 example: the smoke-detected event makes one
        // app turn the switch on and the other turn it off.
        let smoke_alarm = analyze(
            r#"
            definition(name: "Smoke-Alarm")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "smoke", "capability.smokeDetector"
            } }
            def installed() { subscribe(smoke, "smoke.detected", h) }
            def h(evt) { sw.on() }
        "#,
        );
        let app2 = analyze(
            r#"
            definition(name: "App2")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "smoke", "capability.smokeDetector"
            } }
            def installed() { subscribe(smoke, "smoke.detected", h) }
            def h(evt) { sw.off() }
        "#,
        );
        let v = check_two(&smoke_alarm, &app2);
        let s1: Vec<&Violation> =
            v.iter().filter(|v| v.property == PropertyId::General(1)).collect();
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].apps, vec!["Smoke-Alarm".to_string(), "App2".to_string()]);
        // Individually, neither app violates anything.
        assert!(check_one(&smoke_alarm).is_empty());
        assert!(check_one(&app2).is_empty());
    }

    #[test]
    fn cross_app_s2_when_same_event_repeats() {
        let a = analyze(
            r#"
            definition(name: "O8")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "contact", "capability.contactSensor"
            } }
            def installed() { subscribe(contact, "contact.closed", h) }
            def h(evt) { sw.off() }
        "#,
        );
        let b = analyze(
            r#"
            definition(name: "TP12")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "contact", "capability.contactSensor"
            } }
            def installed() { subscribe(contact, "contact.closed", h) }
            def h(evt) { sw.off() }
        "#,
        );
        let v = check_two(&a, &b);
        assert!(v.iter().any(|v| v.property == PropertyId::General(2)));
    }
}
