//! The property catalogue: descriptions of S.1–S.5 and P.1–P.30 (Appendix B of the
//! paper) and, for app-specific properties, the device capabilities a target must
//! declare for the property to apply.

use crate::violation::PropertyId;

/// Catalogue entry for one property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyInfo {
    /// Identifier (S.n or P.n).
    pub id: PropertyId,
    /// Short description (condensed from the paper's Appendix B tables).
    pub description: &'static str,
    /// Device capabilities required for the property to apply. Empty for general
    /// properties (they apply to every app). The pseudo-capability `"location"`
    /// denotes the location-mode abstract device.
    pub required_capabilities: &'static [&'static str],
}

/// The five general properties (Appendix B, Table 1).
pub const GENERAL_PROPERTIES: &[PropertyInfo] = &[
    PropertyInfo {
        id: PropertyId::General(1),
        description: "An event handler must not change a device attribute to conflicting values on the same control-flow path",
        required_capabilities: &[],
    },
    PropertyInfo {
        id: PropertyId::General(2),
        description: "An event handler must not change a device attribute to the same value multiple times on the same control-flow path",
        required_capabilities: &[],
    },
    PropertyInfo {
        id: PropertyId::General(3),
        description: "Event handlers of complement events must not change a device attribute to the same value",
        required_capabilities: &[],
    },
    PropertyInfo {
        id: PropertyId::General(4),
        description: "Two or more non-complement event handlers must not change a device attribute to conflicting values (race condition)",
        required_capabilities: &[],
    },
    PropertyInfo {
        id: PropertyId::General(5),
        description: "An event dispatched on by a handler must be subscribed by that handler",
        required_capabilities: &[],
    },
];

/// The thirty application-specific properties (Appendix B, Table 2), condensed.
pub const APP_SPECIFIC_PROPERTIES: &[PropertyInfo] = &[
    PropertyInfo {
        id: PropertyId::AppSpecific(1),
        description: "The door must be locked when the user is not present at home or sleeping",
        required_capabilities: &["lock", "presenceSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(2),
        description: "The lights must be turned on if the motion sensor is active",
        required_capabilities: &["switch", "motionSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(3),
        description: "When there is smoke, the lights must be on if it is night, and the door must be unlocked",
        required_capabilities: &["smokeDetector", "lock"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(4),
        description: "The light must be on when the user arrives home",
        required_capabilities: &["switch", "presenceSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(5),
        description: "Camera-controlled doors must be closed when the door is clear of any objects",
        required_capabilities: &["doorControl", "contactSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(6),
        description: "The garage door must be open when people arrive home and closed when people leave home",
        required_capabilities: &["garageDoorControl", "presenceSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(7),
        description: "The location beacon must be inside the geofence to turn on the lights and open the garage door",
        required_capabilities: &["garageDoorControl", "beacon"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(8),
        description: "The lights must be turned off when the sleep sensor detects the user is sleeping",
        required_capabilities: &["switch", "sleepSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(9),
        description: "The security system must not be disarmed when the user is not at home",
        required_capabilities: &["securitySystem", "presenceSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(10),
        description: "The alarm must sound when there is smoke or carbon monoxide",
        required_capabilities: &["alarm", "smokeDetector"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(11),
        description: "The valve must be closed when the water sensor is wet and the user-specified water level is reached",
        required_capabilities: &["valve", "waterSensor", "waterLevel"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(12),
        description: "Devices (light switches, cabinets, drawers) must not be open or on when the user is not at home or sleeping",
        required_capabilities: &["switch", "location"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(13),
        description: "Appliance functionality (coffee machine, crock-pot, music) must not be used when the user is not at home",
        required_capabilities: &["musicPlayer", "location"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(14),
        description: "The refrigerator, alarm, and security system must not be disabled to save energy",
        required_capabilities: &["securitySystem", "location"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(15),
        description: "The temperature must follow the user-defined operating-mode values when there is motion",
        required_capabilities: &["thermostat", "motionSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(16),
        description: "The thermostat temperature entered by the user must be applied when the mode changes",
        required_capabilities: &["thermostat", "location"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(17),
        description: "The AC and the heater must not be on at the same time",
        required_capabilities: &["switch", "location"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(18),
        description: "HVACs, fans, heaters and dehumidifiers must be off when temperature and humidity are outside the user-defined zone",
        required_capabilities: &["switch", "relativeHumidityMeasurement"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(19),
        description: "The AC must be on when the user is within a specified distance of the house",
        required_capabilities: &["switch", "beacon"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(20),
        description: "The security camera must take pictures when there is motion and contact sensors are active",
        required_capabilities: &["imageCapture", "motionSensor", "contactSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(21),
        description: "The security camera must take a photo and the alarm must sound when doors open during user-specified times",
        required_capabilities: &["imageCapture", "alarm", "contactSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(22),
        description: "The battery level of devices must not fall below the user-specified threshold unnoticed",
        required_capabilities: &["battery"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(23),
        description: "The door must not be unlocked when the camera does not recognise an authorised face",
        required_capabilities: &["lock", "imageCapture"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(24),
        description: "The windows must not be open when the heater is on",
        required_capabilities: &["windowShade", "thermostat"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(25),
        description: "The bell must not chime when the door is closed",
        required_capabilities: &["alarm", "contactSensor", "button"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(26),
        description: "The alarm must go off when the main door is left open for longer than the user-specified duration",
        required_capabilities: &["alarm", "contactSensor", "timerOnly"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(27),
        description: "The mode must be set to home when the user is at home and away when the user is not at home",
        required_capabilities: &["presenceSensor", "location"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(28),
        description: "The sound system must not play music or read announcements during the sleeping mode",
        required_capabilities: &["musicPlayer", "location"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(29),
        description: "The sprinkler/flood sensor must activate the alarm when there is water and stay quiet otherwise",
        required_capabilities: &["alarm", "waterSensor"],
    },
    PropertyInfo {
        id: PropertyId::AppSpecific(30),
        description: "The water valve must shut off when the water/moisture sensor detects a leak",
        required_capabilities: &["valve", "waterSensor"],
    },
];

/// Looks up a property's catalogue entry.
pub fn property_info(id: PropertyId) -> Option<&'static PropertyInfo> {
    GENERAL_PROPERTIES
        .iter()
        .chain(APP_SPECIFIC_PROPERTIES.iter())
        .find(|p| p.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_sizes_match_paper() {
        assert_eq!(GENERAL_PROPERTIES.len(), 5);
        assert_eq!(APP_SPECIFIC_PROPERTIES.len(), 30);
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        for (i, p) in GENERAL_PROPERTIES.iter().enumerate() {
            assert_eq!(p.id, PropertyId::General(i as u8 + 1));
        }
        for (i, p) in APP_SPECIFIC_PROPERTIES.iter().enumerate() {
            assert_eq!(p.id, PropertyId::AppSpecific(i as u8 + 1));
        }
    }

    #[test]
    fn lookup_by_id() {
        let p30 = property_info(PropertyId::AppSpecific(30)).unwrap();
        assert!(p30.description.contains("water valve"));
        assert!(p30.required_capabilities.contains(&"valve"));
        assert!(property_info(PropertyId::AppSpecific(31)).is_none());
        assert!(property_info(PropertyId::General(5)).is_some());
    }

    #[test]
    fn general_properties_apply_everywhere() {
        assert!(GENERAL_PROPERTIES.iter().all(|p| p.required_capabilities.is_empty()));
        assert!(APP_SPECIFIC_PROPERTIES.iter().all(|p| !p.required_capabilities.is_empty()));
    }
}
