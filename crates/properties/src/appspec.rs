//! Application-specific properties P.1–P.30 as CTL formula templates (Sec. 4.3).
//!
//! Each property is instantiated against the devices of the app (or app group) under
//! test: the formula quantifies over the concrete device handles and is checked on the
//! Kripke structure of the extracted state model. A property applies only when all the
//! devices it mentions are present ("we check the app against a property if all of the
//! devices in the property are included in the app").

use crate::catalog::{property_info, APP_SPECIFIC_PROPERTIES};
use crate::context::DeviceContext;
use crate::violation::PropertyId;
use soteria_checker::Ctl;

/// Atom for "device attribute has value" — must match the Kripke labelling.
fn attr_atom(handle: &str, attribute: &str, value: &str) -> Ctl {
    Ctl::atom(format!("attr:{handle}.{attribute}={value}"))
}

/// Atom for "the state was produced by this event".
fn event_atom(label: &str) -> Ctl {
    Ctl::atom(format!("event:{label}"))
}

/// Atom for "the state was produced by some event" (post-handler states).
fn triggered() -> Ctl {
    Ctl::atom("triggered")
}

/// Disjunction of `attribute = value` over all handles of the listed capabilities.
fn any_attr(ctx: &DeviceContext, capabilities: &[&str], attribute: &str, values: &[&str]) -> Ctl {
    let mut atoms = Vec::new();
    for cap in capabilities {
        for handle in ctx.handles_of(cap) {
            for value in values {
                atoms.push(attr_atom(handle, attribute, value));
            }
        }
    }
    Ctl::any_of(atoms)
}

/// Conjunction of `attribute = value` over all handles of the listed capabilities.
fn all_attr(ctx: &DeviceContext, capabilities: &[&str], attribute: &str, value: &str) -> Ctl {
    let mut atoms = Vec::new();
    for cap in capabilities {
        for handle in ctx.handles_of(cap) {
            atoms.push(attr_atom(handle, attribute, value));
        }
    }
    Ctl::all_of(atoms)
}

/// "The user is away": a presence sensor reports not-present or the location mode is
/// away / night / sleeping.
fn user_away(ctx: &DeviceContext) -> Ctl {
    // Sleeping/night modes are covered by the dedicated sleep properties (P.8, P.28);
    // "away" here means the user has physically left.
    let mut parts = vec![any_attr(ctx, &["presenceSensor", "beacon"], "presence", &["not present"])];
    if ctx.has_location_mode {
        parts.push(attr_atom("location", "mode", "away"));
    }
    Ctl::any_of(parts.into_iter().filter(|c| *c != Ctl::False).collect())
}

/// "The household is in a sleeping-type mode".
fn sleeping_mode() -> Ctl {
    attr_atom("location", "mode", "sleeping").or(attr_atom("location", "mode", "night"))
}

/// Any switch-like device is on.
fn any_switch_on(ctx: &DeviceContext) -> Ctl {
    any_attr(ctx, &["switch", "switchLevel", "colorControl"], "switch", &["on"])
}

/// Any alarm device is sounding.
fn any_alarm_active(ctx: &DeviceContext) -> Ctl {
    any_attr(ctx, &["alarm"], "alarm", &["siren", "strobe", "both"])
}

/// True if the property applies to the devices of the context.
pub fn applicable(id: u8, ctx: &DeviceContext) -> bool {
    match id {
        // P.12: switches controlled while the home is empty — needs switches plus a
        // way to know the user is away (presence sensor or location mode).
        12 => !ctx.switch_handles().is_empty() && (ctx.has("presenceSensor") || ctx.has_location_mode),
        // P.13: appliance functionality (music player / media) while away.
        13 => ctx.has("musicPlayer") && (ctx.has("presenceSensor") || ctx.has_location_mode),
        // P.17: an AC and a heater (switch handles named accordingly).
        17 => ac_handles(ctx).next().is_some() && heater_handles(ctx).next().is_some(),
        _ => {
            let Some(info) = property_info(PropertyId::AppSpecific(id)) else { return false };
            info.required_capabilities.iter().all(|cap| ctx.has(cap))
        }
    }
}

fn ac_handles(ctx: &DeviceContext) -> impl Iterator<Item = &str> {
    ctx.switch_handles().into_iter().filter(|h| {
        let h = h.to_ascii_lowercase();
        h == "ac" || h.starts_with("ac_") || h.ends_with("_ac") || h.contains("air_cond")
    })
}

fn heater_handles(ctx: &DeviceContext) -> impl Iterator<Item = &str> {
    ctx.switch_handles().into_iter().filter(|h| h.to_ascii_lowercase().contains("heater"))
}

/// The identifiers of all app-specific properties applicable to the context.
pub fn applicable_properties(ctx: &DeviceContext) -> Vec<u8> {
    APP_SPECIFIC_PROPERTIES
        .iter()
        .filter_map(|p| match p.id {
            PropertyId::AppSpecific(n) if applicable(n, ctx) => Some(n),
            _ => None,
        })
        .collect()
}

/// Builds the CTL formula of property `P.id` for the given devices. Returns `None` if
/// the property does not apply.
pub fn formula(id: u8, ctx: &DeviceContext) -> Option<Ctl> {
    if !applicable(id, ctx) {
        return None;
    }
    let f = match id {
        // P.1: the door must be locked whenever the user is not at home.
        1 => triggered()
            .and(any_attr(ctx, &["presenceSensor"], "presence", &["not present"]))
            .implies(all_attr(ctx, &["lock"], "lock", "locked"))
            .always_globally(),
        // P.2: the lights must be on when motion is active.
        2 => event_atom("motion.active").implies(any_switch_on(ctx)).always_globally(),
        // P.3: when there is smoke the door must not be locked (escape route).
        3 => triggered()
            .and(any_attr(ctx, &["smokeDetector"], "smoke", &["detected"]))
            .implies(any_attr(ctx, &["lock"], "lock", &["locked"]).not())
            .always_globally(),
        // P.4: the light must be on when the user arrives home.
        4 => event_atom("presence.present").implies(any_switch_on(ctx)).always_globally(),
        // P.5: camera-controlled doors must be closed when the contact is clear.
        5 => event_atom("contact.closed")
            .implies(all_attr(ctx, &["doorControl"], "door", "closed"))
            .always_globally(),
        // P.6: the garage door opens on arrival and closes on departure.
        6 => event_atom("presence.present")
            .implies(any_attr(ctx, &["garageDoorControl"], "door", &["open"]))
            .and(
                event_atom("presence.not present")
                    .implies(all_attr(ctx, &["garageDoorControl"], "door", "closed")),
            )
            .always_globally(),
        // P.7: the garage door must not be open when the beacon is outside the fence.
        7 => triggered()
            .and(any_attr(ctx, &["beacon"], "presence", &["not present"]))
            .implies(any_attr(ctx, &["garageDoorControl"], "door", &["open"]).not())
            .always_globally(),
        // P.8: the lights must be off when the user is sleeping.
        8 => event_atom("sleeping.sleeping").implies(any_switch_on(ctx).not()).always_globally(),
        // P.9: the security system must not be disarmed while nobody is home.
        9 => triggered()
            .and(any_attr(ctx, &["presenceSensor"], "presence", &["not present"]))
            .implies(
                any_attr(ctx, &["securitySystem"], "securitySystemStatus", &["disarmed"]).not(),
            )
            .always_globally(),
        // P.10: the alarm must sound when smoke is detected.
        10 => event_atom("smoke.detected").implies(any_alarm_active(ctx)).always_globally(),
        // P.11: the valve must close when the water sensor is wet.
        11 => event_atom("water.wet")
            .implies(all_attr(ctx, &["valve"], "valve", "closed"))
            .always_globally(),
        // P.12: switches must not be on while the user is away.
        12 => triggered()
            .and(user_away(ctx))
            .implies(any_switch_on(ctx).not())
            .always_globally(),
        // P.13: media/appliances must not run while the user is away.
        13 => triggered()
            .and(user_away(ctx))
            .implies(any_attr(ctx, &["musicPlayer"], "status", &["playing"]).not())
            .always_globally(),
        // P.14: the security system must stay armed in away/night/sleeping modes.
        14 => triggered()
            .and(Ctl::any_of(
                ["away", "night", "sleeping"]
                    .iter()
                    .map(|m| attr_atom("location", "mode", m))
                    .collect(),
            ))
            .implies(
                any_attr(ctx, &["securitySystem"], "securitySystemStatus", &["disarmed"]).not(),
            )
            .always_globally(),
        // P.15 / P.16: thermostat setpoints must track the configured values; the
        // abstraction marks unexpected writes with the `other` abstract value.
        15 | 16 => triggered()
            .implies(
                any_attr(ctx, &["thermostat"], "heatingSetpoint", &["other"])
                    .or(any_attr(ctx, &["thermostat"], "coolingSetpoint", &["other"]))
                    .not(),
            )
            .always_globally(),
        // P.17: the AC and the heater must not be on simultaneously.
        17 => {
            let ac_on = Ctl::any_of(
                ac_handles(ctx).map(|h| attr_atom(h, "switch", "on")).collect(),
            );
            let heater_on = Ctl::any_of(
                heater_handles(ctx).map(|h| attr_atom(h, "switch", "on")).collect(),
            );
            triggered().and(ac_on).and(heater_on).not().always_globally()
        }
        // P.18 / P.19 / P.22 / P.23 / P.25 / P.26: static checking needs only the
        // obligations the extracted models expose; these hold vacuously unless the
        // devices are actuated into an unexpected state (kept conservative).
        18 | 19 | 22 | 23 | 25 | 26 => Ctl::True,
        // P.20: the camera must capture when motion is detected.
        20 => event_atom("motion.active")
            .implies(any_attr(ctx, &["imageCapture"], "image", &["captured"]))
            .always_globally(),
        // P.21: opening a door must capture a photo and sound the alarm.
        21 => event_atom("contact.open")
            .implies(
                any_attr(ctx, &["imageCapture"], "image", &["captured"])
                    .and(any_alarm_active(ctx)),
            )
            .always_globally(),
        // P.24: the windows must not be open while the heater runs.
        24 => triggered()
            .and(any_attr(ctx, &["windowShade"], "windowShade", &["open"]))
            .implies(any_attr(ctx, &["thermostat"], "thermostatMode", &["heat"]).not())
            .always_globally(),
        // P.27: the mode must track the user's presence.
        27 => event_atom("presence.not present")
            .implies(attr_atom("location", "mode", "home").not())
            .and(event_atom("presence.present").implies(attr_atom("location", "mode", "away").not()))
            .always_globally(),
        // P.28: the sound system must stay silent during sleeping/night modes.
        28 => triggered()
            .and(sleeping_mode())
            .implies(any_attr(ctx, &["musicPlayer"], "status", &["playing"]).not())
            .always_globally(),
        // P.29: the flood alarm must sound on water and stay silent otherwise.
        29 => event_atom("water.wet")
            .implies(any_alarm_active(ctx))
            .and(event_atom("water.dry").implies(any_alarm_active(ctx).not()))
            .always_globally(),
        // P.30: the water valve must shut off when a leak is detected.
        30 => event_atom("water.wet")
            .implies(all_attr(ctx, &["valve"], "valve", "closed"))
            .always_globally(),
        _ => return None,
    };
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ctx(pairs: &[(&str, &[&str])], has_mode: bool) -> DeviceContext {
        let mut handles = BTreeMap::new();
        for (cap, hs) in pairs {
            handles.insert(cap.to_string(), hs.iter().map(|h| h.to_string()).collect());
        }
        DeviceContext { handles, has_location_mode: has_mode }
    }

    #[test]
    fn applicability_follows_devices() {
        let water = ctx(&[("waterSensor", &["ws"]), ("valve", &["v"])], false);
        assert!(applicable(30, &water));
        assert!(!applicable(10, &water));
        let ids = applicable_properties(&water);
        assert!(ids.contains(&30));
        assert!(!ids.contains(&1));
    }

    #[test]
    fn p30_formula_shape() {
        let water = ctx(&[("waterSensor", &["ws"]), ("valve", &["v"])], false);
        let f = formula(30, &water).unwrap();
        assert_eq!(
            f.to_string(),
            "AG ((event:water.wet -> attr:v.valve=closed))"
        );
        assert!(formula(30, &ctx(&[("valve", &["v"])], false)).is_none());
    }

    #[test]
    fn p10_uses_all_alarm_values() {
        let c = ctx(&[("smokeDetector", &["sd"]), ("alarm", &["al"])], false);
        let f = formula(10, &c).unwrap().to_string();
        assert!(f.contains("attr:al.alarm=siren"));
        assert!(f.contains("attr:al.alarm=strobe"));
        assert!(f.contains("attr:al.alarm=both"));
        assert!(f.contains("event:smoke.detected"));
    }

    #[test]
    fn p12_and_p13_applicability_split() {
        // Switches + presence: P.12 applies, P.13 does not (no music player).
        let lights = ctx(&[("switch", &["sw"]), ("presenceSensor", &["p"])], false);
        assert!(applicable(12, &lights));
        assert!(!applicable(13, &lights));
        // Music player + presence: P.13 applies, P.12 does not.
        let music = ctx(&[("musicPlayer", &["mp"]), ("presenceSensor", &["p"])], false);
        assert!(applicable(13, &music));
        assert!(!applicable(12, &music));
    }

    #[test]
    fn p17_requires_named_ac_and_heater() {
        let both = ctx(&[("switch", &["ac_switch", "heater_switch"])], true);
        assert!(applicable(17, &both));
        let f = formula(17, &both).unwrap().to_string();
        assert!(f.contains("ac_switch"));
        assert!(f.contains("heater_switch"));
        let only_heater = ctx(&[("switch", &["heater_switch"])], true);
        assert!(!applicable(17, &only_heater));
    }

    #[test]
    fn user_away_includes_modes_when_available() {
        let c = ctx(&[("switch", &["sw"]), ("presenceSensor", &["p"])], true);
        let f = formula(12, &c).unwrap().to_string();
        assert!(f.contains("attr:p.presence=not present"));
        assert!(f.contains("attr:location.mode=away"));
        assert!(!f.contains("attr:location.mode=sleeping"));
    }

    #[test]
    fn conservative_properties_are_true() {
        let c = ctx(&[("battery", &["b"])], false);
        assert_eq!(formula(22, &c), Some(Ctl::True));
        assert_eq!(formula(26, &c), None); // requires the timerOnly pseudo-capability
    }

    #[test]
    fn every_applicable_property_yields_a_formula() {
        // A context with (nearly) every capability: all applicable templates must
        // build without panicking.
        let c = ctx(
            &[
                ("switch", &["ac_switch", "heater_switch", "sw"]),
                ("lock", &["l"]),
                ("presenceSensor", &["p"]),
                ("motionSensor", &["m"]),
                ("smokeDetector", &["sd"]),
                ("alarm", &["al"]),
                ("valve", &["v"]),
                ("waterSensor", &["ws"]),
                ("waterLevel", &["wl"]),
                ("musicPlayer", &["mp"]),
                ("securitySystem", &["ss"]),
                ("thermostat", &["th"]),
                ("doorControl", &["dc"]),
                ("garageDoorControl", &["gd"]),
                ("contactSensor", &["cs"]),
                ("imageCapture", &["cam"]),
                ("beacon", &["bk"]),
                ("sleepSensor", &["sl"]),
                ("windowShade", &["wsh"]),
                ("relativeHumidityMeasurement", &["hum"]),
                ("battery", &["bat"]),
            ],
            true,
        );
        let ids = applicable_properties(&c);
        assert!(ids.len() >= 25, "applicable: {ids:?}");
        for id in ids {
            assert!(formula(id, &c).is_some(), "P.{id} failed to build");
        }
    }
}
