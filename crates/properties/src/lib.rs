//! The Soteria property catalogue and property checks (Sec. 4.3, Appendix B).
//!
//! * [`GENERAL_PROPERTIES`] / [`check_general`] — the five general properties S.1–S.5,
//!   checked structurally on the transition specifications of one or more apps.
//! * [`APP_SPECIFIC_PROPERTIES`] / [`formula`] — the thirty application-specific
//!   properties P.1–P.30 as CTL templates instantiated over the devices of the app or
//!   app group under test; they are verified on the extracted Kripke structure by the
//!   `soteria-checker` crate.
//! * [`Violation`] — the violation report type shared by both kinds of checks.

pub mod appspec;
pub mod catalog;
pub mod context;
pub mod general;
pub mod violation;

pub use appspec::{applicable, applicable_properties, formula};
pub use catalog::{property_info, PropertyInfo, APP_SPECIFIC_PROPERTIES, GENERAL_PROPERTIES};
pub use context::{AppUnderTest, DeviceContext};
pub use general::check_general;
pub use violation::{PropertyId, Violation};
