//! Cooperative in-stage abort: a shared atomic flag threaded from the service
//! into the analysis hot loops.
//!
//! PR 5's cancellation discards a running stage's *result*, but the stage still
//! runs to completion — a 46,944-state union lift nobody wants finishes anyway.
//! An [`AbortHandle`] closes that gap: the owner (a service job control, a
//! deadline sweeper, a drain) flips the flag, and long-running loops poll it at
//! round granularity via [`AbortHandle::bail_if_aborted`], unwinding with a
//! private [`Aborted`] sentinel payload.
//!
//! The unwind deliberately reuses the existing panic plumbing — every fan-out
//! site already funnels worker panics to exactly one `catch_unwind` with
//! first-panic propagation — but travels via [`std::panic::resume_unwind`], so
//! the process panic hook never fires and an abort is silent on stderr. Callers
//! that catch stage payloads tell an abort apart from a genuine fault with
//! [`is_abort_payload`].
//!
//! Handles propagate implicitly through a thread-local ([`with_abort`] installs,
//! [`current_abort`] observes), so deep callees — the model checker's fixpoint
//! loops, the union lift's partition workers — poll without every intermediate
//! signature changing. The pool's scoped maps re-install the caller's handle on
//! their helper threads, so a parallel stage aborts all of its workers, not just
//! the thread that happened to carry the flag.
//!
//! When no handle is installed (every non-service path), polling is a single
//! branch on a `None` — the determinism gates prove the polled engines remain
//! byte-identical to the unpolled ones.

use std::any::Any;
use std::cell::RefCell;
use soteria_sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared abort flag: cloned handles observe the same flag.
///
/// `abort()` is a one-way latch — there is no reset; a fresh stage gets a fresh
/// handle.
#[derive(Clone, Debug, Default)]
pub struct AbortHandle {
    flag: Arc<AtomicBool>,
}

/// The sentinel payload an aborted stage unwinds with.
///
/// Private to the abort machinery in spirit: it only exists so
/// [`is_abort_payload`] can recognise an abort unwind amid genuine panics.
#[derive(Debug)]
pub struct Aborted;

impl AbortHandle {
    /// A fresh, unaborted handle.
    pub fn new() -> Self {
        AbortHandle::default()
    }

    /// Latches the flag; every pollster sharing this handle bails at its next
    /// poll point.
    pub fn abort(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`AbortHandle::abort`] has been called on any clone.
    pub fn is_aborted(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Poll point: unwinds with the [`Aborted`] sentinel when the flag is set.
    ///
    /// Uses [`std::panic::resume_unwind`], so the process panic hook does not
    /// run — aborting a stage prints nothing.
    pub fn bail_if_aborted(&self) {
        if self.is_aborted() {
            std::panic::resume_unwind(Box::new(Aborted));
        }
    }
}

/// True when a caught unwind payload is an abort sentinel rather than a panic.
pub fn is_abort_payload(payload: &(dyn Any + Send)) -> bool {
    payload.downcast_ref::<Aborted>().is_some()
}

thread_local! {
    /// The abort handle governing work on the current thread, if any.
    static CURRENT_ABORT: RefCell<Option<AbortHandle>> = const { RefCell::new(None) };
}

/// The abort handle installed on the current thread, if any. Hot loops capture
/// this once at entry (an `Option` branch per poll, not a thread-local access).
pub fn current_abort() -> Option<AbortHandle> {
    CURRENT_ABORT.with(|slot| slot.borrow().clone())
}

/// Runs `f` with `handle` installed as the current thread's abort handle,
/// restoring the previous handle afterwards (even on unwind), so nested scopes
/// compose. Passing `None` explicitly shields `f` from an outer handle.
pub fn with_abort<R>(handle: Option<AbortHandle>, f: impl FnOnce() -> R) -> R {
    let _scope = install_scoped(handle);
    f()
}

/// Installs `handle` until the returned guard drops — the guard-shaped sibling
/// of [`with_abort`] for worker-loop prologues.
pub(crate) fn install_scoped(handle: Option<AbortHandle>) -> AbortScope {
    let prev = CURRENT_ABORT.with(|slot| slot.replace(handle));
    AbortScope { prev: Some(prev) }
}

pub(crate) struct AbortScope {
    prev: Option<Option<AbortHandle>>,
}

impl Drop for AbortScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT_ABORT.with(|slot| slot.replace(prev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloned_handles_share_the_flag() {
        let handle = AbortHandle::new();
        let clone = handle.clone();
        assert!(!clone.is_aborted());
        handle.abort();
        assert!(clone.is_aborted());
    }

    #[test]
    fn bail_unwinds_with_the_sentinel_payload() {
        let handle = AbortHandle::new();
        handle.bail_if_aborted(); // unaborted: no-op
        handle.abort();
        let payload = std::panic::catch_unwind(|| handle.bail_if_aborted())
            .expect_err("aborted handle must unwind");
        // NB: `&payload` would coerce the *Box* to `&dyn Any` — deref first.
        assert!(is_abort_payload(payload.as_ref()));
        let genuine = std::panic::catch_unwind(|| panic!("real fault"))
            .expect_err("panic must unwind");
        assert!(!is_abort_payload(genuine.as_ref()));
    }

    #[test]
    fn with_abort_installs_and_restores() {
        assert!(current_abort().is_none());
        let handle = AbortHandle::new();
        with_abort(Some(handle.clone()), || {
            let seen = current_abort().expect("handle installed");
            handle.abort();
            assert!(seen.is_aborted());
            // An inner `None` shields from the outer handle...
            with_abort(None, || assert!(current_abort().is_none()));
            // ...and the outer handle is restored afterwards.
            assert!(current_abort().is_some());
        });
        assert!(current_abort().is_none());
    }

    #[test]
    fn with_abort_restores_across_an_unwind() {
        let result = std::panic::catch_unwind(|| {
            with_abort(Some(AbortHandle::new()), || panic!("inner"));
        });
        assert!(result.is_err());
        assert!(current_abort().is_none(), "handle leaked across unwind");
    }
}
