//! Persistent worker pool: long-lived threads draining an injector queue.
//!
//! PR 3's [`scoped_map`](crate::scoped_map) spawns its workers anew on every call,
//! which is measurable on ms-scale workloads (a single-app MalIoT sweep pays
//! 10–20% in thread spawns alone). A [`WorkerPool`] spawns its threads once and
//! keeps them parked on a condvar; work arrives through two doors:
//!
//! * [`WorkerPool::spawn`] — a fire-and-forget `'static` task for the injector
//!   queue (the job-queue door used by `soteria-service`);
//! * [`WorkerPool::install`] — a *scoped* deterministic parallel map over borrowed
//!   data with exactly the [`par_map`](crate::par_map) contract: output identical
//!   to `items.iter().map(f)` at every worker count, dynamic chunk claiming,
//!   sequential fallback, first-panic propagation with the original payload.
//!
//! # How `install` borrows across `'static` tasks
//!
//! Pool tasks are `'static`, but `install` maps over a borrowed slice. The shared
//! job state lives on the caller's stack; helper tasks receive only its address
//! (a `usize`) and reconstruct the reference. This is sound because `install`
//! does not return — not even by unwinding — until every helper task it enqueued
//! has finished running (a completion latch counts them down, and panics inside
//! the chunk loop are caught and re-raised only after the latch reaches zero).
//! The pool itself cannot be dropped mid-call: `install` holds `&self`, and
//! [`WorkerPool`]'s drop joins its threads only after draining the queue.
//!
//! # Determinism and nesting
//!
//! Chunking is identical to `scoped_map` (`len / (threads * 4)` chunks claimed
//! off an atomic counter, reassembled by index), so pooled results are
//! byte-identical to the scoped path for any pool size, requested thread count,
//! and interleaving. Pool threads are permanently marked as parallel workers, and
//! the caller marks itself for the duration of its own chunk loop, so nested
//! fan-out sites resolve to 1 thread instead of oversubscribing (`threads²`).

use std::any::Any;
use std::collections::VecDeque;
use std::panic;
use soteria_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use soteria_sync::{Condvar, Mutex};
use std::sync::{Arc, OnceLock};
use soteria_sync::thread::JoinHandle;

use crate::{enter_par_worker, resolve_threads};

/// A fire-and-forget task on the injector queue.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Observability stamp captured at enqueue time (only when the collector is
/// enabled — `None` costs nothing): the enqueue timestamp, from which the
/// claiming worker records the task's queue-wait interval, and the
/// submitter's trace id, re-installed on the worker for the task's duration
/// so a job's spans land in its trace no matter which thread runs them.
#[derive(Clone, Copy)]
struct TaskObs {
    enqueued_ns: u64,
    trace: soteria_obs::TraceId,
}

/// The identity of one enqueued task, unique for the pool's lifetime.
///
/// Returned by [`WorkerPool::spawn`] and accepted by [`WorkerPool::try_revoke`]
/// — the handle a job queue needs to *remove* work it no longer wants (a
/// cancelled analysis stage) before a worker picks it up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(u64);

struct QueueState {
    tasks: VecDeque<(u64, Task, Option<TaskObs>)>,
    next_id: u64,
    shutdown: bool,
    /// Workers currently inside a claimed task — incremented at claim time,
    /// decremented only after the task's whole epilogue (span close, flush,
    /// utilization counters) has run, so [`WorkerPool::quiesce`] is a real
    /// barrier for everything a task records, not just its side effects.
    busy: usize,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when a task is enqueued or shutdown is requested.
    work_available: Condvar,
    /// Signalled when a worker finishes a task and the pool may have gone
    /// quiet (empty queue, nobody busy) — the condvar behind `quiesce`.
    quiet: Condvar,
    /// Tasks executed over the pool's lifetime (scoped helpers + spawned jobs).
    tasks_executed: AtomicU64,
}

/// A pool of long-lived worker threads fed by an injector queue.
///
/// Construction spawns the threads; drop drains the queue and joins them. One
/// process-wide instance is shared by the analysis batch helpers
/// ([`global_pool`]); transient instances back [`par_map`](crate::par_map) and
/// per-service pools with explicit lifecycles.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("tasks_executed", &self.tasks_executed())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers.max(1)` long-lived threads.
    pub fn new(workers: usize) -> Self {
        // Each worker holds its own `Arc` of the queue state, so the state
        // outlives any thread that is still draining during (or detached by)
        // drop, and transient pools — `par_map` creates one per call — free it
        // when the last worker exits.
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                next_id: 0,
                shutdown: false,
                busy: 0,
            }),
            work_available: Condvar::new(),
            quiet: Condvar::new(),
            tasks_executed: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                soteria_sync::thread::spawn(move || {
                    // Pool threads are parallel workers for their whole lifetime:
                    // anything they run resolves nested fan-out to 1 thread.
                    let _guard = enter_par_worker();
                    worker_loop(&shared);
                })
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of long-lived worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Total tasks executed since the pool started (scoped helpers + spawned
    /// jobs) — a cheap liveness/throughput counter for service stats.
    pub fn tasks_executed(&self) -> u64 {
        self.shared.tasks_executed.load(Ordering::Relaxed)
    }

    /// Enqueues a `'static` task on the injector queue, returning its identity
    /// (the handle [`WorkerPool::try_revoke`] accepts).
    ///
    /// Tasks run in FIFO order on whichever worker frees up first. A task that
    /// panics takes its worker thread down silently is *not* acceptable for a
    /// long-lived service, so the worker loop catches the panic and drops the
    /// payload — submitters that care about failures report them through their
    /// own result channel (the service's tickets do).
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) -> TaskId {
        let obs = if soteria_obs::enabled() {
            Some(TaskObs {
                enqueued_ns: soteria_obs::now_ns(),
                trace: soteria_obs::current_trace(),
            })
        } else {
            None
        };
        let mut queue = self.shared.queue.lock();
        let id = queue.next_id;
        queue.next_id += 1;
        queue.tasks.push_back((id, Box::new(task), obs));
        drop(queue);
        self.shared.work_available.notify_one();
        TaskId(id)
    }

    /// Removes a still-queued task from the injector queue.
    ///
    /// Returns `true` when the task was found in the queue and removed — it
    /// will never run. Returns `false` when it was not found: a worker already
    /// claimed it (it is running or finished), or it never belonged to this
    /// pool. The search and removal happen under the queue lock, so revocation
    /// cannot race a worker's claim — exactly one side wins, and the caller
    /// knows which. A `false` caller that still wants the task's *effects*
    /// suppressed must coordinate with the task itself (the service's job
    /// controls carry a cancelled flag the task checks before doing work).
    ///
    /// The revoked closure is dropped outside the lock (dropping it can release
    /// arbitrary captured state).
    pub fn try_revoke(&self, id: TaskId) -> bool {
        let mut queue = self.shared.queue.lock();
        let revoked = queue
            .tasks
            .iter()
            .position(|(task_id, _, _)| *task_id == id.0)
            .and_then(|index| queue.tasks.remove(index));
        drop(queue);
        revoked.is_some()
    }

    /// Blocks until the injector queue is empty and no worker is inside a task
    /// — including the task epilogue, where a worker closes and flushes its
    /// observability spans. After `quiesce` returns, every span of every task
    /// spawned before the call is in the global collector; a settled job
    /// ticket alone does *not* guarantee that (settling happens inside the
    /// task, before the worker's `pool.run` span closes).
    ///
    /// Must not be called from one of the pool's own workers (it would wait
    /// for itself); scoped `install` helpers don't call it.
    pub fn quiesce(&self) {
        let mut queue = self.shared.queue.lock();
        while !queue.tasks.is_empty() || queue.busy > 0 {
            queue = self.shared.quiet.wait(queue);
        }
    }

    /// Maps `f` over `items` on the caller plus up to `threads - 1` pool workers,
    /// returning results in input order — the pooled equivalent of
    /// [`par_map`](crate::par_map), byte-identical to it (and to the sequential
    /// map) for every `threads` value, pool size, and scheduling.
    ///
    /// With `threads <= 1`, a single item, or an empty slice, `f` runs entirely
    /// on the caller's thread and the pool is not touched.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic with its original payload after all
    /// participating workers have stopped (unclaimed chunks are abandoned).
    pub fn install<T, R, F>(&self, items: &[T], threads: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // On a parallel worker (this pool's or any other's) run sequentially: the
        // outer fan-out owns the machine, and blocking a pool worker on helpers
        // that need this very pool would deadlock a width-1 pool.
        let threads = if crate::in_par_worker() { 1 } else { threads.max(1).min(items.len()) };
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let job = ScopedJob::new(items, &f, threads);
        // Helpers beyond the pool's width still produce correct results (they
        // queue behind the others and usually find no chunks left), but they buy
        // no concurrency — don't enqueue more than the pool can run.
        let helpers = (threads - 1).min(self.workers());
        *job.latch.lock() = helpers;
        let job_addr = &job as *const ScopedJob<'_, T, R, F> as usize;
        for _ in 0..helpers {
            // SAFETY (of the later deref): `job` outlives every enqueued task
            // because `install` blocks on the completion latch below before
            // returning, and each task counts down exactly once.
            self.spawn(move || {
                let job = unsafe { &*(job_addr as *const ScopedJob<'_, T, R, F>) };
                job.run_chunks();
                job.complete_helper();
            });
        }

        // The caller participates too (marked as a worker so its items resolve
        // nested fan-out sequentially, exactly like the pool threads).
        {
            let _guard = enter_par_worker();
            job.run_chunks();
        }
        let mut outstanding = job.latch.lock();
        while *outstanding > 0 {
            outstanding = job.done.wait(outstanding);
        }
        drop(outstanding);
        job.into_output()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock();
            queue.shutdown = true;
        }
        self.shared.work_available.notify_all();
        let current = std::thread::current().id();
        for handle in self.handles.drain(..) {
            // A pool can be dropped *from one of its own workers* — the last
            // task holding the owning service's Arc finishes there. Joining
            // ourselves would deadlock; detaching is safe because the worker
            // owns its own Arc of `Shared` and exits at the shutdown flag.
            if handle.thread().id() == current {
                continue;
            }
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Stamped only while the collector is on: the interval from here to
        // the successful claim is this worker's idle time (condvar waits
        // included), split from run time in the pool-utilization counters.
        let idle_from = if soteria_obs::enabled() { Some(soteria_obs::now_ns()) } else { None };
        let (task, obs) = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some((_, task, obs)) = queue.tasks.pop_front() {
                    // Claim and busy-mark under one lock: `quiesce` can never
                    // observe the gap between a popped task and a busy worker.
                    queue.busy += 1;
                    break (task, obs);
                }
                // Drain-then-exit on shutdown: every already-enqueued task still
                // runs (scoped jobs count on it, and a dropped service should
                // finish accepted work).
                if queue.shutdown {
                    return;
                }
                queue = shared.work_available.wait(queue);
            }
        };
        shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
        let claimed_ns = idle_from.map(|from| {
            let now = soteria_obs::now_ns();
            soteria_obs::add("pool.idle_ns", now.saturating_sub(from));
            now
        });
        if let Some(obs) = obs {
            soteria_obs::record_span(
                "pool.queue_wait",
                obs.trace,
                obs.enqueued_ns,
                claimed_ns.unwrap_or_else(soteria_obs::now_ns),
            );
        }
        // A panicking job must not take the worker thread with it. Scoped jobs
        // catch their own panics (and re-raise on the caller); service jobs
        // report failures through their tickets.
        {
            // Re-install the submitter's trace so everything the task records
            // (stage spans, checker fixpoints) lands in the owning job's trace.
            let _trace = obs.map(|o| soteria_obs::install_trace(o.trace));
            let _run = if obs.is_some() { Some(soteria_obs::span("pool.run")) } else { None };
            let _ = panic::catch_unwind(panic::AssertUnwindSafe(task));
        }
        if let Some(claimed) = claimed_ns {
            soteria_obs::add(
                "pool.busy_ns",
                soteria_obs::now_ns().saturating_sub(claimed),
            );
        }
        {
            // The spans above are closed and flushed; only now does the worker
            // stop counting as busy (the `quiesce` barrier contract).
            let mut queue = shared.queue.lock();
            queue.busy -= 1;
            if queue.busy == 0 && queue.tasks.is_empty() {
                shared.quiet.notify_all();
            }
        }
    }
}

/// The on-stack state of one `install` call, shared with its helper tasks by
/// address.
struct ScopedJob<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    chunk_len: usize,
    chunk_count: usize,
    next_chunk: AtomicUsize,
    abort: AtomicBool,
    /// The caller's in-stage abort handle, re-installed on every helper thread
    /// so an aborted stage stops all of its workers (`crate::current_abort`).
    stage_abort: Option<crate::AbortHandle>,
    finished: Mutex<Vec<(usize, Vec<R>)>>,
    first_panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion latch: helper tasks that have not yet finished running.
    latch: Mutex<usize>,
    done: Condvar,
}

impl<'a, T, R, F> ScopedJob<'a, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    fn new(items: &'a [T], f: &'a F, threads: usize) -> Self {
        // Identical chunking to `scoped_map`: a few chunks per requested worker —
        // large enough to keep the collection mutex cold, small enough that one
        // expensive chunk doesn't serialize the tail.
        let chunk_len = items.len().div_ceil(threads * 4).max(1);
        let chunk_count = items.len().div_ceil(chunk_len);
        ScopedJob {
            items,
            f,
            chunk_len,
            chunk_count,
            next_chunk: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            stage_abort: crate::current_abort(),
            finished: Mutex::new(Vec::with_capacity(chunk_count)),
            first_panic: Mutex::new(None),
            latch: Mutex::new(0),
            done: Condvar::new(),
        }
    }

    /// Claims and maps chunks until none are left or a panic aborted the job.
    fn run_chunks(&self) {
        let _abort_scope = crate::abort::install_scoped(self.stage_abort.clone());
        loop {
            if self.abort.load(Ordering::Relaxed) {
                break;
            }
            let chunk = self.next_chunk.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.chunk_count {
                break;
            }
            let start = chunk * self.chunk_len;
            let end = (start + self.chunk_len).min(self.items.len());
            let mapped = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                self.items[start..end].iter().map(self.f).collect::<Vec<R>>()
            }));
            match mapped {
                Ok(mapped) => self.finished.lock().push((chunk, mapped)),
                Err(payload) => {
                    self.abort.store(true, Ordering::Relaxed);
                    let mut slot = self.first_panic.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    break;
                }
            }
        }
    }

    /// Counts one helper task down; wakes the caller when all have finished.
    fn complete_helper(&self) {
        let mut latch = self.latch.lock();
        *latch -= 1;
        if *latch == 0 {
            self.done.notify_all();
        }
    }

    /// Reassembles the output (or re-raises the first panic). Caller must have
    /// waited for the latch first.
    fn into_output(self) -> Vec<R> {
        if let Some(payload) = self.first_panic.into_inner() {
            panic::resume_unwind(payload);
        }
        let mut chunks = self.finished.into_inner();
        chunks.sort_unstable_by_key(|&(index, _)| index);
        debug_assert_eq!(chunks.len(), self.chunk_count);
        chunks.into_iter().flat_map(|(_, mapped)| mapped).collect()
    }
}

// SAFETY: helper tasks only touch `items` (`T: Sync`), `f` (`F: Sync`), and the
// synchronised collection state; results (`R: Send`) move across threads once.
unsafe impl<T: Sync, R: Send, F: Sync> Sync for ScopedJob<'_, T, R, F> {}

/// The process-wide shared pool used by the analysis batch helpers.
///
/// Created on first use with [`resolve_threads`]`(0)` workers (the
/// `SOTERIA_THREADS` / available-parallelism policy) and kept for the process
/// lifetime. Callers still pass their *requested* thread count to
/// [`pool_map`] — results are byte-identical regardless of how many pool
/// workers actually serve the call.
pub fn global_pool() -> &'static WorkerPool {
    // A `OnceLock` static is never dropped, so the global pool's workers park
    // for the process lifetime and no shutdown/join ever runs for them.
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(resolve_threads(0)))
}

/// [`par_map`](crate::par_map) semantics on the shared [`global_pool`]: the
/// spawn-free fast path for repeated ms-scale batch calls.
pub fn pool_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global_pool().install(items, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_matches_sequential_map_for_any_pool_size() {
        for pool_workers in [1, 2, 4] {
            let pool = WorkerPool::new(pool_workers);
            for len in [0usize, 1, 7, 64, 200] {
                let items: Vec<usize> = (0..len).collect();
                let expected: Vec<usize> = items.iter().map(|x| x * 7 + 3).collect();
                for threads in [1, 2, 4, 8] {
                    let got = pool.install(&items, threads, |x| x * 7 + 3);
                    assert_eq!(got, expected, "pool={pool_workers} len={len} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn install_reuses_the_same_threads_across_calls() {
        use std::collections::HashSet;
        let pool = WorkerPool::new(2);
        let observe = |pool: &WorkerPool| -> HashSet<String> {
            let caller = std::thread::current().id();
            pool.install(&[0u64; 64], 3, |_| {
                // Make each item slow enough that helpers actually claim chunks.
                std::thread::sleep(std::time::Duration::from_micros(50));
                std::thread::current().id()
            })
            .into_iter()
            .filter(|&id| id != caller)
            .map(|id| format!("{id:?}"))
            .collect()
        };
        let first = observe(&pool);
        let second = observe(&pool);
        // Any helper thread observed in both calls must come from the same
        // long-lived set of two pool workers.
        let union: HashSet<_> = first.union(&second).collect();
        assert!(union.len() <= pool.workers(), "more helper identities than pool workers");
    }

    #[test]
    fn install_propagates_panics_with_payload() {
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..64).collect();
        let caught = panic::catch_unwind(panic::AssertUnwindSafe(|| {
            pool.install(&items, 4, |&i| {
                if i == 21 {
                    panic!("pooled item {i} failed");
                }
                i
            })
        }))
        .expect_err("install must propagate the worker panic");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(message.contains("pooled item 21 failed"), "payload lost: {message:?}");
        // The pool survives the panic and keeps serving.
        assert_eq!(pool.install(&items, 4, |&i| i + 1)[0], 1);
    }

    #[test]
    fn spawned_tasks_run_and_drain_on_drop() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains the queue before joining
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn try_revoke_removes_queued_tasks_and_rejects_claimed_ones() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));

        // Wedge the single worker so later spawns stay queued deterministically.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let wedge = Arc::clone(&gate);
        pool.spawn(move || {
            let (open, signal) = &*wedge;
            let mut open = open.lock();
            while !*open {
                open = signal.wait(open);
            }
        });

        let keep = Arc::clone(&ran);
        let keep_id = pool.spawn(move || {
            keep.fetch_add(1, Ordering::Relaxed);
        });
        let revoke = Arc::clone(&ran);
        let revoke_id = pool.spawn(move || {
            revoke.fetch_add(100, Ordering::Relaxed);
        });
        assert_ne!(keep_id, revoke_id, "task ids must be unique");
        assert!(pool.try_revoke(revoke_id), "queued task not revoked");
        assert!(!pool.try_revoke(revoke_id), "double revoke succeeded");

        // Open the gate; the kept task runs, the revoked one never does.
        {
            let (open, signal) = &*gate;
            *open.lock() = true;
            signal.notify_all();
        }
        drop(pool); // drains the queue
        assert_eq!(ran.load(Ordering::Relaxed), 1, "revoked task ran anyway");
        assert!(keep_id != revoke_id);
    }

    #[test]
    fn quiesce_waits_for_spawned_chains_including_epilogues() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let pool = Arc::new(WorkerPool::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            // Each task spawns a follow-up, like the service's ingest stage
            // scheduling its verify stage; quiesce must cover the whole chain.
            let pool2 = Arc::clone(&pool);
            let done2 = Arc::clone(&done);
            pool.spawn(move || {
                let done3 = Arc::clone(&done2);
                pool2.spawn(move || {
                    done3.fetch_add(1, Ordering::Relaxed);
                });
                done2.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.quiesce();
        assert_eq!(done.load(Ordering::Relaxed), 16, "quiesce returned with work in flight");
        pool.quiesce(); // idempotent on an idle pool
    }

    #[test]
    fn try_revoke_of_a_finished_task_returns_false() {
        let pool = WorkerPool::new(1);
        let id = pool.spawn(|| {});
        // Wait for the worker to drain the task.
        while pool.tasks_executed() == 0 {
            std::thread::yield_now();
        }
        assert!(!pool.try_revoke(id), "claimed task reported as revoked");
    }

    #[test]
    fn a_panicking_spawned_task_does_not_kill_the_worker() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let pool = WorkerPool::new(1);
        let ran_after = Arc::new(AtomicBool::new(false));
        pool.spawn(|| panic!("service job failed"));
        let flag = Arc::clone(&ran_after);
        pool.spawn(move || flag.store(true, Ordering::Relaxed));
        drop(pool);
        assert!(ran_after.load(Ordering::Relaxed), "worker died with the panicking job");
    }

    #[test]
    fn nested_fanout_on_pool_workers_resolves_to_sequential() {
        let pool = WorkerPool::new(2);
        let resolved = pool.install(&[(); 32], 4, |_| crate::resolve_threads(8));
        assert!(resolved.iter().all(|&n| n == 1), "nested resolution: {resolved:?}");
        // Back on the caller: explicit values win again.
        assert_eq!(crate::resolve_threads(5), 5);
    }

    #[test]
    fn pool_map_matches_par_map_on_the_global_pool() {
        let items: Vec<usize> = (0..97).collect();
        let expected = crate::par_map(&items, 4, |x| x * 11);
        assert_eq!(pool_map(&items, 4, |x| x * 11), expected);
        assert!(global_pool().workers() >= 1);
        assert!(global_pool().tasks_executed() > 0 || global_pool().workers() == 1);
    }
}
