//! Dependency-free parallel execution layer for the analysis fan-out sites.
//!
//! Soteria's hot loops — the per-app corpus sweep, the per-group property sweeps,
//! and the union model's free sub-product enumeration — are all *independent
//! iterations over immutable inputs*: the analyzer borrows `&self`, the checker
//! borrows an immutable `Kripke`, and the union builder reads frozen per-app
//! models. This crate provides the primitives they share:
//!
//! * [`WorkerPool`] — a persistent pool of long-lived worker threads fed by an
//!   injector queue: [`WorkerPool::spawn`] for fire-and-forget `'static` jobs
//!   (the `soteria-service` job queue) and [`WorkerPool::install`] for scoped
//!   deterministic parallel maps over borrowed data;
//! * [`global_pool`] / [`pool_map`] — the process-wide shared pool used by the
//!   analysis batch helpers, eliminating the per-call thread-spawn overhead that
//!   PR 3 paid on ms-scale sweeps;
//! * [`par_map`] — the PR 3 entry point, now a thin wrapper that runs one
//!   [`WorkerPool::install`] on a transient pool (identical semantics:
//!   deterministic output ordering, dynamic chunk claiming, a strictly
//!   sequential fallback at one worker, first-panic propagation with the
//!   original payload);
//! * [`scoped_map`] — the original scoped-thread implementation, kept as the
//!   reference the pooled paths are gated against;
//! * [`resolve_threads`] — the worker-count policy: an explicit configuration
//!   value wins, then the `SOTERIA_THREADS` environment variable, then the
//!   machine's available parallelism.
//!
//! # Threading model
//!
//! Workers only ever *read* the shared inputs (`T: Sync`) and *own* their outputs
//! (`R: Send`); there is no locking on the data path. The mutexes in the pool
//! collect finished chunks (touched once per chunk, not per item) and guard the
//! injector queue (touched once per task). Callers that need per-worker mutable
//! scratch (e.g. the checker's sat-set memo) allocate it inside `f` — one
//! instance per chunk — instead of sharing it.
//!
//! Every call site must preserve the sequential result exactly: the map
//! primitives guarantee ordering, and the callers guarantee their per-item
//! closures are pure functions of the item (no iteration-order-dependent state).
//! This is what makes `SOTERIA_THREADS=1` and `SOTERIA_THREADS=8` byte-identical,
//! which `tests/parallel_determinism.rs` and the `parallel_scaling` gate enforce.

use std::any::Any;
use std::cell::Cell;
use std::panic;
use soteria_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use soteria_sync::Mutex;

mod abort;
mod pool;

pub use abort::{current_abort, is_abort_payload, with_abort, AbortHandle, Aborted};
pub use pool::{global_pool, pool_map, TaskId, WorkerPool};

// The poison-recovery helpers moved into `soteria-sync` with the rest of the
// synchronization facade. They are re-exported for callers still holding raw
// `std::sync` locks (interop only): facade locks recover poison on their own,
// so code on the facade never needs them.
pub use soteria_sync::{lock_recover, recover};

/// The environment variable overriding the worker count (`0` or unset = auto).
pub const THREADS_ENV: &str = "SOTERIA_THREADS";

/// The environment variable overriding every state-count sharding threshold
/// (`0` or unset = the call site's default). One knob covers both the
/// property-level shard threshold (`soteria_checker::PARALLEL_UNIVERSE`) and
/// the in-formula fixpoint-shard threshold
/// (`soteria_checker::FIXPOINT_SHARD_STATES`): sharding is byte-identical to
/// sequential execution everywhere, so forcing it on (`SOTERIA_SHARD_STATES=1`)
/// only changes scheduling — which is exactly how CI exercises the sharded
/// fixpoints on small models.
pub const SHARD_STATES_ENV: &str = "SOTERIA_SHARD_STATES";

/// Resolves a state-count sharding threshold.
///
/// Priority: an explicit non-zero `configured` value (e.g.
/// `AnalysisConfig::fixpoint_shard_states`), then a non-zero
/// [`SHARD_STATES_ENV`] environment variable, then the call site's `default`.
pub fn resolve_shard_states(configured: usize, default: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Ok(value) = std::env::var(SHARD_STATES_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    default
}

thread_local! {
    /// True on parallel worker threads (pool workers, scoped workers, and callers
    /// participating in a pooled map). Nested fan-out sites (a batch analysis
    /// worker reaching a parallel union lift or property sweep) resolve to
    /// sequential execution instead of oversubscribing the machine with up to
    /// `threads²` live workers.
    static IN_PAR_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is executing inside a parallel fan-out.
pub fn in_par_worker() -> bool {
    IN_PAR_WORKER.with(Cell::get)
}

/// Marks the current thread as a parallel worker until the guard drops
/// (restoring the previous state, so nested scopes compose).
pub(crate) fn enter_par_worker() -> ParWorkerGuard {
    ParWorkerGuard { prev: IN_PAR_WORKER.with(|flag| flag.replace(true)) }
}

pub(crate) struct ParWorkerGuard {
    prev: bool,
}

impl Drop for ParWorkerGuard {
    fn drop(&mut self) {
        IN_PAR_WORKER.with(|flag| flag.set(self.prev));
    }
}

/// Resolves the worker count for a fan-out site.
///
/// Priority: an explicit non-zero `configured` value (e.g.
/// `AnalysisConfig::threads`), then a non-zero [`THREADS_ENV`] environment
/// variable, then [`std::thread::available_parallelism`] (1 if unknown). The
/// result is always at least 1; 1 means "run sequentially on the caller's thread".
///
/// On a parallel worker thread this always returns 1 — the outer fan-out owns
/// the machine, and inner sites run sequentially (results are thread-count
/// invariant, so only scheduling changes). A top-level *sequential* call
/// (`threads == 1` never spawns) does not mark the caller, so e.g. a lone
/// `analyze_environment` still parallelizes its union lift.
pub fn resolve_threads(configured: usize) -> usize {
    if in_par_worker() {
        return 1;
    }
    if configured > 0 {
        return configured;
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` workers, returning the results in
/// input order.
///
/// Since PR 4 this is a thin wrapper over a *transient* [`WorkerPool`] (spawned
/// for the call, drained and joined before returning) with exactly the PR 3
/// contract: the output is identical to `items.iter().map(f).collect()` for
/// every `threads` value and every interleaving; contiguous chunks are claimed
/// dynamically off an atomic counter so uneven per-item cost still balances.
/// Repeated ms-scale batch calls should prefer [`pool_map`], which reuses the
/// shared [`global_pool`] instead of paying the per-call spawns.
///
/// With `threads <= 1`, a single item, an empty slice, or when already running
/// on a parallel worker, no thread is spawned and `f` runs on the caller's
/// thread.
///
/// # Panics
///
/// If `f` panics on any item, the first recorded worker panic is re-raised on the
/// caller's thread with its original payload once all workers have stopped, so a
/// corpus-app assertion failure reads the same under `SOTERIA_THREADS=8` as
/// sequentially. Unclaimed chunks are abandoned after a panic (workers check an
/// abort flag before claiming), bounding the wasted work to the chunks already in
/// flight.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if in_par_worker() { 1 } else { threads.max(1).min(items.len()) };
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Caller participates in `install`, so `threads - 1` pool workers reproduce
    // the PR 3 concurrency of `threads` scoped threads.
    let transient = WorkerPool::new(threads - 1);
    transient.install(items, threads, f)
}

/// The original PR 3 scoped-thread parallel map: spawns `threads` workers via
/// [`std::thread::scope`] on every call.
///
/// Kept as the reference implementation the pooled paths ([`par_map`],
/// [`pool_map`], [`WorkerPool::install`]) are gated against in
/// `tests/parallel_determinism.rs` and the `service_throughput` bench — and as
/// the baseline that quantifies the per-call spawn overhead the pool eliminates.
pub fn scoped_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // A few chunks per worker: large enough to keep the collection mutex cold,
    // small enough that one expensive chunk doesn't serialize the tail.
    let chunk_len = items.len().div_ceil(threads * 4).max(1);
    let chunk_count = items.len().div_ceil(chunk_len);
    let next_chunk = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let finished: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunk_count));
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    // Workers inherit the caller's abort handle: a stage aborted mid-map stops
    // all of its scoped workers, and the sentinel unwind propagates to the
    // caller through the normal first-panic path.
    let abort_handle = current_abort();
    soteria_sync::thread::scope(|scope| {
        let worker = || {
            let _guard = enter_par_worker();
            let _abort_scope = abort::install_scoped(abort_handle.clone());
            loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                if chunk >= chunk_count {
                    break;
                }
                let start = chunk * chunk_len;
                let end = (start + chunk_len).min(items.len());
                let mapped = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                    items[start..end].iter().map(&f).collect::<Vec<R>>()
                }));
                match mapped {
                    Ok(mapped) => finished.lock().push((chunk, mapped)),
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        break;
                    }
                }
            }
        };
        for _ in 0..threads {
            scope.spawn(worker);
        }
    });

    if let Some(payload) = first_panic.into_inner() {
        panic::resume_unwind(payload);
    }
    let mut chunks = finished.into_inner();
    chunks.sort_unstable_by_key(|&(index, _)| index);
    debug_assert_eq!(chunks.len(), chunk_count);
    chunks.into_iter().flat_map(|(_, mapped)| mapped).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_single_item_run_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let empty: Vec<i32> = par_map(&[] as &[i32], 8, |x| *x);
        assert!(empty.is_empty());
        let one = par_map(&[7], 8, |x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn sequential_fallback_at_one_thread() {
        let caller = std::thread::current().id();
        let out = par_map(&[1, 2, 3], 1, |x| {
            assert_eq!(std::thread::current().id(), caller);
            x * 10
        });
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn panic_payload_is_propagated() {
        let result = panic::catch_unwind(|| {
            par_map(&[0usize, 1, 2, 3, 4, 5, 6, 7], 4, |&x| {
                if x == 5 {
                    panic!("item five failed");
                }
                x
            })
        });
        let payload = result.expect_err("par_map must propagate the worker panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(message.contains("item five failed"), "payload lost: {message:?}");
    }

    #[test]
    fn facade_mutex_recovers_from_poisoning() {
        let shared = Mutex::new(41);
        let caught = panic::catch_unwind(panic::AssertUnwindSafe(|| {
            let mut guard = shared.lock();
            *guard = 42; // complete the update, *then* panic: state is consistent
            panic!("poisoning panic");
        }));
        assert!(caught.is_err());
        assert!(shared.is_poisoned());
        assert_eq!(*shared.lock(), 42);
        assert_eq!(shared.into_inner(), 42);
    }

    #[test]
    fn resolve_threads_prefers_explicit_configuration() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn resolve_shard_states_prefers_explicit_configuration() {
        assert_eq!(resolve_shard_states(123, 500), 123);
        // Unconfigured resolution is the env override (the CI leg sets
        // SOTERIA_SHARD_STATES=1) or the call site's default — positive either way.
        assert!(resolve_shard_states(0, 500) >= 1);
    }

    #[test]
    fn nested_fan_out_resolves_to_sequential() {
        // On a parallel worker even an explicit configuration resolves to 1: the
        // outer fan-out owns the machine.
        let inner = par_map(&[(); 8], 4, |_| resolve_threads(8));
        assert!(inner.iter().all(|&n| n == 1), "nested resolution: {inner:?}");
        // Back on the caller's thread the explicit value wins again.
        assert_eq!(resolve_threads(8), 8);
        // A sequential par_map does not mark the caller as a worker.
        let seq = par_map(&[()], 1, |_| resolve_threads(6));
        assert_eq!(seq, vec![6]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Order preservation: every map primitive equals the sequential map for
        /// any input length and worker count.
        #[test]
        fn map_primitives_match_sequential_map((len, threads) in (0usize..200, 1usize..9)) {
            let items: Vec<usize> = (0..len).collect();
            let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
            prop_assert_eq!(par_map(&items, threads, |x| x * 3 + 1), expected.clone());
            prop_assert_eq!(scoped_map(&items, threads, |x| x * 3 + 1), expected.clone());
            prop_assert_eq!(pool_map(&items, threads, |x| x * 3 + 1), expected);
        }
    }
}
