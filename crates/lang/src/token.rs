//! Tokens of the SmartApp DSL.

use crate::error::Position;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword-like word (`def`, `if`, handler names, ...).
    Ident(String),
    /// Integer literal. Floating-point literals in source are truncated to integers,
    /// which is sufficient for the thresholds IoT apps use.
    Number(i64),
    /// A plain (non-interpolated) string literal.
    Str(String),
    /// An interpolated (GString) literal, kept as raw text plus the list of embedded
    /// expressions' raw source. Interpolated strings matter to the analysis only when
    /// used as reflective call targets.
    GString {
        /// The raw text with interpolation markers removed.
        text: String,
        /// Raw source of each `${...}` / `$ident` interpolation, in order.
        interpolations: Vec<String>,
    },

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `?.` (safe navigation, treated as `.`)
    SafeDot,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `?:`
    Elvis,
    /// `?`
    Question,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the given keyword/identifier.
    pub fn is_ident(&self, word: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == word)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::GString { text, .. } => write!(f, "\"{text}\""),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::SafeDot => write!(f, "?."),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Not => write!(f, "!"),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Elvis => write!(f, "?:"),
            TokenKind::Question => write!(f, "?"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Position of the first character of the token.
    pub position: Position,
}

impl Token {
    /// Builds a token.
    pub fn new(kind: TokenKind, position: Position) -> Self {
        Token { kind, position }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_accessors() {
        let t = TokenKind::Ident("subscribe".to_string());
        assert_eq!(t.ident(), Some("subscribe"));
        assert!(t.is_ident("subscribe"));
        assert!(!t.is_ident("def"));
        assert_eq!(TokenKind::Number(3).ident(), None);
    }

    #[test]
    fn display_round_trip_symbols() {
        assert_eq!(TokenKind::Elvis.to_string(), "?:");
        assert_eq!(TokenKind::Arrow.to_string(), "->");
        assert_eq!(TokenKind::Str("x".into()).to_string(), "\"x\"");
    }
}
