//! Abstract syntax tree of the SmartApp DSL.
//!
//! The AST mirrors the Groovy constructs SmartThings apps use and the paper's analyses
//! depend on: `definition` metadata, `preferences`/`section`/`input` permission
//! declarations, event subscriptions, event-handler methods, conditionals, local
//! definitions, device method calls, `state` object field accesses, closures (for
//! `httpGet`-style callbacks), and GString-based reflective calls.

use crate::error::Position;
use std::fmt;

/// A parsed SmartApp program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// All method definitions in the program.
    pub fn methods(&self) -> impl Iterator<Item = &MethodDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Method(m) => Some(m),
            _ => None,
        })
    }

    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods().find(|m| m.name == name)
    }

    /// The `definition(...)` metadata arguments, if present.
    pub fn definition(&self) -> Option<&[NamedArg]> {
        self.items.iter().find_map(|i| match i {
            Item::Definition(args) => Some(args.as_slice()),
            _ => None,
        })
    }

    /// The app name from the `definition` block, if declared.
    pub fn app_name(&self) -> Option<&str> {
        self.definition()?.iter().find(|a| a.name == "name").and_then(|a| a.value.as_str())
    }

    /// The app category from the `definition` block, if declared.
    pub fn category(&self) -> Option<&str> {
        self.definition()?
            .iter()
            .find(|a| a.name == "category")
            .and_then(|a| a.value.as_str())
    }

    /// All `input` declarations across every `preferences` section.
    pub fn inputs(&self) -> Vec<&InputDecl> {
        self.items
            .iter()
            .filter_map(|i| match i {
                Item::Preferences(sections) => Some(sections),
                _ => None,
            })
            .flatten()
            .flat_map(|s| s.inputs.iter())
            .collect()
    }

    /// Number of non-blank source lines, used for the Table 2 LOC statistics.
    pub fn line_count(source: &str) -> usize {
        source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `definition(name: "...", category: "...", ...)` app metadata.
    Definition(Vec<NamedArg>),
    /// `preferences { section(...) { input ... } }` permission declarations.
    Preferences(Vec<Section>),
    /// A method definition (`def name(params) { ... }`).
    Method(MethodDef),
}

/// A named argument such as `title: "Which?"`.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedArg {
    /// Argument name.
    pub name: String,
    /// Argument value.
    pub value: Expr,
}

/// A `section("title") { input ... }` block inside `preferences`.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section title, if given.
    pub title: Option<String>,
    /// The `input` declarations of the section.
    pub inputs: Vec<InputDecl>,
}

/// An `input` declaration: a device permission or a user-defined input.
#[derive(Debug, Clone, PartialEq)]
pub struct InputDecl {
    /// The handle (identifier) the rest of the app uses to refer to the device/input.
    pub handle: String,
    /// The declared kind: `capability.<name>` for devices, otherwise a value type such
    /// as `number`, `text`, `time`, `phone`, `contact`, `enum`, `mode`, `bool`.
    pub kind: String,
    /// Remaining named arguments (`title:`, `required:`, `defaultValue:` ...).
    pub named: Vec<NamedArg>,
    /// Source position of the declaration.
    pub position: Position,
}

impl InputDecl {
    /// True if the declaration grants a device capability.
    pub fn is_device(&self) -> bool {
        self.kind.starts_with("capability.")
    }

    /// The capability name for device inputs (e.g. `"switch"`).
    pub fn capability(&self) -> Option<&str> {
        self.kind.strip_prefix("capability.")
    }

    /// The `defaultValue:` named argument, if any.
    pub fn default_value(&self) -> Option<&Expr> {
        self.named.iter().find(|a| a.name == "defaultValue").map(|a| &a.value)
    }
}

/// A method definition.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Method body.
    pub body: Block,
    /// Whether the method was declared `private`.
    pub is_private: bool,
    /// Source position of the definition.
    pub position: Position,
}

/// A `{ ... }` statement block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `def name = expr` or `def String name = expr` local definition.
    LocalDef {
        /// Variable name.
        name: String,
        /// Initialiser, if any.
        init: Option<Expr>,
        /// Source position.
        position: Position,
    },
    /// Assignment to an identifier, `state.field`, or object property.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Assigned value.
        value: Expr,
        /// Source position.
        position: Position,
    },
    /// `if (cond) { ... } [else ...]`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Then-branch.
        then_block: Block,
        /// Else-branch (possibly another `if` wrapped in a block).
        else_block: Option<Block>,
        /// Source position.
        position: Position,
    },
    /// `return [expr]`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source position.
        position: Position,
    },
    /// An expression evaluated for its effect (calls such as `the_switch.on()`).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source position.
        position: Position,
    },
}

impl Stmt {
    /// The source position of the statement.
    pub fn position(&self) -> Position {
        match self {
            Stmt::LocalDef { position, .. }
            | Stmt::Assign { position, .. }
            | Stmt::If { position, .. }
            | Stmt::Return { position, .. }
            | Stmt::Expr { position, .. } => *position,
        }
    }
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A plain identifier.
    Ident(String),
    /// A field of the persistent `state` / `atomicState` object.
    StateField(String),
    /// A property of an arbitrary object expression.
    Property {
        /// The object expression.
        object: Box<Expr>,
        /// Property name.
        name: String,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// True for `==`, `!=`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// The negated comparison (`<` becomes `>=`, `==` becomes `!=`, ...).
    pub fn negate_comparison(&self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::NotEq,
            BinOp::NotEq => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "==",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// A closure literal (`{ resp -> ... }` or `{ it.value == "wet" }`).
#[derive(Debug, Clone, PartialEq)]
pub struct Closure {
    /// Declared parameter names (empty means the implicit `it`).
    pub params: Vec<String>,
    /// Closure body.
    pub body: Block,
}

/// One positional or named call argument.
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// Argument name for named arguments (`title: "..."`).
    pub name: Option<String>,
    /// Argument value.
    pub value: Expr,
}

impl Arg {
    /// A positional argument.
    pub fn positional(value: Expr) -> Self {
        Arg { name: None, value }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Number(i64),
    /// Plain string literal.
    Str(String),
    /// Interpolated string. `interpolations` holds the raw source of each embedded
    /// expression; `"$name"()` reflection uses a GString with one interpolation.
    GString {
        /// Literal text with interpolations removed.
        text: String,
        /// Raw interpolation sources in order.
        interpolations: Vec<String>,
    },
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Identifier reference.
    Ident(String),
    /// Property access (`evt.value`, `state.counter`, `resp.data`).
    Property {
        /// Object expression.
        object: Box<Expr>,
        /// Property name.
        name: String,
    },
    /// Method call, with optional receiver and optional trailing closure.
    MethodCall {
        /// Receiver (`None` for bare calls like `subscribe(...)`).
        object: Option<Box<Expr>>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Arg>,
        /// Trailing closure argument, if any.
        closure: Option<Box<Closure>>,
    },
    /// Reflective call through a GString: `"$name"(args)`.
    DynamicCall {
        /// The GString naming the target method.
        name: Box<Expr>,
        /// Arguments.
        args: Vec<Arg>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Elvis operator `a ?: b`.
    Elvis {
        /// Value expression.
        value: Box<Expr>,
        /// Default when the value is null/false.
        default: Box<Expr>,
    },
    /// Ternary conditional `c ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Then-value.
        then: Box<Expr>,
        /// Else-value.
        els: Box<Expr>,
    },
    /// Index access `a[b]`.
    Index {
        /// Indexed object.
        object: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// List literal `[a, b, c]`.
    List(Vec<Expr>),
    /// Standalone closure literal.
    Closure(Box<Closure>),
    /// Object construction `new Date(...)`.
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Arg>,
    },
}

impl Expr {
    /// Returns the string payload for plain string literals.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Expr::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric payload for number literals.
    pub fn as_number(&self) -> Option<i64> {
        match self {
            Expr::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the identifier name if the expression is a bare identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if the expression is a `state`/`atomicState` field access, returning the
    /// field name.
    pub fn as_state_field(&self) -> Option<&str> {
        match self {
            Expr::Property { object, name } => match object.as_ref() {
                Expr::Ident(o) if o == "state" || o == "atomicState" => Some(name),
                _ => None,
            },
            _ => None,
        }
    }

    /// Walks the expression tree, calling `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Property { object, .. } => object.walk(f),
            Expr::MethodCall { object, args, closure, .. } => {
                if let Some(o) = object {
                    o.walk(f);
                }
                for a in args {
                    a.value.walk(f);
                }
                if let Some(c) = closure {
                    for s in &c.body.stmts {
                        s.walk_exprs(f);
                    }
                }
            }
            Expr::DynamicCall { name, args } => {
                name.walk(f);
                for a in args {
                    a.value.walk(f);
                }
            }
            Expr::Unary { operand, .. } => operand.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Elvis { value, default } => {
                value.walk(f);
                default.walk(f);
            }
            Expr::Ternary { cond, then, els } => {
                cond.walk(f);
                then.walk(f);
                els.walk(f);
            }
            Expr::Index { object, index } => {
                object.walk(f);
                index.walk(f);
            }
            Expr::List(items) => {
                for i in items {
                    i.walk(f);
                }
            }
            Expr::Closure(c) => {
                for s in &c.body.stmts {
                    s.walk_exprs(f);
                }
            }
            Expr::New { args, .. } => {
                for a in args {
                    a.value.walk(f);
                }
            }
            Expr::Number(_)
            | Expr::Str(_)
            | Expr::GString { .. }
            | Expr::Bool(_)
            | Expr::Null
            | Expr::Ident(_) => {}
        }
    }
}

impl Stmt {
    /// Walks every expression contained in the statement (including nested blocks).
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match self {
            Stmt::LocalDef { init, .. } => {
                if let Some(e) = init {
                    e.walk(f);
                }
            }
            Stmt::Assign { target, value, .. } => {
                if let LValue::Property { object, .. } = target {
                    object.walk(f);
                }
                value.walk(f);
            }
            Stmt::If { cond, then_block, else_block, .. } => {
                cond.walk(f);
                for s in &then_block.stmts {
                    s.walk_exprs(f);
                }
                if let Some(b) = else_block {
                    for s in &b.stmts {
                        s.walk_exprs(f);
                    }
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    e.walk(f);
                }
            }
            Stmt::Expr { expr, .. } => expr.walk(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_decl_device_detection() {
        let dev = InputDecl {
            handle: "the_switch".into(),
            kind: "capability.switch".into(),
            named: vec![],
            position: Position::default(),
        };
        assert!(dev.is_device());
        assert_eq!(dev.capability(), Some("switch"));

        let user = InputDecl {
            handle: "thrshld".into(),
            kind: "number".into(),
            named: vec![],
            position: Position::default(),
        };
        assert!(!user.is_device());
        assert_eq!(user.capability(), None);
    }

    #[test]
    fn state_field_recognition() {
        let e = Expr::Property {
            object: Box::new(Expr::Ident("state".into())),
            name: "counter".into(),
        };
        assert_eq!(e.as_state_field(), Some("counter"));

        let e2 = Expr::Property {
            object: Box::new(Expr::Ident("evt".into())),
            name: "value".into(),
        };
        assert_eq!(e2.as_state_field(), None);
    }

    #[test]
    fn binop_negation() {
        assert_eq!(BinOp::Lt.negate_comparison(), Some(BinOp::Ge));
        assert_eq!(BinOp::Eq.negate_comparison(), Some(BinOp::NotEq));
        assert_eq!(BinOp::Add.negate_comparison(), None);
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }

    #[test]
    fn walk_visits_nested_expressions() {
        let e = Expr::Binary {
            op: BinOp::Gt,
            lhs: Box::new(Expr::Ident("power".into())),
            rhs: Box::new(Expr::Number(50)),
        };
        let mut idents = Vec::new();
        e.walk(&mut |x| {
            if let Expr::Ident(n) = x {
                idents.push(n.clone());
            }
        });
        assert_eq!(idents, vec!["power".to_string()]);
    }

    #[test]
    fn line_count_skips_blank_lines() {
        assert_eq!(Program::line_count("a\n\n  \nb\nc"), 3);
    }
}
