//! Hand-written lexer for the SmartApp DSL.
//!
//! The lexer understands the Groovy surface syntax that SmartThings apps use:
//! line and block comments, single- and double-quoted strings, GString interpolation
//! (`"hello ${evt.value}"` and `"$name"`), integers and decimal literals, and the
//! operator set the corpus exercises.

use crate::error::{ParseError, ParseResult, Position};
use crate::token::{Token, TokenKind};

/// Streaming lexer over a source string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer { src: source.as_bytes(), pos: 0, line: 1, column: 1 }
    }

    /// Lexes the entire input into a token vector terminated by [`TokenKind::Eof`].
    pub fn tokenize(source: &str) -> ParseResult<Vec<Token>> {
        let mut lexer = Lexer::new(source);
        let mut tokens = Vec::new();
        loop {
            let tok = lexer.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            tokens.push(tok);
            if eof {
                break;
            }
        }
        Ok(tokens)
    }

    fn position(&self) -> Position {
        Position::new(self.line, self.column)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.position();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(start, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self, start: Position) -> ParseResult<Token> {
        let mut value: i64 = 0;
        let mut saw_digit = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                saw_digit = true;
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add((c - b'0') as i64))
                    .ok_or_else(|| ParseError::new(start, "integer literal overflows i64"))?;
                self.bump();
            } else {
                break;
            }
        }
        // Truncate a decimal fraction if present (e.g. `0.5` lexes as 0).
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if !saw_digit {
            return Err(ParseError::new(start, "expected digit"));
        }
        Ok(Token::new(TokenKind::Number(value), start))
    }

    fn lex_ident(&mut self, start: Position) -> Token {
        let begin = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[begin..self.pos]).unwrap_or("").to_string();
        Token::new(TokenKind::Ident(text), start)
    }

    /// Lexes a single- or double-quoted string. Double-quoted strings may contain
    /// `${expr}` or `$ident` interpolations (GStrings); single-quoted strings are plain.
    fn lex_string(&mut self, quote: u8, start: Position) -> ParseResult<Token> {
        self.bump(); // opening quote
        let mut text = String::new();
        let mut interpolations: Vec<String> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(ParseError::new(start, "unterminated string literal")),
                Some(c) if c == quote => {
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    match self.bump() {
                        Some(b'n') => text.push('\n'),
                        Some(b't') => text.push('\t'),
                        Some(c) => text.push(c as char),
                        None => return Err(ParseError::new(start, "unterminated escape")),
                    }
                }
                Some(b'$') if quote == b'"' => {
                    self.bump();
                    if self.peek() == Some(b'{') {
                        self.bump();
                        let mut raw = String::new();
                        let mut depth = 1usize;
                        loop {
                            match self.bump() {
                                Some(b'{') => {
                                    depth += 1;
                                    raw.push('{');
                                }
                                Some(b'}') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                    raw.push('}');
                                }
                                Some(c) => raw.push(c as char),
                                None => {
                                    return Err(ParseError::new(
                                        start,
                                        "unterminated ${...} interpolation",
                                    ))
                                }
                            }
                        }
                        interpolations.push(raw.trim().to_string());
                    } else {
                        // `$ident` or `$ident.prop` interpolation.
                        let mut raw = String::new();
                        while let Some(c) = self.peek() {
                            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                                raw.push(c as char);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        if raw.is_empty() {
                            text.push('$');
                        } else {
                            interpolations.push(raw);
                        }
                    }
                }
                Some(c) => {
                    text.push(c as char);
                    self.bump();
                }
            }
        }
        if interpolations.is_empty() {
            Ok(Token::new(TokenKind::Str(text), start))
        } else {
            Ok(Token::new(TokenKind::GString { text, interpolations }, start))
        }
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> ParseResult<Token> {
        self.skip_trivia()?;
        let start = self.position();
        let Some(c) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, start));
        };
        match c {
            b'0'..=b'9' => self.lex_number(start),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => Ok(self.lex_ident(start)),
            b'"' | b'\'' => self.lex_string(c, start),
            b'(' => {
                self.bump();
                Ok(Token::new(TokenKind::LParen, start))
            }
            b')' => {
                self.bump();
                Ok(Token::new(TokenKind::RParen, start))
            }
            b'{' => {
                self.bump();
                Ok(Token::new(TokenKind::LBrace, start))
            }
            b'}' => {
                self.bump();
                Ok(Token::new(TokenKind::RBrace, start))
            }
            b'[' => {
                self.bump();
                Ok(Token::new(TokenKind::LBracket, start))
            }
            b']' => {
                self.bump();
                Ok(Token::new(TokenKind::RBracket, start))
            }
            b',' => {
                self.bump();
                Ok(Token::new(TokenKind::Comma, start))
            }
            b':' => {
                self.bump();
                Ok(Token::new(TokenKind::Colon, start))
            }
            b';' => {
                self.bump();
                Ok(Token::new(TokenKind::Semicolon, start))
            }
            b'.' => {
                self.bump();
                Ok(Token::new(TokenKind::Dot, start))
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Ok(Token::new(TokenKind::Arrow, start))
                } else {
                    Ok(Token::new(TokenKind::Minus, start))
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::new(TokenKind::Eq, start))
                } else {
                    Ok(Token::new(TokenKind::Assign, start))
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::new(TokenKind::NotEq, start))
                } else {
                    Ok(Token::new(TokenKind::Not, start))
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::new(TokenKind::Le, start))
                } else {
                    Ok(Token::new(TokenKind::Lt, start))
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::new(TokenKind::Ge, start))
                } else {
                    Ok(Token::new(TokenKind::Gt, start))
                }
            }
            b'+' => {
                self.bump();
                Ok(Token::new(TokenKind::Plus, start))
            }
            b'*' => {
                self.bump();
                Ok(Token::new(TokenKind::Star, start))
            }
            b'/' => {
                self.bump();
                Ok(Token::new(TokenKind::Slash, start))
            }
            b'%' => {
                self.bump();
                Ok(Token::new(TokenKind::Percent, start))
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    Ok(Token::new(TokenKind::AndAnd, start))
                } else {
                    Err(ParseError::new(start, "expected `&&`"))
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Ok(Token::new(TokenKind::OrOr, start))
                } else {
                    Err(ParseError::new(start, "expected `||`"))
                }
            }
            b'?' => {
                self.bump();
                match self.peek() {
                    Some(b':') => {
                        self.bump();
                        Ok(Token::new(TokenKind::Elvis, start))
                    }
                    Some(b'.') => {
                        self.bump();
                        Ok(Token::new(TokenKind::SafeDot, start))
                    }
                    _ => Ok(Token::new(TokenKind::Question, start)),
                }
            }
            other => Err(ParseError::new(
                start,
                format!("unexpected character `{}`", other as char),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        Lexer::tokenize(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_subscribe_call() {
        let toks = kinds(r#"subscribe(smoke_detector, "smoke", smokeHandler)"#);
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("subscribe".into()),
                TokenKind::LParen,
                TokenKind::Ident("smoke_detector".into()),
                TokenKind::Comma,
                TokenKind::Str("smoke".into()),
                TokenKind::Comma,
                TokenKind::Ident("smokeHandler".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let toks = kinds("// header\n/* multi\nline */ def x = 1");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("def".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Number(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn gstring_interpolation_is_captured() {
        let toks = kinds(r#"log.debug("battery is ${evt.value} percent for $dev")"#);
        let gstring = toks
            .iter()
            .find_map(|t| match t {
                TokenKind::GString { interpolations, .. } => Some(interpolations.clone()),
                _ => None,
            })
            .expect("expected a GString token");
        assert_eq!(gstring, vec!["evt.value".to_string(), "dev".to_string()]);
    }

    #[test]
    fn reflection_gstring_single_interpolation() {
        let toks = kinds(r#""$name"()"#);
        assert!(matches!(
            &toks[0],
            TokenKind::GString { interpolations, .. } if interpolations == &vec!["name".to_string()]
        ));
        assert_eq!(toks[1], TokenKind::LParen);
    }

    #[test]
    fn operators_and_elvis() {
        let toks = kinds("a >= 5 && b != c ?: 10 ?. x -> y");
        assert!(toks.contains(&TokenKind::Ge));
        assert!(toks.contains(&TokenKind::AndAnd));
        assert!(toks.contains(&TokenKind::NotEq));
        assert!(toks.contains(&TokenKind::Elvis));
        assert!(toks.contains(&TokenKind::SafeDot));
        assert!(toks.contains(&TokenKind::Arrow));
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = Lexer::tokenize("def a\ndef b").unwrap();
        assert_eq!(toks[0].position, Position::new(1, 1));
        assert_eq!(toks[2].position, Position::new(2, 1));
        assert_eq!(toks[3].position, Position::new(2, 5));
    }

    #[test]
    fn decimal_literal_truncates() {
        assert_eq!(kinds("0.5")[0], TokenKind::Number(0));
        assert_eq!(kinds("42.9")[0], TokenKind::Number(42));
    }

    #[test]
    fn single_quoted_strings_are_plain() {
        let toks = kinds("'energy'");
        assert_eq!(toks[0], TokenKind::Str("energy".into()));
    }

    #[test]
    fn error_on_unterminated_string() {
        let err = Lexer::tokenize("\"abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn error_on_unexpected_character() {
        let err = Lexer::tokenize("def @x").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.position.line, 1);
    }

    #[test]
    fn escape_sequences() {
        let toks = kinds(r#""a\nb\tc\"d""#);
        assert_eq!(toks[0], TokenKind::Str("a\nb\tc\"d".into()));
    }
}
