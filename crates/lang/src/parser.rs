//! Recursive-descent parser for the SmartApp DSL.
//!
//! The grammar covers the Groovy subset SmartThings apps are written in: the
//! `definition` metadata call, `preferences`/`section`/`input` permission blocks,
//! method definitions, conditionals, local definitions, assignments (including to
//! `state` fields), method calls with named arguments and trailing closures, GString
//! reflection calls, elvis/ternary operators, and list literals.

use crate::ast::{
    Arg, BinOp, Block, Closure, Expr, InputDecl, Item, LValue, MethodDef, NamedArg, Program,
    Section, Stmt, UnaryOp,
};
use crate::error::{ParseError, ParseResult, Position};
use crate::lexer::Lexer;
use crate::token::{Token, TokenKind};

/// Parses a complete SmartApp program.
pub fn parse(source: &str) -> ParseResult<Program> {
    let tokens = Lexer::tokenize(source)?;
    Parser::new(tokens).parse_program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)].kind
    }

    fn position(&self) -> Position {
        self.peek().position
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> ParseResult<Token> {
        if self.check(kind) {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                self.position(),
                format!("expected `{}`, found `{}`", kind, self.peek_kind()),
            ))
        }
    }

    fn expect_ident(&mut self) -> ParseResult<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(ParseError::new(
                self.position(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn check_word(&self, word: &str) -> bool {
        self.peek_kind().is_ident(word)
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.check_word(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---------------------------------------------------------------- top level

    fn parse_program(&mut self) -> ParseResult<Program> {
        let mut items = Vec::new();
        while !self.at_eof() {
            // Tolerate stray semicolons between items.
            if self.eat(&TokenKind::Semicolon) {
                continue;
            }
            items.push(self.parse_item()?);
        }
        Ok(Program { items })
    }

    fn parse_item(&mut self) -> ParseResult<Item> {
        if self.check_word("definition") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let args = self.parse_named_args_until_rparen()?;
            return Ok(Item::Definition(args));
        }
        if self.check_word("preferences") {
            self.bump();
            return Ok(Item::Preferences(self.parse_preferences()?));
        }
        if self.check_word("def") || self.check_word("private") {
            return Ok(Item::Method(self.parse_method()?));
        }
        Err(ParseError::new(
            self.position(),
            format!(
                "expected `definition`, `preferences`, or a method definition, found `{}`",
                self.peek_kind()
            ),
        ))
    }

    fn parse_named_args_until_rparen(&mut self) -> ParseResult<Vec<NamedArg>> {
        let mut args = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            // `name: value` pairs; ignore purely positional metadata values.
            if matches!(self.peek_kind(), TokenKind::Ident(_))
                && self.peek_at(1) == &TokenKind::Colon
            {
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let value = self.parse_expr()?;
                args.push(NamedArg { name, value });
            } else {
                let _ = self.parse_expr()?;
            }
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(&TokenKind::RParen)?;
            break;
        }
        Ok(args)
    }

    // ------------------------------------------------------------- preferences

    fn parse_preferences(&mut self) -> ParseResult<Vec<Section>> {
        self.expect(&TokenKind::LBrace)?;
        let mut sections = Vec::new();
        let mut bare_inputs = Vec::new();
        while !self.check(&TokenKind::RBrace) && !self.at_eof() {
            if self.check_word("section") {
                sections.push(self.parse_section()?);
            } else if self.check_word("input") {
                bare_inputs.push(self.parse_input_decl()?);
            } else if self.check_word("page") {
                // `page(name: "...") { section ... }` dynamic pages: parse the inner
                // sections as if they were top level.
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    self.parse_named_args_until_rparen()?;
                }
                self.expect(&TokenKind::LBrace)?;
                while !self.check(&TokenKind::RBrace) && !self.at_eof() {
                    if self.check_word("section") {
                        sections.push(self.parse_section()?);
                    } else if self.check_word("input") {
                        bare_inputs.push(self.parse_input_decl()?);
                    } else {
                        return Err(ParseError::new(
                            self.position(),
                            "expected `section` or `input` inside page block",
                        ));
                    }
                }
                self.expect(&TokenKind::RBrace)?;
            } else {
                return Err(ParseError::new(
                    self.position(),
                    format!("expected `section` or `input`, found `{}`", self.peek_kind()),
                ));
            }
        }
        self.expect(&TokenKind::RBrace)?;
        if !bare_inputs.is_empty() {
            sections.push(Section { title: None, inputs: bare_inputs });
        }
        Ok(sections)
    }

    fn parse_section(&mut self) -> ParseResult<Section> {
        self.bump(); // `section`
        let mut title = None;
        if self.eat(&TokenKind::LParen) {
            if !self.check(&TokenKind::RParen) {
                loop {
                    if matches!(self.peek_kind(), TokenKind::Ident(_))
                        && self.peek_at(1) == &TokenKind::Colon
                    {
                        self.expect_ident()?;
                        self.expect(&TokenKind::Colon)?;
                        let _ = self.parse_expr()?;
                    } else {
                        let e = self.parse_expr()?;
                        if title.is_none() {
                            title = e.as_str().map(|s| s.to_string());
                        }
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::LBrace)?;
        let mut inputs = Vec::new();
        while !self.check(&TokenKind::RBrace) && !self.at_eof() {
            if self.check_word("input") {
                inputs.push(self.parse_input_decl()?);
            } else if self.check_word("paragraph") || self.check_word("href") || self.check_word("label") {
                // Cosmetic preference elements: skip the keyword and its arguments.
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    self.skip_until_matching_rparen()?;
                } else {
                    // Paren-less form: consume comma-separated expressions.
                    let _ = self.parse_expr()?;
                    while self.eat(&TokenKind::Comma) {
                        if matches!(self.peek_kind(), TokenKind::Ident(_))
                            && self.peek_at(1) == &TokenKind::Colon
                        {
                            self.expect_ident()?;
                            self.expect(&TokenKind::Colon)?;
                        }
                        let _ = self.parse_expr()?;
                    }
                }
            } else {
                return Err(ParseError::new(
                    self.position(),
                    format!("expected `input` inside section, found `{}`", self.peek_kind()),
                ));
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Section { title, inputs })
    }

    fn skip_until_matching_rparen(&mut self) -> ParseResult<()> {
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek_kind() {
                TokenKind::LParen => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RParen => {
                    depth -= 1;
                    self.bump();
                }
                TokenKind::Eof => {
                    return Err(ParseError::new(self.position(), "unbalanced parentheses"))
                }
                _ => {
                    self.bump();
                }
            }
        }
        Ok(())
    }

    /// Parses an `input` declaration, in either the paren-less form
    /// (`input "name", "capability.switch", title: "..."`) or the parenthesised form
    /// possibly followed by a nested-input closure.
    fn parse_input_decl(&mut self) -> ParseResult<InputDecl> {
        let position = self.position();
        self.bump(); // `input`
        let parenthesised = self.eat(&TokenKind::LParen);

        let mut positional: Vec<Expr> = Vec::new();
        let mut named: Vec<NamedArg> = Vec::new();
        loop {
            if matches!(self.peek_kind(), TokenKind::Ident(_))
                && self.peek_at(1) == &TokenKind::Colon
            {
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let value = self.parse_expr()?;
                named.push(NamedArg { name, value });
            } else {
                positional.push(self.parse_expr()?);
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        if parenthesised {
            self.expect(&TokenKind::RParen)?;
            // Optional nested-input closure: the inner declarations are additional
            // permissions; parse and discard their grouping but keep nothing here —
            // callers obtain them by flattening (the SmartThings contact-book pattern).
            if self.check(&TokenKind::LBrace) {
                self.bump();
                while !self.check(&TokenKind::RBrace) && !self.at_eof() {
                    if self.check_word("input") {
                        // Nested inputs are rare (contact-book fallback); record them by
                        // appending to the named args so IR construction can see them.
                        let nested = self.parse_input_decl()?;
                        named.push(NamedArg {
                            name: format!("__nested_{}", nested.handle),
                            value: Expr::Str(nested.kind.clone()),
                        });
                    } else {
                        self.bump();
                    }
                }
                self.expect(&TokenKind::RBrace)?;
            }
        }

        let handle = positional
            .first()
            .and_then(|e| e.as_str())
            .ok_or_else(|| ParseError::new(position, "input declaration requires a name string"))?
            .to_string();
        let kind = positional
            .get(1)
            .and_then(|e| e.as_str())
            .unwrap_or("text")
            .to_string();
        Ok(InputDecl { handle, kind, named, position })
    }

    // ----------------------------------------------------------------- methods

    fn parse_method(&mut self) -> ParseResult<MethodDef> {
        let position = self.position();
        let is_private = self.eat_word("private");
        self.eat_word("def"); // `private initialize()` omits `def`
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        while !self.check(&TokenKind::RParen) {
            params.push(self.expect_ident()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_block()?;
        Ok(MethodDef { name, params, body, is_private, position })
    }

    fn parse_block(&mut self) -> ParseResult<Block> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) && !self.at_eof() {
            if self.eat(&TokenKind::Semicolon) {
                continue;
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    // -------------------------------------------------------------- statements

    fn parse_stmt(&mut self) -> ParseResult<Stmt> {
        let position = self.position();
        if self.check_word("if") {
            return self.parse_if();
        }
        if self.check_word("return") {
            self.bump();
            // A `return` at the end of a block or before `}` carries no value.
            let value = if self.check(&TokenKind::RBrace) || self.check(&TokenKind::Semicolon) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.eat(&TokenKind::Semicolon);
            return Ok(Stmt::Return { value, position });
        }
        if self.check_word("def") {
            self.bump();
            let mut name = self.expect_ident()?;
            // `def String msg` / `def Integer x`: the first identifier was a type.
            if matches!(self.peek_kind(), TokenKind::Ident(_)) {
                name = self.expect_ident()?;
            }
            let init = if self.eat(&TokenKind::Assign) { Some(self.parse_expr()?) } else { None };
            self.eat(&TokenKind::Semicolon);
            return Ok(Stmt::LocalDef { name, init, position });
        }

        // Expression or assignment statement.
        let expr = self.parse_expr()?;
        if self.eat(&TokenKind::Assign) {
            let target = Self::expr_to_lvalue(&expr).ok_or_else(|| {
                ParseError::new(position, "left-hand side of assignment is not assignable")
            })?;
            let value = self.parse_expr()?;
            self.eat(&TokenKind::Semicolon);
            return Ok(Stmt::Assign { target, value, position });
        }
        self.eat(&TokenKind::Semicolon);
        Ok(Stmt::Expr { expr, position })
    }

    fn expr_to_lvalue(expr: &Expr) -> Option<LValue> {
        match expr {
            Expr::Ident(name) => Some(LValue::Ident(name.clone())),
            Expr::Property { object, name } => {
                if let Expr::Ident(o) = object.as_ref() {
                    if o == "state" || o == "atomicState" {
                        return Some(LValue::StateField(name.clone()));
                    }
                }
                Some(LValue::Property { object: object.clone(), name: name.clone() })
            }
            _ => None,
        }
    }

    fn parse_if(&mut self) -> ParseResult<Stmt> {
        let position = self.position();
        self.bump(); // `if`
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_block = if self.check(&TokenKind::LBrace) {
            self.parse_block()?
        } else {
            Block { stmts: vec![self.parse_stmt()?] }
        };
        let else_block = if self.eat_word("else") {
            if self.check_word("if") {
                Some(Block { stmts: vec![self.parse_if()?] })
            } else if self.check(&TokenKind::LBrace) {
                Some(self.parse_block()?)
            } else {
                Some(Block { stmts: vec![self.parse_stmt()?] })
            }
        } else {
            None
        };
        Ok(Stmt::If { cond, then_block, else_block, position })
    }

    // ------------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> ParseResult<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> ParseResult<Expr> {
        let cond = self.parse_or()?;
        if self.eat(&TokenKind::Elvis) {
            let default = self.parse_ternary()?;
            return Ok(Expr::Elvis { value: Box::new(cond), default: Box::new(default) });
        }
        if self.eat(&TokenKind::Question) {
            let then = self.parse_ternary()?;
            self.expect(&TokenKind::Colon)?;
            let els = self.parse_ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            });
        }
        Ok(cond)
    }

    fn parse_or(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = if self.eat(&TokenKind::Eq) {
                BinOp::Eq
            } else if self.eat(&TokenKind::NotEq) {
                BinOp::NotEq
            } else {
                break;
            };
            let rhs = self.parse_relational()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = if self.eat(&TokenKind::Lt) {
                BinOp::Lt
            } else if self.eat(&TokenKind::Le) {
                BinOp::Le
            } else if self.eat(&TokenKind::Gt) {
                BinOp::Gt
            } else if self.eat(&TokenKind::Ge) {
                BinOp::Ge
            } else {
                break;
            };
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = if self.eat(&TokenKind::Plus) {
                BinOp::Add
            } else if self.eat(&TokenKind::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = if self.eat(&TokenKind::Star) {
                BinOp::Mul
            } else if self.eat(&TokenKind::Slash) {
                BinOp::Div
            } else if self.eat(&TokenKind::Percent) {
                BinOp::Rem
            } else {
                break;
            };
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> ParseResult<Expr> {
        if self.eat(&TokenKind::Not) {
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, operand: Box::new(operand) });
        }
        if self.eat(&TokenKind::Minus) {
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, operand: Box::new(operand) });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> ParseResult<Expr> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.check(&TokenKind::Dot) || self.check(&TokenKind::SafeDot) {
                self.bump();
                let name = self.expect_ident()?;
                if self.check(&TokenKind::LParen) {
                    self.bump();
                    let args = self.parse_call_args()?;
                    let closure = self.parse_optional_trailing_closure()?;
                    expr = Expr::MethodCall {
                        object: Some(Box::new(expr)),
                        method: name,
                        args,
                        closure: closure.map(Box::new),
                    };
                } else if self.check(&TokenKind::LBrace) && Self::looks_like_closure(self) {
                    // Method call with only a trailing closure: `list.count { ... }`.
                    let closure = self.parse_closure()?;
                    expr = Expr::MethodCall {
                        object: Some(Box::new(expr)),
                        method: name,
                        args: Vec::new(),
                        closure: Some(Box::new(closure)),
                    };
                } else {
                    expr = Expr::Property { object: Box::new(expr), name };
                }
                continue;
            }
            if self.check(&TokenKind::LParen) {
                self.bump();
                let args = self.parse_call_args()?;
                let closure = self.parse_optional_trailing_closure()?;
                expr = match expr {
                    Expr::Ident(name) => Expr::MethodCall {
                        object: None,
                        method: name,
                        args,
                        closure: closure.map(Box::new),
                    },
                    g @ Expr::GString { .. } => {
                        Expr::DynamicCall { name: Box::new(g), args }
                    }
                    other => Expr::MethodCall {
                        object: Some(Box::new(other)),
                        method: "call".to_string(),
                        args,
                        closure: closure.map(Box::new),
                    },
                };
                continue;
            }
            if self.check(&TokenKind::LBracket) {
                self.bump();
                let index = self.parse_expr()?;
                self.expect(&TokenKind::RBracket)?;
                expr = Expr::Index { object: Box::new(expr), index: Box::new(index) };
                continue;
            }
            break;
        }
        Ok(expr)
    }

    fn parse_call_args(&mut self) -> ParseResult<Vec<Arg>> {
        let mut args = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            if matches!(self.peek_kind(), TokenKind::Ident(_))
                && self.peek_at(1) == &TokenKind::Colon
            {
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let value = self.parse_expr()?;
                args.push(Arg { name: Some(name), value });
            } else {
                args.push(Arg::positional(self.parse_expr()?));
            }
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(&TokenKind::RParen)?;
            break;
        }
        Ok(args)
    }

    fn parse_optional_trailing_closure(&mut self) -> ParseResult<Option<Closure>> {
        if self.check(&TokenKind::LBrace) && Self::looks_like_closure(self) {
            Ok(Some(self.parse_closure()?))
        } else {
            Ok(None)
        }
    }

    /// Heuristic to distinguish a trailing closure from a following statement block.
    /// Within expression context a `{` always begins a closure, so this only guards
    /// against consuming an `if`/method body `{` that follows a call on the same path.
    fn looks_like_closure(&self) -> bool {
        // A closure start is `{`; the construct it could be confused with (a method
        // body) never follows a call expression in this grammar.
        true
    }

    fn parse_closure(&mut self) -> ParseResult<Closure> {
        self.expect(&TokenKind::LBrace)?;
        // Optional parameter list `a, b ->`.
        let mut params = Vec::new();
        let checkpoint = self.pos;
        let mut ok = true;
        loop {
            match self.peek_kind().clone() {
                TokenKind::Ident(name) => {
                    self.bump();
                    params.push(name);
                    if self.eat(&TokenKind::Comma) {
                        continue;
                    }
                    if self.eat(&TokenKind::Arrow) {
                        break;
                    }
                    ok = false;
                    break;
                }
                TokenKind::Arrow => {
                    self.bump();
                    break;
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            self.pos = checkpoint;
            params.clear();
        }
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) && !self.at_eof() {
            if self.eat(&TokenKind::Semicolon) {
                continue;
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Closure { params, body: Block { stmts } })
    }

    fn parse_primary(&mut self) -> ParseResult<Expr> {
        let position = self.position();
        match self.peek_kind().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Number(n))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::GString { text, interpolations } => {
                self.bump();
                Ok(Expr::GString { text, interpolations })
            }
            TokenKind::Ident(name) => match name.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Bool(false))
                }
                "null" => {
                    self.bump();
                    Ok(Expr::Null)
                }
                "new" => {
                    self.bump();
                    let class = self.expect_ident()?;
                    self.expect(&TokenKind::LParen)?;
                    let args = self.parse_call_args()?;
                    Ok(Expr::New { class, args })
                }
                _ => {
                    self.bump();
                    Ok(Expr::Ident(name))
                }
            },
            TokenKind::LParen => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.check(&TokenKind::RBracket) {
                    loop {
                        // Map literal entries `key: value` are flattened to their values.
                        if matches!(self.peek_kind(), TokenKind::Ident(_) | TokenKind::Str(_))
                            && self.peek_at(1) == &TokenKind::Colon
                        {
                            self.bump();
                            self.bump();
                        } else if self.check(&TokenKind::Colon) {
                            // Empty map literal `[:]`.
                            self.bump();
                            break;
                        }
                        items.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::List(items))
            }
            TokenKind::LBrace => Ok(Expr::Closure(Box::new(self.parse_closure()?))),
            other => Err(ParseError::new(
                position,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE_ALARM: &str = r#"
        definition(name: "Smoke-Alarm", category: "Safety & Security", author: "Soteria")

        preferences {
            section("Select smoke detector: ") {
                input "smoke_detector", "capability.smokeDetector", title: "Which detector?", required: true
            }
            section("Select alarm device: ") {
                input "the_alarm", "capability.alarm", title: "Which alarm?", required: true
            }
            section("Low battery warning: ") {
                input "thrshld", "number", title: "Low Battery Threshold", required: true
            }
        }

        def installed() {
            initialize()
        }

        private initialize() {
            subscribe(smoke_detector, "smoke", smokeHandler)
        }

        def smokeHandler(evt) {
            if (evt.value == "detected") {
                the_alarm.siren()
            } else if (evt.value == "clear") {
                the_alarm.off()
            }
        }
    "#;

    #[test]
    fn parses_smoke_alarm_skeleton() {
        let prog = parse(SMOKE_ALARM).unwrap();
        assert_eq!(prog.app_name(), Some("Smoke-Alarm"));
        assert_eq!(prog.category(), Some("Safety & Security"));
        let inputs = prog.inputs();
        assert_eq!(inputs.len(), 3);
        assert!(inputs[0].is_device());
        assert_eq!(inputs[0].capability(), Some("smokeDetector"));
        assert!(!inputs[2].is_device());
        assert_eq!(prog.methods().count(), 3);
        assert!(prog.method("smokeHandler").is_some());
        assert!(prog.method("installed").is_some());
        assert!(prog.method("initialize").unwrap().is_private);
    }

    #[test]
    fn parses_if_else_chain() {
        let prog = parse(SMOKE_ALARM).unwrap();
        let handler = prog.method("smokeHandler").unwrap();
        assert_eq!(handler.params, vec!["evt".to_string()]);
        match &handler.body.stmts[0] {
            Stmt::If { cond, else_block, .. } => {
                assert!(matches!(cond, Expr::Binary { op: BinOp::Eq, .. }));
                assert!(else_block.is_some());
            }
            other => panic!("expected if statement, got {other:?}"),
        }
    }

    #[test]
    fn parses_state_field_assignment() {
        let src = r#"
            def h() {
                state.counter = state.counter + 1
                if (state.counter > 10) {
                    theSwitch.off()
                }
            }
        "#;
        let prog = parse(src).unwrap();
        let m = prog.method("h").unwrap();
        match &m.body.stmts[0] {
            Stmt::Assign { target: LValue::StateField(f), .. } => assert_eq!(f, "counter"),
            other => panic!("expected state assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_elvis_and_ternary() {
        let src = "def h() { def x = thrshld ?: 10 \n def y = a > 1 ? 2 : 3 }";
        let prog = parse(src).unwrap();
        let m = prog.method("h").unwrap();
        assert!(matches!(
            &m.body.stmts[0],
            Stmt::LocalDef { init: Some(Expr::Elvis { .. }), .. }
        ));
        assert!(matches!(
            &m.body.stmts[1],
            Stmt::LocalDef { init: Some(Expr::Ternary { .. }), .. }
        ));
    }

    #[test]
    fn parses_reflection_call() {
        let src = r#"
            def getMethod() {
                httpGet("http://url") { resp ->
                    if (resp.status == 200) {
                        name = resp.data.toString()
                    }
                }
                "$name"()
            }
        "#;
        let prog = parse(src).unwrap();
        let m = prog.method("getMethod").unwrap();
        // First statement: httpGet with trailing closure.
        match &m.body.stmts[0] {
            Stmt::Expr { expr: Expr::MethodCall { method, closure, .. }, .. } => {
                assert_eq!(method, "httpGet");
                let c = closure.as_ref().expect("closure expected");
                assert_eq!(c.params, vec!["resp".to_string()]);
            }
            other => panic!("expected httpGet call, got {other:?}"),
        }
        // Second statement: reflective call.
        assert!(matches!(
            &m.body.stmts[1],
            Stmt::Expr { expr: Expr::DynamicCall { .. }, .. }
        ));
    }

    #[test]
    fn parses_trailing_closure_without_args() {
        let src = r#"def h() { def n = recentEvents.count { it.value == "wet" } }"#;
        let prog = parse(src).unwrap();
        let m = prog.method("h").unwrap();
        match &m.body.stmts[0] {
            Stmt::LocalDef { init: Some(Expr::MethodCall { method, closure, .. }), .. } => {
                assert_eq!(method, "count");
                assert!(closure.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_new_and_arithmetic() {
        let src = "def h() { def timeAgo = new Date(now() - (1000 * deltaSeconds)) }";
        let prog = parse(src).unwrap();
        let m = prog.method("h").unwrap();
        assert!(matches!(
            &m.body.stmts[0],
            Stmt::LocalDef { init: Some(Expr::New { class, .. }), .. } if class == "Date"
        ));
    }

    #[test]
    fn parses_nested_input_closure() {
        let src = r#"
            preferences {
                section("Send a notification to...") {
                    input("recipients", "contact", title: "Recipients") {
                        input "phone", "phone", title: "Phone number?", required: false
                    }
                }
            }
        "#;
        let prog = parse(src).unwrap();
        let inputs = prog.inputs();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].handle, "recipients");
        assert!(inputs[0].named.iter().any(|a| a.name == "__nested_phone"));
    }

    #[test]
    fn parses_typed_local_def() {
        let src = "def h() { def String theMessage \n theMessage = \"x\" }";
        let prog = parse(src).unwrap();
        let m = prog.method("h").unwrap();
        assert!(matches!(
            &m.body.stmts[0],
            Stmt::LocalDef { name, init: None, .. } if name == "theMessage"
        ));
    }

    #[test]
    fn parses_return_without_value() {
        let src = "def h() { if (x) { return } \n return y }";
        let prog = parse(src).unwrap();
        let m = prog.method("h").unwrap();
        assert!(matches!(&m.body.stmts[1], Stmt::Return { value: Some(_), .. }));
    }

    #[test]
    fn error_has_position() {
        let err = parse("def h() { if ) }").unwrap_err();
        assert_eq!(err.position.line, 1);
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn parses_map_and_list_literals() {
        let src = "def h() { def xs = [1, 2, 3] \n def m = [:] \n def q = [name: 3, other: 4] }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.method("h").unwrap().body.stmts.len(), 3);
    }

    #[test]
    fn parses_location_subscription_and_mode_set() {
        let src = r#"
            def initialize() {
                subscribe(location, "mode", modeChangeHandler)
            }
            def modeChangeHandler(evt) {
                setLocationMode("home")
                the_lock.lock()
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.methods().count(), 2);
    }
}
