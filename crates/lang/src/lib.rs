//! SmartApp DSL front end for the Soteria reproduction.
//!
//! The original Soteria hooks into the Groovy compiler and walks its AST. Groovy
//! tooling is not available here, so this crate provides a from-scratch front end for a
//! Groovy-subset *SmartApp DSL* that covers the language constructs the paper's
//! analyses exercise: `definition` metadata, `preferences`/`section`/`input` permission
//! blocks, event subscriptions, event-handler methods, conditionals, device action
//! calls, persistent `state` object fields, closures, and GString-based reflective
//! calls.
//!
//! # Example
//!
//! ```
//! let source = r#"
//!     definition(name: "Water-Leak-Detector", category: "Safety & Security")
//!     preferences {
//!         section("When there's water detected...") {
//!             input "water_sensor", "capability.waterSensor", title: "Where?"
//!             input "valve_device", "capability.valve", title: "Valve device"
//!         }
//!     }
//!     def installed() {
//!         subscribe(water_sensor, "water.wet", waterWetHandler)
//!     }
//!     def waterWetHandler(evt) {
//!         valve_device.close()
//!     }
//! "#;
//! let program = soteria_lang::parse(source).expect("parses");
//! assert_eq!(program.app_name(), Some("Water-Leak-Detector"));
//! assert_eq!(program.inputs().len(), 2);
//! assert!(program.method("waterWetHandler").is_some());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    Arg, BinOp, Block, Closure, Expr, InputDecl, Item, LValue, MethodDef, NamedArg, Program,
    Section, Stmt, UnaryOp,
};
pub use error::{ParseError, ParseResult, Position};
pub use lexer::Lexer;
pub use parser::parse;
pub use token::{Token, TokenKind};
