//! Lexer and parser errors with source positions.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl Position {
    /// Builds a position.
    pub fn new(line: u32, column: u32) -> Self {
        Position { line, column }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An error produced while lexing or parsing SmartApp source code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Position of the offending token or character.
    pub position: Position,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Builds an error at a position.
    pub fn new(position: Position, message: impl Into<String>) -> Self {
        ParseError { position, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias used throughout the crate.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_message() {
        let e = ParseError::new(Position::new(3, 7), "unexpected token `}`");
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token `}`");
    }

    #[test]
    fn positions_are_ordered() {
        assert!(Position::new(1, 9) < Position::new(2, 1));
        assert!(Position::new(2, 1) < Position::new(2, 5));
    }
}
