//! Interned state schema and packed state valuations.
//!
//! The seed represented every state as a `BTreeMap<(String, String), AttributeValue>`;
//! on market-scale union models (tens of thousands of states) the heap-allocated
//! string keys and tree-map walks dominated model construction, union, and checking.
//! [`StateSchema`] interns the `(handle, attribute)` keys into dense `u16` attribute
//! ids and each domain value into a `u8` value id, so a state becomes a flat
//! [`PackedState`] byte vector (one digit per attribute) with O(1) get/set and
//! array-compare equality.
//!
//! Because the Cartesian-product state space is enumerated in mixed-radix order —
//! the first attribute key is the most significant digit — a state id and its digit
//! vector are interconvertible by pure index arithmetic ([`StateSchema::index_of`],
//! [`StateSchema::digits_of`]): the hot paths in [`crate::builder`] and
//! [`crate::union`] never materialise a state map at all.

use crate::state::{AttrKey, State};
use soteria_capability::AttributeValue;
use std::collections::{BTreeMap, HashMap};

/// Dense identifier of one `(handle, attribute)` key within a schema.
pub type AttrId = u16;

/// Dense identifier of one domain value within its attribute's domain.
pub type ValueId = u8;

/// An interned schema: the attribute keys and value domains of one state space, with
/// dense ids and the mixed-radix strides for state-id arithmetic.
///
/// Attributes whose domain is empty contribute no digit (the seed likewise never
/// stored them in state maps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSchema {
    /// Attribute keys in state-space order (sorted, as in the seed's `BTreeMap`).
    keys: Vec<AttrKey>,
    /// Key -> dense attribute id.
    key_index: HashMap<AttrKey, AttrId>,
    /// Per-attribute value domain, indexed by [`AttrId`].
    domains: Vec<Vec<AttributeValue>>,
    /// Per-attribute value -> [`ValueId`] lookup.
    value_index: Vec<HashMap<AttributeValue, ValueId>>,
    /// Mixed-radix stride of each attribute: the product of the domain sizes of all
    /// later attributes. The last attribute has stride 1.
    strides: Vec<usize>,
    /// Total number of states (the product of all domain sizes).
    state_count: usize,
}

impl Default for StateSchema {
    /// The empty schema: no attributes, a single (empty) state — the same as
    /// `StateSchema::new(&BTreeMap::new())`.
    fn default() -> Self {
        StateSchema {
            keys: Vec::new(),
            key_index: HashMap::new(),
            domains: Vec::new(),
            value_index: Vec::new(),
            strides: Vec::new(),
            state_count: 1,
        }
    }
}

impl StateSchema {
    /// Interns the given attribute domains. Keys with empty domains are skipped.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` attributes or a domain with more than
    /// `u8::MAX + 1` values is supplied; property abstraction keeps real domains far
    /// below both bounds.
    pub fn new(attributes: &BTreeMap<AttrKey, Vec<AttributeValue>>) -> Self {
        let mut schema = StateSchema::default();
        for (key, domain) in attributes {
            if domain.is_empty() {
                continue;
            }
            assert!(
                schema.keys.len() <= AttrId::MAX as usize,
                "schema exceeds {} attributes",
                AttrId::MAX
            );
            // Capped at 255 (not 256) so a domain size always fits the `u8` radix
            // the odometer in `advance` computes.
            assert!(
                domain.len() <= ValueId::MAX as usize,
                "domain of {key:?} exceeds {} values",
                ValueId::MAX
            );
            let id = schema.keys.len() as AttrId;
            schema.key_index.insert(key.clone(), id);
            schema.keys.push(key.clone());
            schema
                .value_index
                .push(domain.iter().enumerate().map(|(i, v)| (v.clone(), i as ValueId)).collect());
            schema.domains.push(domain.clone());
        }
        // Strides: product of the domain sizes of all later attributes.
        schema.strides = vec![1; schema.keys.len()];
        let mut acc = 1usize;
        for i in (0..schema.keys.len()).rev() {
            schema.strides[i] = acc;
            acc = acc.saturating_mul(schema.domains[i].len());
        }
        schema.state_count = acc.max(1);
        schema
    }

    /// Number of interned attributes (digits per state).
    pub fn attr_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of states in the Cartesian product.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The attribute keys in digit order.
    pub fn keys(&self) -> &[AttrKey] {
        &self.keys
    }

    /// The dense id of an attribute key.
    pub fn attr_id(&self, key: &AttrKey) -> Option<AttrId> {
        self.key_index.get(key).copied()
    }

    /// The domain of an attribute.
    pub fn domain(&self, attr: AttrId) -> &[AttributeValue] {
        &self.domains[attr as usize]
    }

    /// The mixed-radix stride of an attribute.
    pub fn stride(&self, attr: AttrId) -> usize {
        self.strides[attr as usize]
    }

    /// The value id of `value` within the domain of `attr`.
    pub fn value_id(&self, attr: AttrId, value: &AttributeValue) -> Option<ValueId> {
        self.value_index[attr as usize].get(value).copied()
    }

    /// The concrete value behind a `(attribute, value-id)` pair.
    pub fn value(&self, attr: AttrId, digit: ValueId) -> &AttributeValue {
        &self.domains[attr as usize][digit as usize]
    }

    /// Decodes a state id into its digit vector.
    pub fn unpack(&self, id: usize) -> PackedState {
        let mut digits = vec![0u8; self.keys.len()];
        self.digits_of(id, &mut digits);
        PackedState { digits }
    }

    /// Decodes a state id into a caller-provided digit buffer (no allocation).
    pub fn digits_of(&self, id: usize, digits: &mut [u8]) {
        debug_assert!(id < self.state_count);
        debug_assert_eq!(digits.len(), self.keys.len());
        let mut rest = id;
        for (i, d) in digits.iter_mut().enumerate() {
            *d = (rest / self.strides[i]) as u8;
            rest %= self.strides[i];
        }
    }

    /// The digit of one attribute of a state, by pure index arithmetic.
    pub fn digit_of(&self, id: usize, attr: AttrId) -> ValueId {
        let i = attr as usize;
        ((id / self.strides[i]) % self.domains[i].len()) as ValueId
    }

    /// Encodes a digit vector back into its state id (the mixed-radix dot product).
    pub fn index_of(&self, state: &PackedState) -> usize {
        self.index_of_digits(&state.digits)
    }

    /// Encodes a raw digit slice back into its state id.
    pub fn index_of_digits(&self, digits: &[u8]) -> usize {
        debug_assert_eq!(digits.len(), self.keys.len());
        digits.iter().zip(&self.strides).map(|(d, s)| *d as usize * s).sum()
    }

    /// Advances a digit buffer to the next state in id order (odometer increment).
    /// Returns false after the last state.
    pub fn advance(&self, digits: &mut [u8]) -> bool {
        for i in (0..digits.len()).rev() {
            let radix = self.domains[i].len() as u8;
            if digits[i] + 1 < radix {
                digits[i] += 1;
                return true;
            }
            digits[i] = 0;
        }
        false
    }

    /// Packs a legacy [`State`] if it is a total valuation over exactly this schema's
    /// attributes with in-domain values; `None` otherwise (mirroring how the seed's
    /// linear `state_id` scan only matched total states).
    pub fn pack(&self, state: &State) -> Option<PackedState> {
        if state.values.len() != self.keys.len() {
            return None;
        }
        let mut digits = vec![0u8; self.keys.len()];
        for (key, value) in &state.values {
            let attr = self.attr_id(key)?;
            digits[attr as usize] = self.value_id(attr, value)?;
        }
        Some(PackedState { digits })
    }

    /// Materialises the legacy map view of one state id.
    pub fn materialize(&self, id: usize) -> State {
        let mut values = BTreeMap::new();
        let mut rest = id;
        for (i, key) in self.keys.iter().enumerate() {
            let digit = rest / self.strides[i];
            rest %= self.strides[i];
            values.insert(key.clone(), self.domains[i][digit].clone());
        }
        State { values }
    }

    /// Materialises the full state-space view in id order.
    ///
    /// Unlike the seed's progressive-cloning `cartesian_states`, this is a single
    /// odometer pass: each state map is built exactly once.
    pub fn materialize_all(&self) -> Vec<State> {
        let mut states = Vec::with_capacity(self.state_count);
        let mut digits = vec![0u8; self.keys.len()];
        loop {
            let mut values = BTreeMap::new();
            for (i, key) in self.keys.iter().enumerate() {
                values.insert(key.clone(), self.domains[i][digits[i] as usize].clone());
            }
            states.push(State { values });
            if !self.advance(&mut digits) {
                break;
            }
        }
        states
    }
}

/// A packed state: one domain digit per schema attribute. Equality is a flat byte
/// compare; hashing hashes the byte array — no string traffic at all.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedState {
    digits: Vec<u8>,
}

impl PackedState {
    /// The digit of one attribute.
    pub fn get(&self, attr: AttrId) -> ValueId {
        self.digits[attr as usize]
    }

    /// Sets the digit of one attribute.
    pub fn set(&mut self, attr: AttrId, digit: ValueId) {
        self.digits[attr as usize] = digit;
    }

    /// The raw digit slice.
    pub fn digits(&self) -> &[u8] {
        &self.digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2x3() -> (StateSchema, BTreeMap<AttrKey, Vec<AttributeValue>>) {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            ("a".to_string(), "x".to_string()),
            vec![AttributeValue::symbol("p"), AttributeValue::symbol("q")],
        );
        attrs.insert(
            ("b".to_string(), "y".to_string()),
            vec![
                AttributeValue::symbol("u"),
                AttributeValue::symbol("v"),
                AttributeValue::symbol("w"),
            ],
        );
        (StateSchema::new(&attrs), attrs)
    }

    #[test]
    fn id_digit_roundtrip() {
        let (schema, _) = schema2x3();
        assert_eq!(schema.state_count(), 6);
        assert_eq!(schema.attr_count(), 2);
        for id in 0..schema.state_count() {
            let packed = schema.unpack(id);
            assert_eq!(schema.index_of(&packed), id);
            for attr in 0..schema.attr_count() as AttrId {
                assert_eq!(schema.digit_of(id, attr), packed.get(attr));
            }
        }
    }

    #[test]
    fn mixed_radix_order_matches_seed_enumeration() {
        let (schema, attrs) = schema2x3();
        let legacy = crate::legacy::cartesian_states_legacy(&attrs);
        let packed: Vec<State> = schema.materialize_all();
        assert_eq!(legacy, packed);
        // Spot-check: first key is the most significant digit.
        assert_eq!(packed[0].get("a", "x"), Some(&AttributeValue::symbol("p")));
        assert_eq!(packed[3].get("a", "x"), Some(&AttributeValue::symbol("q")));
        assert_eq!(packed[3].get("b", "y"), Some(&AttributeValue::symbol("u")));
    }

    #[test]
    fn pack_rejects_partial_and_foreign_states() {
        let (schema, _) = schema2x3();
        let total = State::from_triples([
            ("a", "x", AttributeValue::symbol("q")),
            ("b", "y", AttributeValue::symbol("w")),
        ]);
        let packed = schema.pack(&total).unwrap();
        assert_eq!(schema.index_of(&packed), 5);
        let partial = State::from_triples([("a", "x", AttributeValue::symbol("q"))]);
        assert!(schema.pack(&partial).is_none());
        let foreign = State::from_triples([
            ("a", "x", AttributeValue::symbol("q")),
            ("c", "z", AttributeValue::symbol("w")),
        ]);
        assert!(schema.pack(&foreign).is_none());
        let out_of_domain = State::from_triples([
            ("a", "x", AttributeValue::symbol("q")),
            ("b", "y", AttributeValue::symbol("nope")),
        ]);
        assert!(schema.pack(&out_of_domain).is_none());
    }

    #[test]
    fn empty_domains_are_skipped() {
        let mut attrs = BTreeMap::new();
        attrs.insert(("a".to_string(), "x".to_string()), vec![AttributeValue::symbol("p")]);
        attrs.insert(("b".to_string(), "y".to_string()), Vec::new());
        let schema = StateSchema::new(&attrs);
        assert_eq!(schema.attr_count(), 1);
        assert_eq!(schema.state_count(), 1);
        assert!(schema.attr_id(&("b".to_string(), "y".to_string())).is_none());
    }

    #[test]
    fn empty_schema_has_one_state() {
        let schema = StateSchema::new(&BTreeMap::new());
        assert_eq!(schema.state_count(), 1);
        assert_eq!(schema.materialize_all().len(), 1);
    }

    #[test]
    fn odometer_advance_covers_every_state() {
        let (schema, _) = schema2x3();
        let mut digits = vec![0u8; schema.attr_count()];
        let mut seen = vec![schema.index_of_digits(&digits)];
        while schema.advance(&mut digits) {
            seen.push(schema.index_of_digits(&digits));
        }
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }
}
