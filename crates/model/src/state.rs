//! States of the extracted model: valuations of device attributes.

use soteria_capability::AttributeValue;
use std::collections::BTreeMap;
use std::fmt;

/// Key of one state component: `(device handle, attribute name)`.
pub type AttrKey = (String, String);

/// One `handle=value` (or `handle.attribute=value`) fragment of a state label. The
/// single place the formatting rule lives: [`State::label`] joins these for map
/// states, and the checker's Kripke structure derives its lazy state names from the
/// same fragments so counterexample traces match DOT/model labels exactly.
pub fn label_fragment(handle: &str, attribute: &str, value: &AttributeValue) -> String {
    if handle == attribute || attribute.is_empty() {
        format!("{handle}={value}")
    } else {
        format!("{handle}.{attribute}={value}")
    }
}

/// A state is a total valuation of the app's (abstracted) device attributes — the
/// paper models states as the Cartesian product of the attributes of the app's devices
/// (Sec. 4.2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct State {
    /// Attribute values keyed by `(handle, attribute)`.
    pub values: BTreeMap<AttrKey, AttributeValue>,
}

impl State {
    /// Builds a state from `(handle, attribute, value)` triples.
    pub fn from_triples<I, S>(triples: I) -> Self
    where
        I: IntoIterator<Item = (S, S, AttributeValue)>,
        S: Into<String>,
    {
        let mut values = BTreeMap::new();
        for (h, a, v) in triples {
            values.insert((h.into(), a.into()), v);
        }
        State { values }
    }

    /// The value of one attribute, if the state tracks it.
    pub fn get(&self, handle: &str, attribute: &str) -> Option<&AttributeValue> {
        self.values.get(&(handle.to_string(), attribute.to_string()))
    }

    /// Returns a copy of the state with one attribute updated.
    pub fn with(&self, handle: &str, attribute: &str, value: AttributeValue) -> State {
        let mut next = self.clone();
        next.values.insert((handle.to_string(), attribute.to_string()), value);
        next
    }

    /// True if every attribute assignment of `other` agrees with this state — i.e.
    /// this state "contains" the smaller state, the containment test used by the
    /// union algorithm (Algorithm 2, lines 5–6).
    pub fn contains(&self, other: &State) -> bool {
        other.values.iter().all(|(k, v)| self.values.get(k) == Some(v))
    }

    /// Restricts the state to the given attribute keys.
    pub fn project(&self, keys: &[AttrKey]) -> State {
        State {
            values: self
                .values
                .iter()
                .filter(|(k, _)| keys.contains(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// A short label used in DOT output and counter-example traces, e.g.
    /// `[smoke=detected, alarm=siren]`.
    pub fn label(&self) -> String {
        let parts: Vec<String> =
            self.values.iter().map(|((h, a), v)| label_fragment(h, a, v)).collect();
        format!("[{}]", parts.join(", "))
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(pairs: &[(&str, &str, &str)]) -> State {
        State::from_triples(
            pairs.iter().map(|(h, a, v)| (*h, *a, AttributeValue::symbol(*v))),
        )
    }

    #[test]
    fn get_with_and_display() {
        let st = s(&[("valve", "valve", "open"), ("sensor", "water", "dry")]);
        assert_eq!(st.get("valve", "valve"), Some(&AttributeValue::symbol("open")));
        assert_eq!(st.get("valve", "missing"), None);
        let st2 = st.with("valve", "valve", AttributeValue::symbol("closed"));
        assert_eq!(st2.get("valve", "valve"), Some(&AttributeValue::symbol("closed")));
        // The original is unchanged.
        assert_eq!(st.get("valve", "valve"), Some(&AttributeValue::symbol("open")));
        assert!(st.label().contains("valve=open"));
        assert!(st.label().contains("sensor.water=dry"));
    }

    #[test]
    fn containment_for_union_algorithm() {
        let big = s(&[("sw", "switch", "on"), ("m", "motion", "active"), ("l", "lock", "locked")]);
        let small = s(&[("sw", "switch", "on"), ("m", "motion", "active")]);
        let mismatched = s(&[("sw", "switch", "off")]);
        assert!(big.contains(&small));
        assert!(!big.contains(&mismatched));
        assert!(big.contains(&State::default()));
        assert!(!small.contains(&big));
    }

    #[test]
    fn projection() {
        let st = s(&[("sw", "switch", "on"), ("m", "motion", "active")]);
        let keys = vec![("sw".to_string(), "switch".to_string())];
        let projected = st.project(&keys);
        assert_eq!(projected.values.len(), 1);
        assert_eq!(projected.get("sw", "switch"), Some(&AttributeValue::symbol("on")));
    }

    #[test]
    fn states_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = s(&[("sw", "switch", "on")]);
        let b = s(&[("sw", "switch", "off")]);
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b.clone());
        set.insert(a.clone());
        assert_eq!(set.len(), 2);
        assert!(a > b); // "on" > "off" lexicographically
    }
}
