//! The finite state model `(Q, Σ, δ)` extracted from an app (Sec. 4.2).

use crate::schema::StateSchema;
use crate::state::{AttrKey, State};
use soteria_analysis::PathCondition;
use soteria_capability::{AttributeValue, Event};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Identifier of a state within a [`StateModel`] (index into `states`).
pub type StateId = usize;

/// A transition label: the triggering event, the guarding path condition, and (in
/// union models) the app the transition comes from — Algorithm 2 labels union edges
/// with the contributing app.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransitionLabel {
    /// The triggering event.
    pub event: Event,
    /// The path condition guarding the transition (trivial when unconditional).
    pub condition: PathCondition,
    /// The app contributing the transition (always set; meaningful in union models).
    pub app: String,
    /// The handler that produced the transition.
    pub handler: String,
    /// True if the transition only exists under the reflection over-approximation.
    pub via_reflection: bool,
}

impl fmt::Display for TransitionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.condition.is_trivial() {
            write!(f, "{}", self.event.kind)
        } else {
            write!(f, "{} [{}]", self.event.kind, self.condition)
        }
    }
}

/// A labelled transition between two states.
///
/// The label is behind an [`Arc`] so that union-model splices (the incremental
/// re-verification path keeps every unchanged member's transition block and
/// replaces only the edited member's) copy two indices and a refcount instead
/// of deep-cloning the label's strings. Equality and hashing still compare the
/// label by value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Label (shared, compared by value).
    pub label: Arc<TransitionLabel>,
}

/// A nondeterminism witness: one source state and one event with two feasible
/// transitions to different destinations. The paper reports nondeterministic state
/// models as a safety violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nondeterminism {
    /// Source state.
    pub state: StateId,
    /// The event with conflicting outcomes.
    pub event: Event,
    /// The two conflicting destinations.
    pub targets: (StateId, StateId),
}

/// The finite state model of one app (or of a multi-app environment).
///
/// The state space lives in the interned [`StateSchema`]: a state id and its packed
/// digit vector are interconvertible by index arithmetic, and the builders never
/// materialise state maps. The legacy map view ([`StateModel::states`]) is a lazy
/// projection, materialised in one odometer pass on first use, so consumers that
/// need map states (DOT/SMV rendering, counter-example labels, tests) keep working
/// while construction stays allocation-free.
#[derive(Debug, Clone, Default)]
pub struct StateModel {
    /// Name of the app (or of the app group for union models).
    pub name: String,
    /// The attribute domains defining the state space, keyed by `(handle, attribute)`.
    pub attributes: BTreeMap<AttrKey, Vec<AttributeValue>>,
    /// The interned schema: dense attribute/value ids and mixed-radix strides.
    pub schema: StateSchema,
    /// Lazily materialised legacy map view of the packed state space.
    states: std::sync::OnceLock<Vec<State>>,
    /// Labelled transitions.
    pub transitions: Vec<Transition>,
    /// The designated initial state (every attribute at its default value).
    pub initial: StateId,
}

impl StateModel {
    /// Creates an empty model over the given attribute domains, interning the schema.
    /// The map-state view is not materialised until [`StateModel::states`] is called.
    pub fn with_attributes(
        name: impl Into<String>,
        attributes: BTreeMap<AttrKey, Vec<AttributeValue>>,
    ) -> Self {
        StateModel {
            name: name.into(),
            schema: StateSchema::new(&attributes),
            attributes,
            states: std::sync::OnceLock::new(),
            transitions: Vec::new(),
            initial: 0,
        }
    }

    /// All states (the Cartesian product of the attribute domains) as the legacy map
    /// view, materialised on first call.
    pub fn states(&self) -> &[State] {
        self.states.get_or_init(|| self.schema.materialize_all())
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.schema.state_count()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The number of distinct state attributes (the paper's "state attributes" count
    /// in the multi-app micro-benchmark).
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// Looks up the identifier of a state by packing it against the schema (index
    /// arithmetic instead of the seed's linear scan).
    pub fn state_id(&self, state: &State) -> Option<StateId> {
        let packed = self.schema.pack(state)?;
        Some(self.schema.index_of(&packed))
    }

    /// The state with the given identifier.
    pub fn state(&self, id: StateId) -> &State {
        &self.states()[id]
    }

    /// An index for resolving states to identifiers; kept for callers that still
    /// resolve legacy map states in bulk. New code should prefer
    /// [`StateModel::state_id`], which is pure index arithmetic.
    pub fn state_index(&self) -> HashMap<State, StateId> {
        self.states().iter().cloned().enumerate().map(|(i, s)| (s, i)).collect()
    }

    /// Adds a transition (deduplicated).
    pub fn add_transition(&mut self, transition: Transition) {
        if !self.transitions.contains(&transition) {
            self.transitions.push(transition);
        }
    }

    /// Outgoing transitions of a state.
    pub fn outgoing(&self, state: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// All distinct event labels appearing on transitions (the alphabet Σ).
    pub fn alphabet(&self) -> Vec<String> {
        let mut labels: Vec<String> =
            self.transitions.iter().map(|t| t.label.event.kind.label()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// States reachable from the initial state (following transitions in any order).
    pub fn reachable_from_initial(&self) -> Vec<StateId> {
        let mut visited = vec![false; self.state_count()];
        let mut stack = vec![self.initial];
        visited[self.initial] = true;
        while let Some(s) = stack.pop() {
            for t in self.outgoing(s) {
                if !visited[t.to] {
                    visited[t.to] = true;
                    stack.push(t.to);
                }
            }
        }
        visited
            .iter()
            .enumerate()
            .filter_map(|(i, v)| if *v { Some(i) } else { None })
            .collect()
    }

    /// Detects nondeterminism: a state with two feasible transitions on the same event
    /// (with jointly satisfiable conditions) that lead to different states.
    pub fn nondeterminism(&self) -> Vec<Nondeterminism> {
        let mut found = Vec::new();
        let mut by_state_event: BTreeMap<(StateId, String), Vec<&Transition>> = BTreeMap::new();
        for t in &self.transitions {
            by_state_event
                .entry((t.from, format!("{}:{}", t.label.event.handle, t.label.event.kind)))
                .or_default()
                .push(t);
        }
        for ((state, _), transitions) in by_state_event {
            for (i, a) in transitions.iter().enumerate() {
                for b in transitions.iter().skip(i + 1) {
                    if a.to == b.to {
                        continue;
                    }
                    // Conditions that can hold simultaneously make the choice of
                    // successor nondeterministic.
                    let joint = a.label.condition.and_all(&b.label.condition.atoms);
                    if joint.is_feasible() {
                        found.push(Nondeterminism {
                            state,
                            event: a.label.event.clone(),
                            targets: (a.to, b.to),
                        });
                    }
                }
            }
        }
        found
    }
}

/// Enumerates the Cartesian product of the attribute domains as concrete states.
///
/// The enumeration order is the schema's mixed-radix id order (first key most
/// significant), which is exactly the order the seed's progressive-cloning
/// implementation produced.
pub fn cartesian_states(attributes: &BTreeMap<AttrKey, Vec<AttributeValue>>) -> Vec<State> {
    StateSchema::new(attributes).materialize_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_capability::EventKind;

    fn two_attr_model() -> StateModel {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            ("sensor".to_string(), "water".to_string()),
            vec![AttributeValue::symbol("dry"), AttributeValue::symbol("wet")],
        );
        attrs.insert(
            ("valve".to_string(), "valve".to_string()),
            vec![AttributeValue::symbol("open"), AttributeValue::symbol("closed")],
        );
        StateModel::with_attributes("Water-Leak-Detector", attrs)
    }

    fn wet_event() -> Event {
        Event::new("sensor", EventKind::device("waterSensor", "water", Some("wet")))
    }

    fn label(event: Event) -> Arc<TransitionLabel> {
        Arc::new(TransitionLabel {
            event,
            condition: PathCondition::top(),
            app: "Water-Leak-Detector".into(),
            handler: "h".into(),
            via_reflection: false,
        })
    }

    #[test]
    fn cartesian_product_of_attributes() {
        let model = two_attr_model();
        // Two binary attributes: four states, as in the paper's Water-Leak-Detector
        // example (Sec. 4.2.1).
        assert_eq!(model.state_count(), 4);
        assert_eq!(model.attribute_count(), 2);
        assert!(model
            .states()
            .iter()
            .any(|s| s.get("sensor", "water") == Some(&AttributeValue::symbol("wet"))
                && s.get("valve", "valve") == Some(&AttributeValue::symbol("closed"))));
    }

    #[test]
    fn transitions_and_reachability() {
        let mut model = two_attr_model();
        let from = model
            .state_id(&State::from_triples([
                ("sensor", "water", AttributeValue::symbol("dry")),
                ("valve", "valve", AttributeValue::symbol("open")),
            ]))
            .unwrap();
        let to = model
            .state_id(&State::from_triples([
                ("sensor", "water", AttributeValue::symbol("wet")),
                ("valve", "valve", AttributeValue::symbol("closed")),
            ]))
            .unwrap();
        model.initial = from;
        model.add_transition(Transition { from, to, label: label(wet_event()) });
        // Duplicate insertion is ignored.
        model.add_transition(Transition { from, to, label: label(wet_event()) });
        assert_eq!(model.transition_count(), 1);
        assert_eq!(model.alphabet(), vec!["water.wet".to_string()]);
        let reachable = model.reachable_from_initial();
        assert!(reachable.contains(&from));
        assert!(reachable.contains(&to));
        assert_eq!(reachable.len(), 2);
        assert_eq!(model.outgoing(from).count(), 1);
    }

    #[test]
    fn nondeterminism_detection() {
        let mut model = two_attr_model();
        let from = 0;
        model.add_transition(Transition { from, to: 1, label: label(wet_event()) });
        model.add_transition(Transition { from, to: 2, label: label(wet_event()) });
        let nd = model.nondeterminism();
        assert_eq!(nd.len(), 1);
        assert_eq!(nd[0].state, from);
        assert_eq!(nd[0].targets, (1, 2));
    }

    #[test]
    fn mutually_exclusive_conditions_are_deterministic() {
        use soteria_analysis::{Atom, SymValue};
        use soteria_lang::BinOp;
        let mut model = two_attr_model();
        let power = SymValue::DeviceAttr { handle: "pm".into(), attribute: "power".into() };
        let mut high = (*label(wet_event())).clone();
        high.condition =
            PathCondition::top().and(Atom::new(power.clone(), BinOp::Gt, SymValue::number(50)));
        let high = Arc::new(high);
        let mut low = (*label(wet_event())).clone();
        low.condition =
            PathCondition::top().and(Atom::new(power, BinOp::Lt, SymValue::number(5)));
        let low = Arc::new(low);
        model.add_transition(Transition { from: 0, to: 1, label: high });
        model.add_transition(Transition { from: 0, to: 2, label: low });
        assert!(model.nondeterminism().is_empty());
    }

    #[test]
    fn empty_attribute_map_gives_single_state() {
        let model = StateModel::with_attributes("empty", BTreeMap::new());
        assert_eq!(model.state_count(), 1);
    }
}
