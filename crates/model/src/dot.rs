//! GraphViz (DOT) rendering of state models.
//!
//! The original system visualises extracted state models with GraphViz (Fig. 9 shows
//! the `WaterLeakDetector.dot` output); this module produces equivalent DOT text.

use crate::model::StateModel;
use std::fmt::Write as _;

/// Renders a state model as a GraphViz `digraph`.
///
/// Unreachable states can be omitted with `reachable_only` to keep the diagrams
/// readable for large models.
pub fn render_dot(model: &StateModel, reachable_only: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(&model.name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    let keep: Vec<bool> = if reachable_only {
        let reachable = model.reachable_from_initial();
        (0..model.state_count()).map(|i| reachable.contains(&i)).collect()
    } else {
        vec![true; model.state_count()]
    };
    for (id, state) in model.states().iter().enumerate() {
        if !keep[id] {
            continue;
        }
        let shape = if id == model.initial { ", style=bold" } else { "" };
        let _ = writeln!(out, "  s{} [label=\"{}\"{}];", id, sanitize(&state.label()), shape);
    }
    for t in &model.transitions {
        if !keep[t.from] || !keep[t.to] {
            continue;
        }
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{}\"];",
            t.from,
            t.to,
            sanitize(&t.label.to_string())
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn sanitize(s: &str) -> String {
    s.replace('"', "'")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Transition, TransitionLabel};
    use soteria_analysis::PathCondition;
    use soteria_capability::{AttributeValue, Event, EventKind};
    use std::collections::BTreeMap;

    fn model() -> StateModel {
        let mut attrs = BTreeMap::new();
        attrs.insert(
            ("valve".to_string(), "valve".to_string()),
            vec![AttributeValue::symbol("open"), AttributeValue::symbol("closed")],
        );
        let mut m = StateModel::with_attributes("WaterLeakDetector", attrs);
        m.add_transition(Transition {
            from: 0,
            to: 1,
            label: std::sync::Arc::new(TransitionLabel {
                event: Event::new("w", EventKind::device("waterSensor", "water", Some("wet"))),
                condition: PathCondition::top(),
                app: "WaterLeakDetector".into(),
                handler: "h".into(),
                via_reflection: false,
            }),
        });
        m
    }

    #[test]
    fn dot_contains_states_and_edges() {
        let dot = render_dot(&model(), false);
        assert!(dot.starts_with("digraph \"WaterLeakDetector\""));
        assert!(dot.contains("s0 [label=\"[valve=open]\", style=bold]"));
        assert!(dot.contains("s1 [label=\"[valve=closed]\"]"));
        assert!(dot.contains("s0 -> s1 [label=\"water.wet\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn reachable_only_omits_isolated_states() {
        let dot = render_dot(&model(), true);
        // Both states are reachable here, so both appear.
        assert!(dot.contains("s0 "));
        assert!(dot.contains("s1 "));
        // Quotes in labels are sanitised.
        assert!(!dot.contains("\\\""));
    }
}
