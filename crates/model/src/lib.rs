//! State models extracted from IoT apps (Sec. 4.2 and 4.4 of the paper).
//!
//! A state model is a triple `(Q, Σ, δ)`: states are valuations of the app's
//! (abstracted) device attributes, transition labels carry the triggering event and
//! the guarding path condition, and the transition function is represented explicitly.
//! The crate provides:
//!
//! * [`State`] / [`StateModel`] — the model representation, reachability, alphabet,
//!   and the nondeterminism check the paper reports as a safety violation;
//! * [`StateSchema`] / [`PackedState`] — the interned schema: `(handle, attribute)`
//!   keys become dense `u16` attribute ids, domain values become `u8` value ids, and
//!   a state is a flat digit vector interconvertible with its state id by mixed-radix
//!   index arithmetic;
//! * [`build_state_model`] — construction from the analysis crate's transition
//!   specifications and property abstraction;
//! * [`union_models`] — Algorithm 2, the multi-app union model (and
//!   [`union_models_delta`], its single-member-edit incremental variant);
//! * [`render_dot`] — GraphViz output equivalent to the paper's Fig. 9 visualisation.
//!
//! # The packed fast path
//!
//! The seed represented every state as a `BTreeMap<(String, String), AttributeValue>`
//! and resolved successor states through a `HashMap<State, StateId>`: every transition
//! cloned a tree map and re-hashed its string keys, and the union algorithm scanned
//! every union state per lifted edge. The hot paths now run end-to-end on the schema:
//!
//! * **Construction** ([`build_state_model`]): each transition spec is compiled once
//!   into `(attribute id, value digit)` updates; the Cartesian product is walked with
//!   an odometer over the digit buffer, and the successor id is
//!   `from_id + Σ (new_digit − old_digit) · stride` — no state maps, no hashing.
//! * **Union** ([`union_models`]): a lifted edge fixes the digits of the contributing
//!   app's attributes and enumerates only the free attributes' sub-product; the
//!   destination offset is a constant per edge. Complexity drops from
//!   `O(edges × union states)` to `O(edges × free sub-product)`.
//! * **Checking** (`soteria-checker`): atom labels are bitset rows over the state
//!   universe with a hashed atom index, so `Ctl::Atom` satisfaction is a row clone.
//!
//! The legacy map view stays available: `StateModel::states()` materialises the
//! Cartesian product lazily in one odometer pass on first use, and the public
//! `State` API is unchanged. The seed implementations are preserved in [`legacy`]
//! for differential testing and for the before/after numbers recorded in
//! `BENCH_pr1.json` (see `crates/bench`, `cargo bench`, and the `packed_vs_legacy`
//! binary).

pub mod builder;
pub mod dot;
pub mod legacy;
pub mod model;
pub mod schema;
pub mod state;
pub mod union;

pub use builder::{build_state_model, touched_keys, BuildOptions};
pub use dot::render_dot;
pub use model::{Nondeterminism, StateId, StateModel, Transition, TransitionLabel};
pub use schema::{AttrId, PackedState, StateSchema, ValueId};
pub use state::{label_fragment, AttrKey, State};
pub use union::{union_models, union_models_delta, UnionOptions};
