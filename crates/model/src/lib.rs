//! State models extracted from IoT apps (Sec. 4.2 and 4.4 of the paper).
//!
//! A state model is a triple `(Q, Σ, δ)`: states are valuations of the app's
//! (abstracted) device attributes, transition labels carry the triggering event and
//! the guarding path condition, and the transition function is represented explicitly.
//! The crate provides:
//!
//! * [`State`] / [`StateModel`] — the model representation, reachability, alphabet,
//!   and the nondeterminism check the paper reports as a safety violation;
//! * [`build_state_model`] — construction from the analysis crate's transition
//!   specifications and property abstraction;
//! * [`union_models`] — Algorithm 2, the multi-app union model;
//! * [`render_dot`] — GraphViz output equivalent to the paper's Fig. 9 visualisation.

pub mod builder;
pub mod dot;
pub mod model;
pub mod state;
pub mod union;

pub use builder::{build_state_model, touched_keys, BuildOptions};
pub use dot::render_dot;
pub use model::{Nondeterminism, StateId, StateModel, Transition, TransitionLabel};
pub use state::{AttrKey, State};
pub use union::{union_models, UnionOptions};
