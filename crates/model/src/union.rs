//! The multi-app union model (Algorithm 2, Sec. 4.4).
//!
//! Apps in a shared environment interact through common devices and abstract events
//! (location mode). The union of their state models captures the complete behaviour of
//! the environment: union states are drawn from the Cartesian product of the combined
//! attribute domains (duplicate devices deduplicated), and every app transition
//! `v --l--> u` is added between all union states containing `v` and the corresponding
//! updates to `u`, labelled with the contributing app.

use crate::builder::LabelInterner;
use crate::model::{StateModel, Transition, TransitionLabel};
use crate::schema::{AttrId, StateSchema, ValueId};
use crate::state::AttrKey;
use soteria_capability::AttributeValue;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Options for the union construction.
#[derive(Debug, Clone)]
pub struct UnionOptions {
    /// Drop attributes no app's transitions touch; keeps large environments tractable.
    pub prune_untouched_attributes: bool,
    /// Hard state cap; exceeding it switches pruning on automatically.
    pub max_states: usize,
    /// Worker threads for the free sub-product enumeration (`0` = resolve from
    /// `SOTERIA_THREADS` / the machine's parallelism). The union is byte-identical
    /// — same transitions in the same order — at every thread count.
    pub threads: usize,
}

impl Default for UnionOptions {
    fn default() -> Self {
        UnionOptions { prune_untouched_attributes: true, max_states: 60_000, threads: 0 }
    }
}

/// Minimum per-model lift work (transitions × free sub-product) before the
/// enumeration fans out; smaller lifts finish well under the cost of spawning
/// scoped workers.
const UNION_PARALLEL_WORK: usize = 4_096;

/// One app transition compiled against the union schema: the paper's "all union
/// states containing v" is `base + (free sub-product)`, and the destination is a
/// constant `offset` away.
struct LiftedEdge {
    base: usize,
    offset: isize,
    class: usize,
    label: std::sync::Arc<TransitionLabel>,
}

/// Advances `digits` as a mixed-radix odometer over `radices` (last position
/// fastest); returns false once the odometer wraps back to all zeros. Shared by
/// the sequential lift, the parallel partitions, and the prefix enumeration so
/// all three walk the identical order — the byte-identity guarantee depends on
/// it. Empty (or radix-0/1) positions never advance.
fn advance_digits(digits: &mut [u8], radices: &[u8]) -> bool {
    for i in (0..digits.len()).rev() {
        if digits[i] + 1 < radices[i].max(1) {
            digits[i] += 1;
            return true;
        }
        digits[i] = 0;
    }
    false
}

/// Every digit combination over `radices`, ascending (odometer order, last
/// position fastest) — the exact order the sequential enumeration visits.
fn digit_combos(radices: &[u8]) -> Vec<Vec<u8>> {
    let mut combos = Vec::new();
    let mut digits = vec![0u8; radices.len()];
    loop {
        combos.push(digits.clone());
        if !advance_digits(&mut digits, radices) {
            return combos;
        }
    }
}

/// Builds the union state model of several apps (Algorithm 2).
///
/// The construction runs entirely on the packed schema: a lifted transition fixes
/// the digits of the contributing app's attributes (the paper's "union states that
/// contain v") and enumerates only the remaining free attributes' sub-product; the
/// destination is `from + offset` for a per-edge constant offset. The seed scanned
/// every union state per edge.
///
/// Large lifts fan out across scoped worker threads
/// ([`UnionOptions::threads`], default `SOTERIA_THREADS`/auto): the free
/// sub-product is partitioned by its leading digits, each worker builds the
/// transition block of one partition, and the blocks merge back in enumeration
/// order — the resulting model is byte-identical at every thread count.
pub fn union_models(name: &str, models: &[&StateModel], options: &UnionOptions) -> StateModel {
    let _span = soteria_obs::span("union.build");
    let attributes = merged_attributes(models, options);
    let mut union = StateModel::with_attributes(name, attributes);
    let uschema = &union.schema;
    let mut interner = LabelInterner::default();
    let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
    let mut lifted: Vec<Transition> = Vec::new();
    let threads = soteria_exec::resolve_threads(options.threads);
    // In-stage abort (`soteria_exec::current_abort`): polled once per compiled
    // edge — each edge enumerates the whole free sub-product, so a G.3-scale
    // lift observes an abort within one edge's block rather than finishing a
    // 47k-state union nobody wants. `None` on non-service paths: a dead branch.
    let abort = soteria_exec::current_abort();
    let names_unique = unique_names(models);

    // Lines 2–12: iterate over every app's transitions and lift them to the union.
    for model in models {
        lift_model(
            model,
            uschema,
            &mut interner,
            &mut seen,
            &mut lifted,
            threads,
            names_unique,
            &abort,
        );
    }
    union.transitions = lifted;
    union
}

/// Line 1 of Algorithm 2: the union's combined attribute domains. Attributes of
/// duplicate devices (same handle + attribute across apps) are merged with a
/// side set for O(1) duplicate checks while keeping first-seen value order;
/// untouched attributes are pruned per [`UnionOptions`]. Deterministic in the
/// member models alone, which is what lets [`union_models_delta`] validate a
/// cached base model by comparing this map against `base.attributes`.
fn merged_attributes(
    models: &[&StateModel],
    options: &UnionOptions,
) -> BTreeMap<AttrKey, Vec<AttributeValue>> {
    let mut attributes: BTreeMap<AttrKey, Vec<AttributeValue>> = BTreeMap::new();
    let mut known: HashMap<AttrKey, HashSet<AttributeValue>> = HashMap::new();
    for model in models {
        for (key, domain) in &model.attributes {
            let entry = attributes.entry(key.clone()).or_default();
            let seen = known.entry(key.clone()).or_default();
            for v in domain {
                if seen.insert(v.clone()) {
                    entry.push(v.clone());
                }
            }
        }
    }
    let product: usize = attributes.values().map(|d| d.len().max(1)).product();
    if options.prune_untouched_attributes || product > options.max_states {
        let touched = touched_union_keys(models);
        attributes.retain(|k, _| touched.contains(k));
    }
    attributes
}

/// True when no two models share a name. Dedup classes embed the contributing
/// app's name, so lifts from models with distinct names can never collide —
/// the cross-model `seen` filter only has work to do when the same app appears
/// twice in the union.
fn unique_names(models: &[&StateModel]) -> bool {
    let mut names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
    names.sort_unstable();
    names.windows(2).all(|w| w[0] != w[1])
}

/// Lifts one member model's transitions into the union schema, appending its
/// block to `lifted` in the canonical enumeration order (transition-major, free
/// sub-product minor). Factored out of [`union_models`] so
/// [`union_models_delta`] can re-lift exactly one member; both callers feed the
/// same arguments, so a block produced here is byte-identical wherever it is
/// produced.
#[allow(clippy::too_many_arguments)]
fn lift_model(
    model: &StateModel,
    uschema: &StateSchema,
    interner: &mut LabelInterner,
    seen: &mut HashSet<(usize, usize, usize)>,
    lifted: &mut Vec<Transition>,
    threads: usize,
    names_unique: bool,
    abort: &Option<soteria_exec::AbortHandle>,
) {
    {
        let aschema = &model.schema;
        // App attribute -> union attribute (None when pruned from the union), and app
        // value digit -> union value digit (union domains are supersets, so mapped
        // digits always exist).
        let attr_map: Vec<Option<AttrId>> =
            aschema.keys().iter().map(|k| uschema.attr_id(k)).collect();
        let digit_map: Vec<Vec<ValueId>> = (0..aschema.attr_count())
            .map(|a| {
                let a = a as AttrId;
                match attr_map[a as usize] {
                    Some(u) => aschema
                        .domain(a)
                        .iter()
                        .map(|v| uschema.value_id(u, v).expect("union domain is a superset"))
                        .collect(),
                    None => Vec::new(),
                }
            })
            .collect();
        // Union attributes not constrained by this app: the free sub-product each
        // edge enumerates. Identical for every transition of the model.
        let constrained: HashSet<AttrId> =
            attr_map.iter().filter_map(|u| *u).collect();
        let free: Vec<AttrId> = (0..uschema.attr_count() as AttrId)
            .filter(|u| !constrained.contains(u))
            .collect();
        let radices: Vec<u8> = free.iter().map(|u| uschema.domain(*u).len() as u8).collect();
        let strides: Vec<usize> = free.iter().map(|u| uschema.stride(*u)).collect();
        let sub_product: usize = radices.iter().map(|&r| r.max(1) as usize).product();

        let mut from_digits = vec![0u8; aschema.attr_count()];
        let mut to_digits = vec![0u8; aschema.attr_count()];
        // Compile every transition once, in transition order: V' base, destination
        // offset, lifted label, and dedup class. Most transitions of a model share a
        // label; resolving the class once per distinct label (keyed by reference, no
        // clones) keeps the interner off the per-edge path.
        let mut label_class: HashMap<&TransitionLabel, usize> = HashMap::new();
        let mut edges: Vec<LiftedEdge> = Vec::with_capacity(model.transitions.len());
        for t in &model.transitions {
            aschema.digits_of(t.from, &mut from_digits[..aschema.attr_count()]);
            aschema.digits_of(t.to, &mut to_digits[..aschema.attr_count()]);
            // V': fixing the app's attributes to v's digits yields exactly the union
            // states containing v. The transition's delta (digits where u differs
            // from v) becomes a constant destination offset.
            let mut base = 0usize;
            let mut offset = 0isize;
            for (a, u) in attr_map.iter().enumerate() {
                let Some(u) = *u else { continue };
                let vd = digit_map[a][from_digits[a] as usize] as usize;
                let stride = uschema.stride(u);
                base += vd * stride;
                if to_digits[a] != from_digits[a] {
                    let ud = digit_map[a][to_digits[a] as usize] as usize;
                    offset += (ud as isize - vd as isize) * stride as isize;
                }
            }
            let label = std::sync::Arc::new(TransitionLabel {
                event: t.label.event.clone(),
                condition: t.label.condition.clone(),
                app: model.name.clone(),
                handler: t.label.handler.clone(),
                via_reflection: t.label.via_reflection,
            });
            let class = *label_class.entry(&t.label).or_insert_with(|| {
                interner.class_of(
                    &t.label.event,
                    &t.label.condition,
                    &model.name,
                    &t.label.handler,
                )
            });
            edges.push(LiftedEdge { base, offset, class, label });
        }

        if threads > 1 && sub_product > 1 && edges.len() * sub_product >= UNION_PARALLEL_WORK {
            // Parallel lift: partition the free sub-product by its leading digits.
            // Each partition covers one prefix of the free digit vector — a
            // contiguous block of the sequential enumeration order — and partitions
            // generate disjoint `from_id` sets (a union state id fixes every digit,
            // the prefix included), so per-partition dedup plus the edge-major /
            // partition-minor merge below reproduces the sequential output exactly.
            let mut prefix_len = 0;
            let mut partitions = 1usize;
            while prefix_len < free.len() && partitions < threads * 2 {
                partitions *= radices[prefix_len].max(1) as usize;
                prefix_len += 1;
            }
            let prefixes = digit_combos(&radices[..prefix_len]);
            let mut blocks = soteria_exec::par_map(&prefixes, threads, |prefix| {
                let prefix_base: usize =
                    prefix.iter().zip(&strides).map(|(&d, s)| d as usize * s).sum();
                let rest_radices = &radices[prefix_len..];
                let rest_strides = &strides[prefix_len..];
                let mut task_seen: HashSet<(usize, usize, usize)> = HashSet::new();
                let mut out: Vec<Vec<Transition>> = (0..edges.len()).map(|_| Vec::new()).collect();
                let mut rest = vec![0u8; rest_radices.len()];
                for (ei, edge) in edges.iter().enumerate() {
                    if let Some(abort) = &abort {
                        abort.bail_if_aborted();
                    }
                    rest.fill(0);
                    loop {
                        let from_id = edge.base
                            + prefix_base
                            + rest
                                .iter()
                                .zip(rest_strides)
                                .map(|(&d, s)| d as usize * s)
                                .sum::<usize>();
                        let to_id = (from_id as isize + edge.offset) as usize;
                        if task_seen.insert((from_id, to_id, edge.class)) {
                            out[ei].push(Transition {
                                from: from_id,
                                to: to_id,
                                label: edge.label.clone(),
                            });
                        }
                        if !advance_digits(&mut rest, rest_radices) {
                            break;
                        }
                    }
                }
                out
            });
            // Merge in sequential order: per edge, the partitions ascend exactly as
            // the full odometer would. The shared `seen` set still filters
            // duplicates against *other* models' lifts (identical apps unioned
            // twice), as in the sequential path — skipped entirely when model
            // names are unique, where no cross-model collision is possible.
            for (ei, edge) in edges.iter().enumerate() {
                for block in &mut blocks {
                    if names_unique {
                        lifted.append(&mut block[ei]);
                    } else {
                        for t in block[ei].drain(..) {
                            if seen.insert((t.from, t.to, edge.class)) {
                                lifted.push(t);
                            }
                        }
                    }
                }
            }
        } else {
            // Sequential lift: U' per union state, enumerating the free attributes'
            // sub-product in ascending id order (odometer over the free positions).
            let mut free_digits = vec![0u8; free.len()];
            for edge in &edges {
                if let Some(abort) = &abort {
                    abort.bail_if_aborted();
                }
                free_digits.fill(0);
                loop {
                    let from_id = edge.base
                        + free_digits
                            .iter()
                            .zip(&strides)
                            .map(|(&d, s)| d as usize * s)
                            .sum::<usize>();
                    let to_id = (from_id as isize + edge.offset) as usize;
                    if seen.insert((from_id, to_id, edge.class)) {
                        lifted.push(Transition {
                            from: from_id,
                            to: to_id,
                            label: edge.label.clone(),
                        });
                    }
                    if !advance_digits(&mut free_digits, &radices) {
                        break;
                    }
                }
            }
        }
    }
}

/// Rebuilds the union model after a single member changed, re-lifting only that
/// member and splicing every other member's transition block from the cached
/// `base` — the incremental half of ROADMAP item 3. Returns `None` whenever the
/// delta path cannot guarantee byte-identity with a from-scratch
/// [`union_models`] call, in which case the caller falls back to the full
/// rebuild:
///
/// * a member index out of range, or duplicate member names (with duplicates
///   the shared dedup set couples the members' blocks);
/// * a changed *attribute domain*: [`merged_attributes`] over the new member
///   list must equal `base.attributes` exactly — equal domain maps intern to
///   an identical [`StateSchema`] (same dense ids, radices, and strides), which
///   is what makes the base's untouched blocks valid in the new union;
/// * a base whose transitions do not partition into per-member runs (a model
///   that did not come from `union_models` over these members).
///
/// Unlike the from-scratch signature, the delta takes the full member list
/// (with the *edited* model at `changed_member_idx`), because validating the
/// schema — and rebuilding on fallback — needs every member, not just the
/// changed one.
///
/// The stride math mirrors the lift itself: a member's block depends only on
/// the union schema (its own digits fix the constrained positions; the free
/// sub-product supplies `base + offset` enumeration) and on its own
/// transitions. Editing member *i* therefore leaves every other block
/// bit-for-bit unchanged, and the blocks splice in member order — the exact
/// edge-major order `union_models` emits.
pub fn union_models_delta(
    base: &StateModel,
    members: &[&StateModel],
    changed_member_idx: usize,
    options: &UnionOptions,
) -> Option<StateModel> {
    if changed_member_idx >= members.len() || !unique_names(members) {
        return None;
    }
    let _span = soteria_obs::span("union.delta");
    let attributes = merged_attributes(members, options);
    if attributes != base.attributes {
        return None;
    }
    // Recover the per-member blocks of the base: maximal runs of transitions
    // labelled with each member's name, in member order. With unique names a
    // lift emits exactly one contiguous block per member, so the runs must
    // cover the base's transitions completely.
    let mut blocks: Vec<(usize, usize)> = Vec::with_capacity(members.len());
    let mut cursor = 0usize;
    for member in members {
        let start = cursor;
        while cursor < base.transitions.len()
            && base.transitions[cursor].label.app == member.name
        {
            cursor += 1;
        }
        blocks.push((start, cursor));
    }
    if cursor != base.transitions.len() {
        return None;
    }

    let mut union = StateModel::with_attributes(&base.name, attributes);
    let uschema = &union.schema;
    // A fresh interner and dedup set are sound here: with unique member names
    // the shared set never filters across members, and dedup classes only
    // distinguish labels *within* the one re-lifted member — class ids never
    // reach the output transitions.
    let mut interner = LabelInterner::default();
    let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
    let mut new_block: Vec<Transition> = Vec::new();
    let threads = soteria_exec::resolve_threads(options.threads);
    let abort = soteria_exec::current_abort();
    lift_model(
        members[changed_member_idx],
        uschema,
        &mut interner,
        &mut seen,
        &mut new_block,
        threads,
        true,
        &abort,
    );

    let (start, end) = blocks[changed_member_idx];
    let mut transitions =
        Vec::with_capacity(base.transitions.len() - (end - start) + new_block.len());
    for (i, &(start, end)) in blocks.iter().enumerate() {
        if i == changed_member_idx {
            transitions.append(&mut new_block);
        } else {
            transitions.extend_from_slice(&base.transitions[start..end]);
        }
    }
    union.transitions = transitions;
    Some(union)
}

/// Attribute keys any app's transitions touch: attributes whose value changes across
/// an edge, plus the subscribed attribute of each event. Computed on packed digits
/// with set-based membership (the seed ran `Vec::contains` linear scans per key).
fn touched_union_keys(models: &[&StateModel]) -> HashSet<AttrKey> {
    let mut touched: HashSet<AttrKey> = HashSet::new();
    for model in models {
        let schema = &model.schema;
        for t in &model.transitions {
            if t.from != t.to {
                for attr in 0..schema.attr_count() as AttrId {
                    if schema.digit_of(t.from, attr) != schema.digit_of(t.to, attr) {
                        touched.insert(schema.keys()[attr as usize].clone());
                    }
                }
            }
            // The subscribed attribute itself is touched by the event.
            if let soteria_capability::EventKind::Device { attribute, .. } = &t.label.event.kind {
                touched.insert((t.label.event.handle.clone(), attribute.clone()));
            }
            if matches!(t.label.event.kind, soteria_capability::EventKind::Mode { .. }) {
                touched.insert(("location".to_string(), "mode".to_string()));
            }
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;
    use soteria_analysis::PathCondition;
    use soteria_capability::{Event, EventKind};

    /// Builds a small hand-crafted model over the given binary attributes with the
    /// given `(event, changed attribute, new value)` transitions applied from every
    /// state (mirroring how the app-level builder works).
    fn mini_model(
        name: &str,
        attrs: &[(&str, &str, &[&str])],
        transitions: &[(Event, &str, &str, &str)],
    ) -> StateModel {
        let mut map = BTreeMap::new();
        for (h, a, values) in attrs {
            map.insert(
                (h.to_string(), a.to_string()),
                values.iter().map(|v| AttributeValue::symbol(*v)).collect(),
            );
        }
        let mut model = StateModel::with_attributes(name, map);
        let index = model.state_index();
        let mut new = Vec::new();
        for (id, state) in model.states().iter().enumerate() {
            for (event, handle, attr, value) in transitions {
                let target = state.with(handle, attr, AttributeValue::symbol(*value));
                if let Some(&to) = index.get(&target) {
                    new.push(Transition {
                        from: id,
                        to,
                        label: std::sync::Arc::new(TransitionLabel {
                            event: event.clone(),
                            condition: PathCondition::top(),
                            app: name.to_string(),
                            handler: "h".to_string(),
                            via_reflection: false,
                        }),
                    });
                }
            }
        }
        for t in new {
            model.add_transition(t);
        }
        model
    }

    fn smoke_event() -> Event {
        Event::new("smoke", EventKind::device("smokeDetector", "smoke", Some("detected")))
    }

    fn switch_on_event() -> Event {
        Event::new("sw", EventKind::device("switch", "switch", Some("on")))
    }

    #[test]
    fn union_deduplicates_shared_devices() {
        // Smoke-Alarm: smoke-detected turns the switch on.
        let smoke_alarm = mini_model(
            "Smoke-Alarm",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        // App1: switch-on changes the mode to home.
        let app1 = mini_model(
            "App1",
            &[("sw", "switch", &["off", "on"]), ("location", "mode", &["away", "home"])],
            &[(switch_on_event(), "location", "mode", "home")],
        );
        let union = union_models("G", &[&smoke_alarm, &app1], &UnionOptions::default());
        // Shared switch is deduplicated: switch × mode = 4 states.
        assert_eq!(union.state_count(), 4);
        // Both apps' transitions are present and labelled with their app.
        assert!(union.transitions.iter().any(|t| t.label.app == "Smoke-Alarm"));
        assert!(union.transitions.iter().any(|t| t.label.app == "App1"));
    }

    #[test]
    fn union_enables_cross_app_chains() {
        let smoke_alarm = mini_model(
            "Smoke-Alarm",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let app1 = mini_model(
            "App1",
            &[("sw", "switch", &["off", "on"]), ("location", "mode", &["away", "home"])],
            &[(switch_on_event(), "location", "mode", "home")],
        );
        let union = union_models("G", &[&smoke_alarm, &app1], &UnionOptions::default());
        // Starting from switch-off/away, the smoke event reaches switch-on/away, from
        // which App1's switch-on transition reaches mode home: the chained misuse case
        // of Sec. 4.4.
        let start = union
            .state_id(&State::from_triples([
                ("sw", "switch", AttributeValue::symbol("off")),
                ("location", "mode", AttributeValue::symbol("away")),
            ]))
            .unwrap();
        let mut model = union.clone();
        model.initial = start;
        let reachable = model.reachable_from_initial();
        let home_on = model
            .state_id(&State::from_triples([
                ("sw", "switch", AttributeValue::symbol("on")),
                ("location", "mode", AttributeValue::symbol("home")),
            ]))
            .unwrap();
        assert!(reachable.contains(&home_on));
    }

    #[test]
    fn conflicting_apps_create_nondeterminism_in_union() {
        // Smoke-Alarm turns the switch on on smoke; App2 turns it off on smoke (S.1
        // violation in the paper's example).
        let a = mini_model(
            "Smoke-Alarm",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let b = mini_model(
            "App2",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "off")],
        );
        let union = union_models("G", &[&a, &b], &UnionOptions::default());
        assert!(!union.nondeterminism().is_empty());
    }

    #[test]
    fn parallel_lift_is_byte_identical_to_sequential() {
        // "Wide" has 12 untouched binary attributes, so "Narrow"'s lift enumerates a
        // 4096-state free sub-product per edge — above `UNION_PARALLEL_WORK`, the
        // partitioned path engages.
        let narrow = mini_model(
            "Narrow",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let wide_attrs: Vec<(String, String)> =
            (0..12).map(|i| (format!("w{i}"), "switch".to_string())).collect();
        let wide_attr_refs: Vec<(&str, &str, &[&str])> =
            wide_attrs.iter().map(|(h, a)| (h.as_str(), a.as_str(), &["off", "on"][..])).collect();
        let wide = mini_model("Wide", &wide_attr_refs, &[]);
        let base = UnionOptions { prune_untouched_attributes: false, ..UnionOptions::default() };
        let sequential = union_models(
            "G",
            &[&narrow, &wide],
            &UnionOptions { threads: 1, ..base.clone() },
        );
        for threads in [2, 4, 8] {
            let parallel = union_models(
                "G",
                &[&narrow, &wide],
                &UnionOptions { threads, ..base.clone() },
            );
            assert_eq!(parallel.state_count(), sequential.state_count());
            assert_eq!(parallel.transitions, sequential.transitions, "threads = {threads}");
        }
        assert_eq!(sequential.state_count(), 1 << 13);
        assert_eq!(sequential.transition_count(), 1 << 13);
    }

    #[test]
    fn duplicate_models_still_dedup_across_the_parallel_lift() {
        // The same app unioned twice: the second copy's lift must be fully deduped
        // by the shared `seen` set, in the parallel path exactly as sequentially.
        let narrow = mini_model(
            "Narrow",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let wide_attrs: Vec<(String, String)> =
            (0..12).map(|i| (format!("w{i}"), "switch".to_string())).collect();
        let wide_attr_refs: Vec<(&str, &str, &[&str])> =
            wide_attrs.iter().map(|(h, a)| (h.as_str(), a.as_str(), &["off", "on"][..])).collect();
        let wide = mini_model("Wide", &wide_attr_refs, &[]);
        let base = UnionOptions { prune_untouched_attributes: false, ..UnionOptions::default() };
        let sequential = union_models(
            "G",
            &[&narrow, &narrow, &wide],
            &UnionOptions { threads: 1, ..base.clone() },
        );
        let parallel = union_models(
            "G",
            &[&narrow, &narrow, &wide],
            &UnionOptions { threads: 4, ..base },
        );
        assert_eq!(parallel.transitions, sequential.transitions);
        assert_eq!(sequential.transition_count(), 1 << 13);
    }

    #[test]
    fn delta_union_is_byte_identical_to_from_scratch() {
        let smoke_alarm = mini_model(
            "Smoke-Alarm",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let app1 = mini_model(
            "App1",
            &[("sw", "switch", &["off", "on"]), ("location", "mode", &["away", "home"])],
            &[(switch_on_event(), "location", "mode", "home")],
        );
        let app2 = mini_model(
            "App2",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "off")],
        );
        let options = UnionOptions::default();
        let members = [&smoke_alarm, &app1, &app2];
        let base = union_models("G", &members, &options);
        // Edit each member in turn to a same-domain variant and compare the
        // delta against a from-scratch rebuild.
        let edited = [
            mini_model(
                "Smoke-Alarm",
                &[("sw", "switch", &["off", "on"])],
                &[(smoke_event(), "sw", "switch", "off")],
            ),
            mini_model(
                "App1",
                &[("sw", "switch", &["off", "on"]), ("location", "mode", &["away", "home"])],
                &[
                    (switch_on_event(), "location", "mode", "home"),
                    (smoke_event(), "location", "mode", "away"),
                ],
            ),
            mini_model(
                "App2",
                &[("sw", "switch", &["off", "on"])],
                &[(smoke_event(), "sw", "switch", "on")],
            ),
        ];
        for (idx, new_member) in edited.iter().enumerate() {
            let mut new_members = members;
            new_members[idx] = new_member;
            let scratch = union_models("G", &new_members, &options);
            let delta = union_models_delta(&base, &new_members, idx, &options)
                .expect("same-domain edit must take the delta path");
            assert_eq!(delta.name, scratch.name);
            assert_eq!(delta.attributes, scratch.attributes);
            assert_eq!(delta.transitions, scratch.transitions, "edited member {idx}");
        }
    }

    #[test]
    fn delta_union_matches_across_the_parallel_lift_threshold() {
        // "Wide" gives the changed member a 4096-state free sub-product per edge,
        // so the re-lift inside the delta takes the partitioned path when
        // threads > 1 — the spliced output must not depend on that.
        let narrow = mini_model(
            "Narrow",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let wide_attrs: Vec<(String, String)> =
            (0..12).map(|i| (format!("w{i}"), "switch".to_string())).collect();
        let wide_attr_refs: Vec<(&str, &str, &[&str])> =
            wide_attrs.iter().map(|(h, a)| (h.as_str(), a.as_str(), &["off", "on"][..])).collect();
        let wide = mini_model("Wide", &wide_attr_refs, &[]);
        let edited = mini_model(
            "Narrow",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "off")],
        );
        for threads in [1, 2, 4] {
            let options = UnionOptions {
                prune_untouched_attributes: false,
                threads,
                ..UnionOptions::default()
            };
            let base = union_models("G", &[&narrow, &wide], &options);
            let scratch = union_models("G", &[&edited, &wide], &options);
            let delta = union_models_delta(&base, &[&edited, &wide], 0, &options)
                .expect("same-domain edit must take the delta path");
            assert_eq!(delta.transitions, scratch.transitions, "threads = {threads}");
            assert_eq!(delta.state_count(), scratch.state_count());
        }
    }

    #[test]
    fn delta_union_falls_back_when_identity_cannot_be_guaranteed() {
        let smoke_alarm = mini_model(
            "Smoke-Alarm",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let app1 = mini_model(
            "App1",
            &[("sw", "switch", &["off", "on"]), ("location", "mode", &["away", "home"])],
            &[(switch_on_event(), "location", "mode", "home")],
        );
        let options = UnionOptions::default();
        let base = union_models("G", &[&smoke_alarm, &app1], &options);
        // Out-of-range member index.
        assert!(union_models_delta(&base, &[&smoke_alarm, &app1], 2, &options).is_none());
        // Duplicate member names couple the dedup blocks.
        assert!(
            union_models_delta(&base, &[&smoke_alarm, &smoke_alarm], 0, &options).is_none()
        );
        // An edit that changes the attribute domain changes the schema: no delta.
        let widened = mini_model(
            "App1",
            &[
                ("sw", "switch", &["off", "on"]),
                ("location", "mode", &["away", "home", "night"]),
            ],
            &[(switch_on_event(), "location", "mode", "night")],
        );
        assert!(union_models_delta(&base, &[&smoke_alarm, &widened], 1, &options).is_none());
        // A base that is not a union of these members (blocks don't partition).
        let foreign = union_models("G", &[&app1, &smoke_alarm], &options);
        assert!(union_models_delta(&foreign, &[&smoke_alarm, &app1], 0, &options).is_none());
    }

    #[test]
    fn union_complexity_is_linear_in_edges() {
        // A sanity check on sizes rather than asymptotics: the union of two 4-state
        // models over disjoint devices has 16 states when nothing is pruned and all
        // transitions are lifted.
        let a = mini_model(
            "A",
            &[("sw1", "switch", &["off", "on"]), ("m1", "motion", &["inactive", "active"])],
            &[(
                Event::new("m1", EventKind::device("motionSensor", "motion", Some("active"))),
                "sw1",
                "switch",
                "on",
            )],
        );
        let b = mini_model(
            "B",
            &[("sw2", "switch", &["off", "on"]), ("m2", "motion", &["inactive", "active"])],
            &[(
                Event::new("m2", EventKind::device("motionSensor", "motion", Some("active"))),
                "sw2",
                "switch",
                "off",
            )],
        );
        let union = union_models(
            "AB",
            &[&a, &b],
            &UnionOptions { prune_untouched_attributes: false, ..UnionOptions::default() },
        );
        assert_eq!(union.state_count(), 16);
        assert!(union.transition_count() >= 16);
    }
}
