//! The multi-app union model (Algorithm 2, Sec. 4.4).
//!
//! Apps in a shared environment interact through common devices and abstract events
//! (location mode). The union of their state models captures the complete behaviour of
//! the environment: union states are drawn from the Cartesian product of the combined
//! attribute domains (duplicate devices deduplicated), and every app transition
//! `v --l--> u` is added between all union states containing `v` and the corresponding
//! updates to `u`, labelled with the contributing app.

use crate::model::{StateModel, Transition, TransitionLabel};
use crate::state::AttrKey;
use soteria_capability::AttributeValue;
use std::collections::BTreeMap;

/// Options for the union construction.
#[derive(Debug, Clone)]
pub struct UnionOptions {
    /// Drop attributes no app's transitions touch; keeps large environments tractable.
    pub prune_untouched_attributes: bool,
    /// Hard state cap; exceeding it switches pruning on automatically.
    pub max_states: usize,
}

impl Default for UnionOptions {
    fn default() -> Self {
        UnionOptions { prune_untouched_attributes: true, max_states: 60_000 }
    }
}

/// Builds the union state model of several apps (Algorithm 2).
pub fn union_models(name: &str, models: &[&StateModel], options: &UnionOptions) -> StateModel {
    // Line 1: the union's states come from the combined attribute domains; attributes
    // of duplicate devices (same handle + attribute across apps) are merged.
    let mut attributes: BTreeMap<AttrKey, Vec<AttributeValue>> = BTreeMap::new();
    for model in models {
        for (key, domain) in &model.attributes {
            let entry = attributes.entry(key.clone()).or_default();
            for v in domain {
                if !entry.contains(v) {
                    entry.push(v.clone());
                }
            }
        }
    }

    let product: usize = attributes.values().map(|d| d.len().max(1)).product();
    if options.prune_untouched_attributes || product > options.max_states {
        let mut touched: Vec<AttrKey> = Vec::new();
        for model in models {
            for t in &model.transitions {
                let from = &model.states[t.from];
                let to = &model.states[t.to];
                for (key, value) in &to.values {
                    if from.values.get(key) != Some(value) && !touched.contains(key) {
                        touched.push(key.clone());
                    }
                }
                // The subscribed attribute itself is touched by the event.
                if let soteria_capability::EventKind::Device { attribute, .. } = &t.label.event.kind
                {
                    let key = (t.label.event.handle.clone(), attribute.clone());
                    if !touched.contains(&key) {
                        touched.push(key);
                    }
                }
                if matches!(t.label.event.kind, soteria_capability::EventKind::Mode { .. }) {
                    let key = ("location".to_string(), "mode".to_string());
                    if !touched.contains(&key) {
                        touched.push(key);
                    }
                }
            }
        }
        attributes.retain(|k, _| touched.contains(k));
    }

    let mut union = StateModel::with_attributes(name, attributes);
    let index = union.state_index();

    // Lines 2–12: iterate over every app's transitions and lift them to the union.
    let mut lifted = Vec::new();
    for model in models {
        for t in &model.transitions {
            let v = &model.states[t.from];
            let u = &model.states[t.to];
            // The delta the transition applies in its own model.
            let delta: Vec<(AttrKey, AttributeValue)> = u
                .values
                .iter()
                .filter(|(key, value)| v.values.get(*key) != Some(*value))
                .map(|(k, val)| (k.clone(), val.clone()))
                .collect();
            // Restrict the source-containment test to attributes the union tracks.
            let v_proj: Vec<(&AttrKey, &AttributeValue)> = v
                .values
                .iter()
                .filter(|(k, _)| union.attributes.contains_key(*k))
                .collect();
            for (from_id, union_state) in union.states.iter().enumerate() {
                // V': union states that contain v (agree with v on the app's attributes).
                let contains_v =
                    v_proj.iter().all(|(k, val)| union_state.values.get(*k) == Some(*val));
                if !contains_v {
                    continue;
                }
                // U': the union state updated with the transition's delta.
                let mut target = union_state.clone();
                for (key, value) in &delta {
                    if union.attributes.contains_key(key) {
                        target.values.insert(key.clone(), value.clone());
                    }
                }
                let Some(&to_id) = index.get(&target) else { continue };
                lifted.push(Transition {
                    from: from_id,
                    to: to_id,
                    label: TransitionLabel {
                        event: t.label.event.clone(),
                        condition: t.label.condition.clone(),
                        app: model.name.clone(),
                        handler: t.label.handler.clone(),
                        via_reflection: t.label.via_reflection,
                    },
                });
            }
        }
    }
    // Deduplicate with a hash set keyed on the transition's identity; calling
    // `add_transition` per edge would be quadratic on large union models.
    let mut seen = std::collections::HashSet::new();
    for t in lifted {
        let key = format!(
            "{}>{}|{}|{}|{}|{}",
            t.from, t.to, t.label.event, t.label.condition, t.label.app, t.label.handler
        );
        if seen.insert(key) {
            union.transitions.push(t);
        }
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::State;
    use soteria_analysis::PathCondition;
    use soteria_capability::{Event, EventKind};

    /// Builds a small hand-crafted model over the given binary attributes with the
    /// given `(event, changed attribute, new value)` transitions applied from every
    /// state (mirroring how the app-level builder works).
    fn mini_model(
        name: &str,
        attrs: &[(&str, &str, &[&str])],
        transitions: &[(Event, &str, &str, &str)],
    ) -> StateModel {
        let mut map = BTreeMap::new();
        for (h, a, values) in attrs {
            map.insert(
                (h.to_string(), a.to_string()),
                values.iter().map(|v| AttributeValue::symbol(*v)).collect(),
            );
        }
        let mut model = StateModel::with_attributes(name, map);
        let index = model.state_index();
        let mut new = Vec::new();
        for (id, state) in model.states.iter().enumerate() {
            for (event, handle, attr, value) in transitions {
                let target = state.with(handle, attr, AttributeValue::symbol(*value));
                if let Some(&to) = index.get(&target) {
                    new.push(Transition {
                        from: id,
                        to,
                        label: TransitionLabel {
                            event: event.clone(),
                            condition: PathCondition::top(),
                            app: name.to_string(),
                            handler: "h".to_string(),
                            via_reflection: false,
                        },
                    });
                }
            }
        }
        for t in new {
            model.add_transition(t);
        }
        model
    }

    fn smoke_event() -> Event {
        Event::new("smoke", EventKind::device("smokeDetector", "smoke", Some("detected")))
    }

    fn switch_on_event() -> Event {
        Event::new("sw", EventKind::device("switch", "switch", Some("on")))
    }

    #[test]
    fn union_deduplicates_shared_devices() {
        // Smoke-Alarm: smoke-detected turns the switch on.
        let smoke_alarm = mini_model(
            "Smoke-Alarm",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        // App1: switch-on changes the mode to home.
        let app1 = mini_model(
            "App1",
            &[("sw", "switch", &["off", "on"]), ("location", "mode", &["away", "home"])],
            &[(switch_on_event(), "location", "mode", "home")],
        );
        let union = union_models("G", &[&smoke_alarm, &app1], &UnionOptions::default());
        // Shared switch is deduplicated: switch × mode = 4 states.
        assert_eq!(union.state_count(), 4);
        // Both apps' transitions are present and labelled with their app.
        assert!(union.transitions.iter().any(|t| t.label.app == "Smoke-Alarm"));
        assert!(union.transitions.iter().any(|t| t.label.app == "App1"));
    }

    #[test]
    fn union_enables_cross_app_chains() {
        let smoke_alarm = mini_model(
            "Smoke-Alarm",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let app1 = mini_model(
            "App1",
            &[("sw", "switch", &["off", "on"]), ("location", "mode", &["away", "home"])],
            &[(switch_on_event(), "location", "mode", "home")],
        );
        let union = union_models("G", &[&smoke_alarm, &app1], &UnionOptions::default());
        // Starting from switch-off/away, the smoke event reaches switch-on/away, from
        // which App1's switch-on transition reaches mode home: the chained misuse case
        // of Sec. 4.4.
        let start = union
            .state_id(&State::from_triples([
                ("sw", "switch", AttributeValue::symbol("off")),
                ("location", "mode", AttributeValue::symbol("away")),
            ]))
            .unwrap();
        let mut model = union.clone();
        model.initial = start;
        let reachable = model.reachable_from_initial();
        let home_on = model
            .state_id(&State::from_triples([
                ("sw", "switch", AttributeValue::symbol("on")),
                ("location", "mode", AttributeValue::symbol("home")),
            ]))
            .unwrap();
        assert!(reachable.contains(&home_on));
    }

    #[test]
    fn conflicting_apps_create_nondeterminism_in_union() {
        // Smoke-Alarm turns the switch on on smoke; App2 turns it off on smoke (S.1
        // violation in the paper's example).
        let a = mini_model(
            "Smoke-Alarm",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "on")],
        );
        let b = mini_model(
            "App2",
            &[("sw", "switch", &["off", "on"])],
            &[(smoke_event(), "sw", "switch", "off")],
        );
        let union = union_models("G", &[&a, &b], &UnionOptions::default());
        assert!(!union.nondeterminism().is_empty());
    }

    #[test]
    fn union_complexity_is_linear_in_edges() {
        // A sanity check on sizes rather than asymptotics: the union of two 4-state
        // models over disjoint devices has 16 states when nothing is pruned and all
        // transitions are lifted.
        let a = mini_model(
            "A",
            &[("sw1", "switch", &["off", "on"]), ("m1", "motion", &["inactive", "active"])],
            &[(
                Event::new("m1", EventKind::device("motionSensor", "motion", Some("active"))),
                "sw1",
                "switch",
                "on",
            )],
        );
        let b = mini_model(
            "B",
            &[("sw2", "switch", &["off", "on"]), ("m2", "motion", &["inactive", "active"])],
            &[(
                Event::new("m2", EventKind::device("motionSensor", "motion", Some("active"))),
                "sw2",
                "switch",
                "off",
            )],
        );
        let union = union_models(
            "AB",
            &[&a, &b],
            &UnionOptions { prune_untouched_attributes: false, max_states: 60_000 },
        );
        assert_eq!(union.state_count(), 16);
        assert!(union.transition_count() >= 16);
    }
}
