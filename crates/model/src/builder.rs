//! Builds the state model of one app from its IR, transition specifications, and
//! property abstraction (Sec. 4.2.1–4.2.2).

use crate::model::{StateModel, Transition, TransitionLabel};
use crate::schema::{AttrId, StateSchema, ValueId};
use crate::state::AttrKey;
use soteria_analysis::{Abstraction, PathCondition, TransitionSpec};
use soteria_capability::{AttributeValue, Event, EventKind};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Options controlling model construction.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Drop attributes that no transition reads (as an event) or writes (as an
    /// effect). Keeps union models tractable; single-app models keep all attributes by
    /// default so state counts match the Cartesian-product definition.
    pub prune_untouched_attributes: bool,
    /// Hard cap on the number of materialised states; exceeding it switches pruning on
    /// automatically.
    pub max_states: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { prune_untouched_attributes: false, max_states: 60_000 }
    }
}

/// Builds the state model of an app.
///
/// * `name` — app name used in labels.
/// * `abstraction` — attribute domains after property abstraction.
/// * `specs` — the app's transition specifications from the symbolic executor.
pub fn build_state_model(
    name: &str,
    abstraction: &Abstraction,
    specs: &[TransitionSpec],
    options: &BuildOptions,
) -> StateModel {
    let mut attributes: BTreeMap<AttrKey, Vec<AttributeValue>> = abstraction
        .domains
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();

    let product: usize = attributes.values().map(|d| d.len().max(1)).product();
    if options.prune_untouched_attributes || product > options.max_states {
        let touched = touched_keys(specs);
        attributes.retain(|k, _| touched.contains(k));
    }

    let mut model = StateModel::with_attributes(name, attributes);

    // Compile every spec once against the interned schema: the attribute updates a
    // spec performs are state-independent, so each becomes a short list of
    // `(attribute id, value digit)` writes plus a ready-made label. The per-state
    // loop below is then pure digit arithmetic.
    let mut interner = LabelInterner::default();
    let compiled: Vec<CompiledSpec> = specs
        .iter()
        .map(|spec| compile_spec(spec, name, abstraction, &model.schema, &mut interner))
        .collect();

    let schema = &model.schema;
    let mut digits = vec![0u8; schema.attr_count()];
    let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
    let mut transitions = Vec::new();
    for from_id in 0..schema.state_count() {
        for c in &compiled {
            // `to = from + Σ (new_digit − old_digit) · stride`: the mixed-radix
            // equivalent of writing the update into a cloned state map.
            let mut to_id = from_id;
            for &(attr, digit) in &c.updates {
                to_id = to_id + digit as usize * schema.stride(attr)
                    - digits[attr as usize] as usize * schema.stride(attr);
            }
            if seen.insert((from_id, to_id, c.class)) {
                transitions.push(Transition { from: from_id, to: to_id, label: c.label.clone() });
            }
        }
        schema.advance(&mut digits);
    }
    model.transitions = transitions;
    model
}

/// A transition spec compiled against a schema: the final digit written to each
/// updated attribute (event update first, then effects, later writes overriding
/// earlier ones — the same overwrite order the seed applied to state maps).
struct CompiledSpec {
    updates: Vec<(AttrId, ValueId)>,
    label: std::sync::Arc<TransitionLabel>,
    class: usize,
}

/// Interns transition-label identities so deduplication compares three integers
/// instead of formatting a string per transition (the seed's `format!` key).
#[derive(Default)]
pub(crate) struct LabelInterner {
    classes: HashMap<(Event, PathCondition, String, String), usize>,
}

impl LabelInterner {
    /// The dense equivalence class of a label's `(event, condition, app, handler)`
    /// identity — `via_reflection` is deliberately excluded, matching the seed's
    /// dedup key.
    pub(crate) fn class_of(
        &mut self,
        event: &Event,
        condition: &PathCondition,
        app: &str,
        handler: &str,
    ) -> usize {
        let next = self.classes.len();
        *self
            .classes
            .entry((event.clone(), condition.clone(), app.to_string(), handler.to_string()))
            .or_insert(next)
    }
}

fn compile_spec(
    spec: &TransitionSpec,
    app: &str,
    abstraction: &Abstraction,
    schema: &StateSchema,
    interner: &mut LabelInterner,
) -> CompiledSpec {
    let mut updates: Vec<(AttrId, ValueId)> = Vec::new();
    let mut write = |attr: AttrId, digit: ValueId| {
        if let Some(slot) = updates.iter_mut().find(|(a, _)| *a == attr) {
            slot.1 = digit;
        } else {
            updates.push((attr, digit));
        }
    };

    // The triggering event updates the subscribed attribute itself (e.g. the water
    // sensor turns wet when the water.wet event fires).
    match &spec.event.kind {
        EventKind::Device { attribute, value: Some(v), .. } => {
            let key = (spec.event.handle.clone(), attribute.clone());
            if let Some(attr) = schema.attr_id(&key) {
                if let Some(digit) = schema.value_id(attr, &AttributeValue::symbol(v.clone())) {
                    write(attr, digit);
                }
            }
        }
        EventKind::Mode { value: Some(m) } => {
            let key = ("location".to_string(), "mode".to_string());
            if let Some(attr) = schema.attr_id(&key) {
                if let Some(digit) = schema.value_id(attr, &AttributeValue::symbol(m.clone())) {
                    write(attr, digit);
                }
            }
        }
        _ => {}
    }
    // The handler's effects update the actuated attributes, falling back to the
    // abstraction's `other` bucket for values outside the domain.
    for effect in &spec.effects {
        let key = (effect.handle.clone(), effect.attribute.clone());
        let Some(attr) = schema.attr_id(&key) else { continue };
        let value = abstraction.abstract_value(&effect.handle, &effect.attribute, &effect.value);
        let digit = schema.value_id(attr, &value).or_else(|| {
            schema
                .domain(attr)
                .iter()
                .position(|v| v.as_symbol() == Some("other"))
                .map(|i| i as ValueId)
        });
        if let Some(digit) = digit {
            write(attr, digit);
        }
    }

    CompiledSpec {
        updates,
        label: std::sync::Arc::new(TransitionLabel {
            event: spec.event.clone(),
            condition: spec.condition.clone(),
            app: app.to_string(),
            handler: spec.handler.clone(),
            via_reflection: spec.via_reflection,
        }),
        class: interner.class_of(&spec.event, &spec.condition, app, &spec.handler),
    }
}

/// Attribute keys referenced by any transition spec, either as the subscribed event's
/// attribute or as an effect target.
pub fn touched_keys(specs: &[TransitionSpec]) -> Vec<AttrKey> {
    let mut keys = Vec::new();
    for spec in specs {
        if let EventKind::Device { attribute, .. } = &spec.event.kind {
            keys.push((spec.event.handle.clone(), attribute.clone()));
        }
        if matches!(spec.event.kind, EventKind::Mode { .. }) {
            keys.push(("location".to_string(), "mode".to_string()));
        }
        for e in &spec.effects {
            keys.push((e.handle.clone(), e.attribute.clone()));
        }
        for atom in &spec.condition.atoms {
            for side in [&atom.lhs, &atom.rhs] {
                if let soteria_analysis::SymValue::DeviceAttr { handle, attribute } = side {
                    keys.push((handle.clone(), attribute.clone()));
                }
            }
        }
    }
    keys.sort();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use soteria_analysis::{abstract_domains, AnalysisConfig, SymbolicExecutor};
    use soteria_capability::CapabilityRegistry;
    use soteria_ir::AppIr;

    const WATER_LEAK: &str = r#"
        definition(name: "Water-Leak-Detector")
        preferences {
            section("When there's water detected...") {
                input "water_sensor", "capability.waterSensor", title: "Where?"
                input "valve_device", "capability.valve", title: "Valve device"
            }
        }
        def installed() {
            subscribe(water_sensor, "water.wet", waterWetHandler)
        }
        def waterWetHandler(evt) {
            valve_device.close()
        }
    "#;

    fn build(src: &str) -> StateModel {
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("app", src, &registry).unwrap();
        let exec = SymbolicExecutor::new(&ir, &registry, AnalysisConfig::paper());
        let specs = exec.transition_specs();
        let abstraction = abstract_domains(&ir, &registry, &specs);
        build_state_model(&ir.name, &abstraction, &specs, &BuildOptions::default())
    }

    #[test]
    fn water_leak_detector_has_four_states_and_closing_transitions() {
        let model = build(WATER_LEAK);
        // Two binary attributes -> four states (paper Sec. 4.2.1).
        assert_eq!(model.state_count(), 4);
        // Every state has a water.wet transition into the wet/closed state.
        assert_eq!(model.transition_count(), 4);
        let wet_closed = model
            .states()
            .iter()
            .position(|s| {
                s.get("water_sensor", "water") == Some(&AttributeValue::symbol("wet"))
                    && s.get("valve_device", "valve") == Some(&AttributeValue::symbol("closed"))
            })
            .unwrap();
        assert!(model.transitions.iter().all(|t| t.to == wet_closed));
        assert!(model.nondeterminism().is_empty());
    }

    #[test]
    fn smoke_alarm_transitions_follow_event_value() {
        let src = r#"
            definition(name: "Smoke-Alarm")
            preferences { section("d") {
                input "smoke_detector", "capability.smokeDetector"
                input "the_alarm", "capability.alarm"
            } }
            def installed() { subscribe(smoke_detector, "smoke", h) }
            def h(evt) {
                if (evt.value == "detected") { the_alarm.siren() }
                if (evt.value == "clear") { the_alarm.off() }
            }
        "#;
        let model = build(src);
        // smoke {clear, detected, tested} × alarm {off, siren, strobe, both} = 12.
        assert_eq!(model.state_count(), 12);
        // From the initial state (clear/off), the "detected" path moves to a state
        // with the alarm sounding.
        let initial = model.initial;
        let siren_successor = model.outgoing(initial).any(|t| {
            model.state(t.to).get("the_alarm", "alarm") == Some(&AttributeValue::symbol("siren"))
        });
        assert!(siren_successor);
    }

    #[test]
    fn pruning_drops_untouched_attributes() {
        let src = r#"
            definition(name: "Pruned")
            preferences { section("d") {
                input "sw", "capability.switch"
                input "unused_lock", "capability.lock"
                input "m", "capability.motionSensor"
            } }
            def installed() { subscribe(m, "motion.active", h) }
            def h(evt) { sw.on() }
        "#;
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("app", src, &registry).unwrap();
        let exec = SymbolicExecutor::new(&ir, &registry, AnalysisConfig::paper());
        let specs = exec.transition_specs();
        let abstraction = abstract_domains(&ir, &registry, &specs);
        let full = build_state_model(&ir.name, &abstraction, &specs, &BuildOptions::default());
        let pruned = build_state_model(
            &ir.name,
            &abstraction,
            &specs,
            &BuildOptions { prune_untouched_attributes: true, max_states: 60_000 },
        );
        assert_eq!(full.state_count(), 8); // switch × lock × motion
        assert_eq!(pruned.state_count(), 4); // switch × motion
        assert!(pruned.attributes.keys().all(|(h, _)| h != "unused_lock"));
    }

    #[test]
    fn touched_keys_include_condition_subjects() {
        let src = r#"
            definition(name: "Energy")
            preferences { section("d") {
                input "the_switch", "capability.switch"
                input "power_meter", "capability.powerMeter"
            } }
            def installed() { subscribe(power_meter, "power", handler) }
            def handler(evt) {
                if (power_meter.currentValue("power") > 50) { the_switch.off() }
            }
        "#;
        let registry = CapabilityRegistry::standard();
        let ir = AppIr::from_source("app", src, &registry).unwrap();
        let exec = SymbolicExecutor::new(&ir, &registry, AnalysisConfig::paper());
        let specs = exec.transition_specs();
        let keys = touched_keys(&specs);
        assert!(keys.contains(&("power_meter".to_string(), "power".to_string())));
        assert!(keys.contains(&("the_switch".to_string(), "switch".to_string())));
    }
}
