//! The seed (pre-interning) model-construction paths, preserved verbatim.
//!
//! These are the original `BTreeMap`-state implementations of the app-model builder
//! and the union algorithm. They are kept for two reasons:
//!
//! * the differential tests (`tests/packed_vs_legacy.rs`) assert that the packed
//!   fast paths in [`crate::builder`] and [`crate::union`] produce semantically
//!   identical models (state counts, transition sets, model-checking verdicts);
//! * the comparison benches and the `packed_vs_legacy` binary measure the speedup
//!   recorded in `BENCH_pr1.json` against exactly the seed code.
//!
//! Nothing in the production pipeline calls into this module.

use crate::model::{StateModel, Transition, TransitionLabel};
use crate::state::{AttrKey, State};
use crate::{BuildOptions, UnionOptions};
use soteria_analysis::{Abstraction, TransitionSpec};
use soteria_capability::{AttributeValue, EventKind};
use std::collections::{BTreeMap, HashMap};

/// Enumerates the Cartesian product of the attribute domains as concrete states by
/// progressively cloning partial state maps (the seed implementation).
pub fn cartesian_states_legacy(
    attributes: &BTreeMap<AttrKey, Vec<AttributeValue>>,
) -> Vec<State> {
    let keys: Vec<&AttrKey> = attributes.keys().collect();
    let mut states = vec![State::default()];
    for key in keys {
        let values = &attributes[key];
        let mut next = Vec::with_capacity(states.len() * values.len().max(1));
        for state in &states {
            if values.is_empty() {
                next.push(state.clone());
                continue;
            }
            for value in values {
                let mut s = state.clone();
                s.values.insert(key.clone(), value.clone());
                next.push(s);
            }
        }
        states = next;
    }
    states
}

/// Creates a model over the given domains together with the legacy progressively
/// cloned state enumeration (which the packed constructor provably reproduces in the
/// same mixed-radix order, so the returned model's lazy view is identical).
fn model_with_attributes_legacy(
    name: &str,
    attributes: BTreeMap<AttrKey, Vec<AttributeValue>>,
) -> (StateModel, Vec<State>) {
    let states = cartesian_states_legacy(&attributes);
    let model = StateModel::with_attributes(name, attributes);
    (model, states)
}

/// An index for resolving states to identifiers (the seed `state_index`).
fn state_index_legacy(states: &[State]) -> HashMap<State, usize> {
    states.iter().cloned().enumerate().map(|(i, s)| (s, i)).collect()
}

/// Builds the state model of an app over `BTreeMap` states (the seed path).
pub fn build_state_model_legacy(
    name: &str,
    abstraction: &Abstraction,
    specs: &[TransitionSpec],
    options: &BuildOptions,
) -> StateModel {
    let mut attributes: BTreeMap<AttrKey, Vec<AttributeValue>> = abstraction
        .domains
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();

    let product: usize = attributes.values().map(|d| d.len().max(1)).product();
    if options.prune_untouched_attributes || product > options.max_states {
        let touched = crate::builder::touched_keys(specs);
        attributes.retain(|k, _| touched.contains(k));
    }

    let (mut model, states) = model_with_attributes_legacy(name, attributes);
    let index = state_index_legacy(&states);
    let mut new_transitions = Vec::new();
    for (from_id, from_state) in states.iter().enumerate() {
        for spec in specs {
            let mut target = from_state.clone();
            apply_event_update_legacy(&mut target, &model, spec);
            for effect in &spec.effects {
                let key = (effect.handle.clone(), effect.attribute.clone());
                let Some(domain) = model.attributes.get(&key) else { continue };
                let value =
                    abstraction.abstract_value(&effect.handle, &effect.attribute, &effect.value);
                let value = if domain.contains(&value) {
                    value
                } else if let Some(other) =
                    domain.iter().find(|v| v.as_symbol() == Some("other"))
                {
                    other.clone()
                } else {
                    continue;
                };
                target.values.insert(key, value);
            }
            let Some(&to_id) = index.get(&target) else { continue };
            new_transitions.push(Transition {
                from: from_id,
                to: to_id,
                label: std::sync::Arc::new(TransitionLabel {
                    event: spec.event.clone(),
                    condition: spec.condition.clone(),
                    app: name.to_string(),
                    handler: spec.handler.clone(),
                    via_reflection: spec.via_reflection,
                }),
            });
        }
    }
    // The seed deduplicated with a formatted-string key; the behaviour is identical.
    let mut seen = std::collections::HashSet::new();
    for t in new_transitions {
        let key = format!(
            "{}>{}|{}|{}|{}|{}",
            t.from, t.to, t.label.event, t.label.condition, t.label.app, t.label.handler
        );
        if seen.insert(key) {
            model.transitions.push(t);
        }
    }
    model
}

/// Applies the event's own attribute update to the target state (seed logic).
fn apply_event_update_legacy(target: &mut State, model: &StateModel, spec: &TransitionSpec) {
    match &spec.event.kind {
        EventKind::Device { attribute, value: Some(v), .. } => {
            let key = (spec.event.handle.clone(), attribute.clone());
            if let Some(domain) = model.attributes.get(&key) {
                let val = AttributeValue::symbol(v.clone());
                if domain.contains(&val) {
                    target.values.insert(key, val);
                }
            }
        }
        EventKind::Mode { value: Some(m) } => {
            let key = ("location".to_string(), "mode".to_string());
            if let Some(domain) = model.attributes.get(&key) {
                let val = AttributeValue::symbol(m.clone());
                if domain.contains(&val) {
                    target.values.insert(key, val);
                }
            }
        }
        _ => {}
    }
}

/// Builds the union state model by scanning all union states per app transition (the
/// seed Algorithm 2 implementation, O(edges x union states)).
pub fn union_models_legacy(
    name: &str,
    models: &[&StateModel],
    options: &UnionOptions,
) -> StateModel {
    let mut attributes: BTreeMap<AttrKey, Vec<AttributeValue>> = BTreeMap::new();
    for model in models {
        for (key, domain) in &model.attributes {
            let entry = attributes.entry(key.clone()).or_default();
            for v in domain {
                if !entry.contains(v) {
                    entry.push(v.clone());
                }
            }
        }
    }

    let product: usize = attributes.values().map(|d| d.len().max(1)).product();
    if options.prune_untouched_attributes || product > options.max_states {
        let mut touched: Vec<AttrKey> = Vec::new();
        for model in models {
            let states = model.states();
            for t in &model.transitions {
                let from = &states[t.from];
                let to = &states[t.to];
                for (key, value) in &to.values {
                    if from.values.get(key) != Some(value) && !touched.contains(key) {
                        touched.push(key.clone());
                    }
                }
                if let EventKind::Device { attribute, .. } = &t.label.event.kind {
                    let key = (t.label.event.handle.clone(), attribute.clone());
                    if !touched.contains(&key) {
                        touched.push(key);
                    }
                }
                if matches!(t.label.event.kind, EventKind::Mode { .. }) {
                    let key = ("location".to_string(), "mode".to_string());
                    if !touched.contains(&key) {
                        touched.push(key);
                    }
                }
            }
        }
        attributes.retain(|k, _| touched.contains(k));
    }

    let (mut union, union_states) = model_with_attributes_legacy(name, attributes);
    let index = state_index_legacy(&union_states);

    let mut lifted = Vec::new();
    for model in models {
        let states = model.states();
        for t in &model.transitions {
            let v = &states[t.from];
            let u = &states[t.to];
            let delta: Vec<(AttrKey, AttributeValue)> = u
                .values
                .iter()
                .filter(|(key, value)| v.values.get(*key) != Some(*value))
                .map(|(k, val)| (k.clone(), val.clone()))
                .collect();
            let v_proj: Vec<(&AttrKey, &AttributeValue)> = v
                .values
                .iter()
                .filter(|(k, _)| union.attributes.contains_key(*k))
                .collect();
            for (from_id, union_state) in union_states.iter().enumerate() {
                let contains_v =
                    v_proj.iter().all(|(k, val)| union_state.values.get(*k) == Some(*val));
                if !contains_v {
                    continue;
                }
                let mut target = union_state.clone();
                for (key, value) in &delta {
                    if union.attributes.contains_key(key) {
                        target.values.insert(key.clone(), value.clone());
                    }
                }
                let Some(&to_id) = index.get(&target) else { continue };
                lifted.push(Transition {
                    from: from_id,
                    to: to_id,
                    label: std::sync::Arc::new(TransitionLabel {
                        event: t.label.event.clone(),
                        condition: t.label.condition.clone(),
                        app: model.name.clone(),
                        handler: t.label.handler.clone(),
                        via_reflection: t.label.via_reflection,
                    }),
                });
            }
        }
    }
    let mut seen = std::collections::HashSet::new();
    for t in lifted {
        let key = format!(
            "{}>{}|{}|{}|{}|{}",
            t.from, t.to, t.label.event, t.label.condition, t.label.app, t.label.handler
        );
        if seen.insert(key) {
            union.transitions.push(t);
        }
    }
    union
}
