//! Content-addressed result cache: FNV-1a 128-bit keys over `(source,
//! configuration)` and a bounded LRU with hit/miss/eviction counters.
//!
//! Soteria analyses are pure functions of the app source and the analysis
//! configuration — the determinism gates prove thread counts never change a
//! result — so a result computed once is valid forever. Keys hash the *content*
//! (name, source bytes, [`AnalysisConfig::fingerprint`], engine), never
//! identities or timestamps: resubmitting the same app is a guaranteed hit
//! returning the frozen original, and any single-byte change to the source or
//! any result-relevant configuration flag produces a different key.
//!
//! Environment keys are derived from the *member app keys* plus the group name,
//! so an environment hit implies every member's source and the configuration are
//! unchanged — without rehashing the member sources.
//!
//! [`AnalysisConfig::fingerprint`]: soteria_analysis::AnalysisConfig::fingerprint

use std::collections::HashMap;
use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a 128 over a sequence of length-prefixed chunks. The 8-byte length
/// prefix keeps chunk boundaries unambiguous (`("ab", "c")` and `("a", "bc")`
/// hash differently).
pub(crate) fn fnv128(chunks: &[&[u8]]) -> u128 {
    let mut hash = FNV128_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= byte as u128;
            hash = hash.wrapping_mul(FNV128_PRIME);
        }
    };
    for chunk in chunks {
        eat(&(chunk.len() as u64).to_le_bytes());
        eat(chunk);
    }
    hash
}

/// A 128-bit content address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The content address of one app analysis: submitted name, source bytes, the
/// configuration fingerprint, and the checking engine.
pub fn app_cache_key(
    name: &str,
    source: &str,
    config_fingerprint: u64,
    engine: &str,
) -> CacheKey {
    let fingerprint = config_fingerprint.to_le_bytes();
    CacheKey(fnv128(&[
        b"app",
        name.as_bytes(),
        source.as_bytes(),
        &fingerprint,
        engine.as_bytes(),
    ]))
}

/// The fault-layer address of app *source bytes*: like [`app_cache_key`] but
/// name-independent, so quarantine strikes follow the offending content no
/// matter what name it is resubmitted under.
pub fn source_fingerprint(source: &str, config_fingerprint: u64, engine: &str) -> CacheKey {
    let fingerprint = config_fingerprint.to_le_bytes();
    CacheKey(fnv128(&[b"src", source.as_bytes(), &fingerprint, engine.as_bytes()]))
}

/// The content address of an environment analysis: group name plus the member
/// *app keys* in submission order (member content changes propagate through
/// their keys) and the configuration fingerprint.
pub fn env_cache_key(
    group: &str,
    member_keys: &[CacheKey],
    config_fingerprint: u64,
    engine: &str,
) -> CacheKey {
    let member_bytes: Vec<[u8; 16]> =
        member_keys.iter().map(|k| k.0.to_le_bytes()).collect();
    let fingerprint = config_fingerprint.to_le_bytes();
    let mut chunks: Vec<&[u8]> =
        vec![b"env", group.as_bytes(), &fingerprint, engine.as_bytes()];
    chunks.extend(member_bytes.iter().map(|b| b.as_slice()));
    CacheKey(fnv128(&chunks))
}

/// Counter snapshot of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or an evicted entry).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Entry<V> {
    value: V,
    /// Monotonic use tick; the smallest tick is the least recently used entry.
    last_used: u64,
}

/// A bounded least-recently-used map from [`CacheKey`] to frozen results.
///
/// Both lookups and inserts refresh recency; when an insert would exceed the
/// capacity, the entry with the oldest tick is evicted. Ticks are unique, so
/// eviction order is a deterministic function of the operation sequence — the
/// cache tests replay a sequence and assert exactly which keys survive.
pub struct ResultCache<V> {
    capacity: usize,
    entries: HashMap<u128, Entry<V>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V: Clone> ResultCache<V> {
    /// A cache holding at most `capacity.max(1)` entries.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(&key.0) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used entry if
    /// the bound would be exceeded. Returns the evicted entry, if any, so
    /// callers keeping per-key side tables (the service's name registry) can
    /// drop their entries alongside the cache's instead of pinning them
    /// forever — and so a persistent tier can demote the evicted value to disk
    /// instead of losing it.
    pub fn insert(&mut self, key: CacheKey, value: V) -> Option<(CacheKey, V)> {
        self.tick += 1;
        let mut evicted = None;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key.0) {
            if let Some(&oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k)
            {
                if let Some(old) = self.entries.remove(&oldest) {
                    self.evictions += 1;
                    evicted = Some((CacheKey(oldest), old.value));
                }
            }
        }
        self.entries.insert(key.0, Entry { value, last_used: self.tick });
        evicted
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_content_addressed() {
        let base = app_cache_key("a", "def installed() {}", 7, "Symbolic");
        assert_eq!(base, app_cache_key("a", "def installed() {}", 7, "Symbolic"));
        // Any single differing byte anywhere changes the key.
        assert_ne!(base, app_cache_key("a", "def installed() { }", 7, "Symbolic"));
        assert_ne!(base, app_cache_key("b", "def installed() {}", 7, "Symbolic"));
        assert_ne!(base, app_cache_key("a", "def installed() {}", 8, "Symbolic"));
        assert_ne!(base, app_cache_key("a", "def installed() {}", 7, "Explicit"));
        // Chunk boundaries are unambiguous.
        assert_ne!(
            app_cache_key("ab", "c", 0, "e"),
            app_cache_key("a", "bc", 0, "e")
        );
    }

    #[test]
    fn source_fingerprints_ignore_the_submitted_name() {
        let base = source_fingerprint("def installed() {}", 7, "Symbolic");
        assert_eq!(base, source_fingerprint("def installed() {}", 7, "Symbolic"));
        assert_ne!(base, source_fingerprint("def installed() { }", 7, "Symbolic"));
        assert_ne!(base, source_fingerprint("def installed() {}", 8, "Symbolic"));
        assert_ne!(base, source_fingerprint("def installed() {}", 7, "Explicit"));
        // Distinct address space from the name-sensitive cache keys.
        assert_ne!(base, app_cache_key("a", "def installed() {}", 7, "Symbolic"));
    }

    #[test]
    fn env_keys_depend_on_members_and_order() {
        let a = app_cache_key("a", "x", 0, "e");
        let b = app_cache_key("b", "y", 0, "e");
        let ab = env_cache_key("G", &[a, b], 0, "e");
        assert_eq!(ab, env_cache_key("G", &[a, b], 0, "e"));
        assert_ne!(ab, env_cache_key("G", &[b, a], 0, "e"));
        assert_ne!(ab, env_cache_key("H", &[a, b], 0, "e"));
        assert_ne!(ab, env_cache_key("G", &[a], 0, "e"));
    }

    #[test]
    fn lru_evicts_the_oldest_tick_deterministically() {
        let k = |n: u128| CacheKey(n);
        let mut cache: ResultCache<u32> = ResultCache::new(2);
        assert_eq!(cache.insert(k(1), 10), None);
        assert_eq!(cache.insert(k(2), 20), None);
        assert_eq!(cache.get(k(1)), Some(10)); // refresh 1: 2 is now oldest
        assert_eq!(cache.insert(k(3), 30), Some((k(2), 20))); // evicts 2, and says so
        assert_eq!(cache.get(k(2)), None);
        assert_eq!(cache.get(k(1)), Some(10));
        assert_eq!(cache.get(k(3)), Some(30));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions, stats.entries), (3, 1, 1, 2));
    }
}
