//! `soteria-serve`: the long-lived analysis service on stdin/stdout.
//!
//! Reads newline-delimited job requests (see [`soteria_service::protocol`] for
//! the grammar: inline source, a file path, or a built-in corpus id), submits
//! each to a [`Service`] as soon as the line arrives — so parsing/model-building
//! of the next job overlaps verification of the previous one — and emits one
//! JSON response line per request, in submission order (each line is flushed as
//! soon as every earlier job has finished).
//!
//! ```text
//! printf 'app demo corpus:SmokeAlarm\nstats\n' | soteria-serve
//! ```
//!
//! Flags:
//!
//! * `--workers N` — pool worker threads (default: the `SOTERIA_THREADS` /
//!   available-parallelism policy);
//! * `--cache N` — result-cache bound (default 1024 entries per kind);
//! * `--smoke` — run the self-check gate instead of serving: pipe the running
//!   examples through the full protocol, diff every served report against the
//!   direct `Soteria` API, and verify a second pass is served byte-identically
//!   from the cache. Exits non-zero on any mismatch (the CI configuration).

use soteria_service::protocol::{self, AppSource, Request};
use soteria_service::{AppJob, EnvJob, Service, ServiceOptions};
use std::io::{BufRead, Write};
use std::sync::mpsc;

enum PendingOut {
    App(AppJob),
    Env(EnvJob),
    Stats,
    Error(String),
}

fn resolve_source(source: AppSource) -> Result<String, String> {
    match source {
        AppSource::Inline(text) => Ok(text),
        AppSource::Path(path) => std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read '{path}': {e}")),
        AppSource::Corpus(id) => soteria_corpus::find_app(&id)
            .map(|(_, source)| source)
            .ok_or_else(|| format!("unknown corpus app '{id}'")),
    }
}

/// The serve loop: the reader thread submits each request the moment its line
/// arrives (so ingestion of job *N + 1* overlaps verification of job *N*),
/// while a dedicated writer thread blocks on each job in submission order and
/// writes + flushes its response line the moment it — and everything before
/// it — has finished. An interactive client therefore gets each response
/// without having to send another line or close stdin first.
fn serve(
    input: impl BufRead,
    out: &mut (impl Write + Send),
    service: &Service,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<(usize, PendingOut)>();
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> std::io::Result<()> {
            for (index, pending) in rx {
                let response = match pending {
                    PendingOut::App(job) => protocol::app_response(
                        index,
                        job.name(),
                        job.disposition(),
                        &job.wait(),
                    ),
                    PendingOut::Env(job) => protocol::env_response(
                        index,
                        job.name(),
                        job.disposition(),
                        &job.wait(),
                    ),
                    PendingOut::Stats => protocol::stats_response(index, &service.stats()),
                    PendingOut::Error(error) => protocol::error_response(index, &error),
                };
                writeln!(out, "{}", response.render())?;
                out.flush()?;
            }
            Ok(())
        });
        let mut job_index = 0usize;
        for line in input.lines() {
            let pending = match protocol::parse_request(&line?) {
                Ok(None) => continue,
                Err(error) => PendingOut::Error(error),
                Ok(Some(Request::App { name, source })) => match resolve_source(source) {
                    Ok(text) => PendingOut::App(service.submit_app(&name, &text)),
                    Err(error) => PendingOut::Error(error),
                },
                Ok(Some(Request::Environment { name, members })) => {
                    let refs: Vec<&str> = members.iter().map(String::as_str).collect();
                    match service.submit_environment_by_names(&name, &refs) {
                        Ok(job) => PendingOut::Env(job),
                        Err(error) => PendingOut::Error(error),
                    }
                }
                Ok(Some(Request::Stats)) => PendingOut::Stats,
            };
            // A send only fails after the writer bailed on an I/O error (client
            // gone); keep draining stdin so the submit side stays consistent.
            let _ = tx.send((job_index, pending));
            job_index += 1;
            // The writer tracks responses, so finished jobs can leave the
            // service's submission log — otherwise a long-lived serve would pin
            // every frozen result in the log, defeating the cache's LRU bound.
            service.forget_finished();
        }
        drop(tx); // EOF: the writer drains the remaining jobs, then exits
        let result = writer.join().expect("writer thread panicked");
        service.forget_finished();
        result
    })
}

/// The CI gate: pipe the running examples (plus an environment and a stats
/// probe) through the protocol twice and check (1) every served report equals
/// the direct-API serialization modulo measured timings, (2) the second pass is
/// all cache hits with *byte-identical* full reports, (3) everything parses.
fn run_smoke(service: &Service) {
    use soteria::JsonValue;

    let apps = soteria_corpus::running_apps();
    let mut requests = String::new();
    for (id, _) in &apps {
        requests.push_str(&format!("app {id} corpus:{id}\n"));
    }
    requests.push_str("env RunningGroup SmokeAlarm,WaterLeakDetector,ThermostatEnergyControl\n");
    requests.push_str("stats\n");

    let pass = |label: &str| -> Vec<JsonValue> {
        let mut out = Vec::new();
        serve(requests.as_bytes(), &mut out, service).expect("serve pass");
        String::from_utf8(out)
            .expect("utf-8 responses")
            .lines()
            .map(|line| {
                JsonValue::parse(line)
                    .unwrap_or_else(|e| panic!("{label} response does not parse: {e}\n{line}"))
            })
            .collect()
    };
    let cold = pass("cold");
    let warm = pass("warm");
    assert_eq!(cold.len(), apps.len() + 2, "one response per request");
    assert_eq!(cold.len(), warm.len());

    let strip_timings = |report: &JsonValue| {
        report
            .clone()
            .without("extraction_ms")
            .without("verification_ms")
            .without("union_ms")
            .render()
    };

    // (1) Served app reports equal the direct API (measured timings excluded).
    let mut direct_analyses: Vec<soteria::AppAnalysis> = Vec::with_capacity(apps.len());
    for ((id, source), response) in apps.iter().zip(&cold) {
        assert_eq!(response.get("status").and_then(|v| v.as_str()), Some("ok"), "{id}");
        let direct = service.soteria().analyze_app(id, source).expect("running example parses");
        let direct_json = soteria::app_analysis_json(&direct);
        direct_analyses.push(direct);
        let served = response.get("report").unwrap_or_else(|| panic!("{id}: no report"));
        assert_eq!(
            strip_timings(served),
            strip_timings(&direct_json),
            "{id}: served JSON diverges from the direct API"
        );
    }
    // ... and the served environment equals the direct union analysis (over the
    // member analyses already computed above).
    let env_response = &cold[apps.len()];
    assert_eq!(env_response.get("kind").and_then(|v| v.as_str()), Some("env"));
    let direct_env =
        service.soteria().analyze_environment("RunningGroup", &direct_analyses[..3]);
    assert_eq!(
        strip_timings(env_response.get("report").expect("env report")),
        strip_timings(&soteria::environment_json(&direct_env)),
        "environment JSON diverges from the direct API"
    );

    // (2) The warm pass is served from the cache, byte-identical.
    for (cold_line, warm_line) in cold.iter().zip(&warm) {
        if warm_line.get("kind").and_then(|v| v.as_str()) == Some("stats") {
            continue;
        }
        assert_eq!(
            warm_line.get("cache").and_then(|v| v.as_str()),
            Some("hit"),
            "resubmission was not a cache hit: {}",
            warm_line.render()
        );
        assert_eq!(
            warm_line.get("report").map(JsonValue::render),
            cold_line.get("report").map(JsonValue::render),
            "cached report is not byte-identical"
        );
    }

    let stats = service.stats();
    println!(
        "soteria-serve smoke: OK ({} apps + 1 env served twice; warm pass all hits; \
         cache: {} hits / {} misses; {} pool tasks on {} workers)",
        apps.len(),
        stats.app_cache.hits + stats.env_cache.hits,
        stats.app_cache.misses + stats.env_cache.misses,
        stats.tasks_executed,
        stats.workers
    );
}

fn main() {
    let mut workers = 0usize;
    let mut cache_capacity = 1024usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number");
            }
            "--cache" => {
                cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cache needs a number");
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown flag '{other}' (expected --workers N, --cache N, --smoke)");
                std::process::exit(2);
            }
        }
    }

    let service = Service::new(
        soteria::Soteria::new(),
        ServiceOptions { workers, cache_capacity },
    );
    if smoke {
        run_smoke(&service);
        return;
    }
    let stdin = std::io::stdin();
    // `Stdout` locks internally per write and is `Send`, which the writer
    // thread needs; the serve loop flushes after every response line anyway.
    let mut out = std::io::stdout();
    serve(stdin.lock(), &mut out, &service).expect("serve loop");
    let _ = out.flush();
    let stats = service.stats();
    eprintln!(
        "soteria-serve: {} jobs ({} cache hits, {} coalesced) on {} workers",
        stats.submitted,
        stats.app_cache.hits + stats.env_cache.hits,
        stats.coalesced,
        stats.workers
    );
}
