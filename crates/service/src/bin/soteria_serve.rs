//! `soteria-serve`: the long-lived analysis service on stdin/stdout.
//!
//! Reads newline-delimited job requests (see [`soteria_service::protocol`] for
//! the grammar: inline source, a file path, or a built-in corpus id), submits
//! each to a [`Service`] as soon as the line arrives — so parsing/model-building
//! of the next job overlaps verification of the previous one — and emits one
//! JSON response line per request, in submission order (each line is flushed as
//! soon as every earlier job has finished).
//!
//! ```text
//! printf 'app demo corpus:SmokeAlarm\nstats\n' | soteria-serve
//! ```
//!
//! Flags:
//!
//! * `--workers N` — pool worker threads (default: the `SOTERIA_THREADS` /
//!   available-parallelism policy);
//! * `--cache N` — result-cache bound (default 1024 entries per kind);
//! * `--max-pending N` — bound on queued-but-unstarted jobs (default: the
//!   `SOTERIA_MAX_PENDING` environment variable, else unbounded);
//! * `--admission block|reject` — what a submission at the bound does: wait
//!   for a slot, or answer immediately with a `queue full` error line
//!   (default: `SOTERIA_ADMISSION`, else block);
//! * `--deadline-ms N` — per-job pending *and* running deadline: jobs stuck
//!   longer are auto-cancelled as timed out (default: `SOTERIA_DEADLINE_MS`,
//!   else none; `0` disables);
//! * `--quarantine N` — panic strikes before a source is rejected at admission
//!   (default 2; `0` disables);
//! * `--fault-marker S` / `--stall-marker S` — chaos injection for testing:
//!   app sources containing the marker panic at ingest / stall abortably;
//! * `--store-dir PATH` — persistent result store: frozen results are written
//!   through to `PATH` (crash-safe temp+rename with checksum framing) and a
//!   restarted service restores them from disk instead of recomputing
//!   (default: `SOTERIA_STORE_DIR`, else memory-only);
//! * `--trace-out PATH` — enable tracing (as if `SOTERIA_TRACE=1`) and, when
//!   the serve loop exits, write every retained span to `PATH` as Chrome
//!   `trace_event` JSON (load it at `chrome://tracing` or Perfetto) plus a
//!   human slow-jobs top-N summary on stderr;
//! * `--smoke` — run the self-check gate instead of serving: pipe the running
//!   examples through the full protocol, diff every served report against the
//!   direct `Soteria` API, verify a second pass is served byte-identically
//!   from the cache, and exercise `cancel`, a rejecting bounded queue, injected
//!   panics with quarantine, `faults`, and `drain`. Exits non-zero on any
//!   mismatch (the CI configuration).
//!
//! Closing stdin drains the service: admission closes and every outstanding
//! ticket is settled before the process exits.

use soteria_service::protocol::{self, AppSource, Request};
use soteria_service::{
    AdmissionPolicy, AppJob, CacheDisposition, EnvJob, EnvResult, Service, ServiceOptions,
};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::mpsc;

enum PendingOut {
    App(AppJob),
    Env(EnvJob),
    Update { app: AppJob, envs: Vec<EnvJob> },
    Cancel { name: String, cancelled: bool },
    Stats,
    Metrics,
    Faults,
    Sync { settled: usize },
    Drain(soteria_service::DrainReport),
    Error(String),
}

/// The serve loop's name → live-job index, backing `cancel <name>` requests.
/// App and environment namespaces are separate (matching the service, where an
/// app and a group may legally share a name), so `cancel <name>` cancels every
/// in-flight job under that name, of either kind. Finished jobs are pruned on
/// every request line, so the maps never outgrow the in-flight set (same
/// discipline as `Service::forget_finished`).
#[derive(Default)]
struct LiveJobs {
    apps: HashMap<String, AppJob>,
    envs: HashMap<String, EnvJob>,
}

impl LiveJobs {
    fn track_app(&mut self, job: &AppJob) {
        self.apps.insert(job.name().to_string(), job.clone());
    }

    fn track_env(&mut self, job: &EnvJob) {
        self.envs.insert(job.name().to_string(), job.clone());
    }

    fn cancel(&mut self, name: &str) -> bool {
        let app = self.apps.remove(name).map(|job| job.cancel()).unwrap_or(false);
        let env = self.envs.remove(name).map(|job| job.cancel()).unwrap_or(false);
        app || env
    }

    fn prune_finished(&mut self) {
        self.apps.retain(|_, job| !job.is_ready());
        self.envs.retain(|_, job| !job.is_ready());
    }

    /// Blocks until every tracked in-flight job has settled (the `sync` verb),
    /// returning how many were waited on. Serializes pipelined request streams:
    /// the next line is not read until everything before the `sync` finished.
    fn sync(&self) -> usize {
        let mut settled = 0;
        for job in self.apps.values() {
            let _ = job.wait();
            settled += 1;
        }
        for job in self.envs.values() {
            let _ = job.wait();
            settled += 1;
        }
        settled
    }
}

fn resolve_source(source: AppSource) -> Result<String, String> {
    match source {
        AppSource::Inline(text) => Ok(text),
        AppSource::Path(path) => std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read '{path}': {e}")),
        AppSource::Corpus(id) => soteria_corpus::find_app(&id)
            .map(|(_, source)| source)
            .ok_or_else(|| format!("unknown corpus app '{id}'")),
    }
}

/// The serve loop: the reader thread submits each request the moment its line
/// arrives (so ingestion of job *N + 1* overlaps verification of job *N*),
/// while a dedicated writer thread blocks on each job in submission order and
/// writes + flushes its response line the moment it — and everything before
/// it — has finished. An interactive client therefore gets each response
/// without having to send another line or close stdin first.
/// `drain_on_eof` treats stdin closing as a shutdown request: admission is
/// closed and every outstanding ticket settled before the writer is joined
/// (the `main` serve path). The smoke gates pass `false` — they run several
/// passes over one service, which a drain would close for good.
fn serve(
    input: impl BufRead,
    out: &mut (impl Write + Send),
    service: &Service,
    drain_on_eof: bool,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<(usize, PendingOut)>();
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> std::io::Result<()> {
            for (index, pending) in rx {
                let response = match pending {
                    PendingOut::App(job) => protocol::app_response(
                        index,
                        job.name(),
                        job.disposition(),
                        &job.wait(),
                    ),
                    PendingOut::Env(job) => protocol::env_response(
                        index,
                        job.name(),
                        job.disposition(),
                        &job.wait(),
                    ),
                    PendingOut::Update { app, envs } => {
                        let environments: Vec<(String, CacheDisposition, EnvResult)> = envs
                            .iter()
                            .map(|env| (env.name().to_string(), env.disposition(), env.wait()))
                            .collect();
                        protocol::update_response(
                            index,
                            app.name(),
                            app.disposition(),
                            &app.wait(),
                            &environments,
                        )
                    }
                    PendingOut::Cancel { name, cancelled } => {
                        protocol::cancel_response(index, &name, cancelled)
                    }
                    PendingOut::Stats => protocol::stats_response(index, &service.stats()),
                    PendingOut::Metrics => {
                        protocol::metrics_response(index, &soteria_obs::metrics_snapshot())
                    }
                    PendingOut::Faults => protocol::faults_response(index, &service.faults()),
                    PendingOut::Sync { settled } => protocol::sync_response(index, settled),
                    PendingOut::Drain(report) => protocol::drain_response(index, &report),
                    PendingOut::Error(error) => protocol::error_response(index, &error),
                };
                writeln!(out, "{}", response.render())?;
                out.flush()?;
            }
            Ok(())
        });
        let mut job_index = 0usize;
        // Live jobs by name, so `cancel <name>` can reach the handle. Note the
        // submissions below go through the service's admission control: with
        // `--admission reject` a full queue turns into an error response line.
        let mut live = LiveJobs::default();
        for line in input.lines() {
            let pending = match protocol::parse_request(&line?) {
                Ok(None) => continue,
                Err(error) => PendingOut::Error(error),
                Ok(Some(Request::App { name, source })) => match resolve_source(source)
                    .and_then(|text| service.submit_app(&name, &text).map_err(|e| e.to_string()))
                {
                    Ok(job) => {
                        live.track_app(&job);
                        PendingOut::App(job)
                    }
                    Err(error) => PendingOut::Error(error),
                },
                Ok(Some(Request::Environment { name, members })) => {
                    let refs: Vec<&str> = members.iter().map(String::as_str).collect();
                    match service.submit_environment_by_names(&name, &refs) {
                        Ok(job) => {
                            live.track_env(&job);
                            PendingOut::Env(job)
                        }
                        Err(error) => PendingOut::Error(error.to_string()),
                    }
                }
                Ok(Some(Request::Update { name, source })) => match resolve_source(source)
                    .and_then(|text| service.resubmit(&name, &text).map_err(|e| e.to_string()))
                {
                    Ok((app, envs)) => {
                        live.track_app(&app);
                        for env in &envs {
                            live.track_env(env);
                        }
                        PendingOut::Update { app, envs }
                    }
                    Err(error) => PendingOut::Error(error),
                },
                Ok(Some(Request::Cancel { name })) => {
                    let cancelled = live.cancel(&name);
                    PendingOut::Cancel { name, cancelled }
                }
                Ok(Some(Request::Stats)) => PendingOut::Stats,
                Ok(Some(Request::Metrics)) => PendingOut::Metrics,
                Ok(Some(Request::Faults)) => PendingOut::Faults,
                Ok(Some(Request::Sync)) => PendingOut::Sync { settled: live.sync() },
                // Synchronous in the reader: no further request is even parsed
                // until the drain settled everything (requests still in the
                // pipe then fail with a "draining" error line — by design).
                Ok(Some(Request::Drain { deadline_ms })) => PendingOut::Drain(
                    service.drain(deadline_ms.map(std::time::Duration::from_millis)),
                ),
            };
            live.prune_finished();
            // A send only fails after the writer bailed on an I/O error (client
            // gone); keep draining stdin so the submit side stays consistent.
            let _ = tx.send((job_index, pending));
            job_index += 1;
            // The writer tracks responses, so finished jobs can leave the
            // service's submission log — otherwise a long-lived serve would pin
            // every frozen result in the log, defeating the cache's LRU bound.
            service.forget_finished();
        }
        drop(tx); // EOF: the writer drains the remaining jobs, then exits
        if drain_on_eof {
            // Stdin closed = shutdown: settle every outstanding ticket (jobs
            // past their deadlines are already being timed out by the sweeper)
            // so the writer finishes every response line and exits.
            let _ = service.drain(None);
        }
        let result = writer.join().expect("writer thread panicked");
        service.forget_finished();
        result
    })
}

/// The CI gate: pipe the running examples (plus an environment and a stats
/// probe) through the protocol twice and check (1) every served report equals
/// the direct-API serialization modulo measured timings, (2) the second pass is
/// all cache hits with *byte-identical* full reports, (3) everything parses.
fn run_smoke(service: &Service) {
    use soteria::JsonValue;

    let apps = soteria_corpus::running_apps();
    let mut requests = String::new();
    for (id, _) in &apps {
        requests.push_str(&format!("app {id} corpus:{id}\n"));
    }
    requests.push_str("env RunningGroup SmokeAlarm,WaterLeakDetector,ThermostatEnergyControl\n");
    requests.push_str("stats\n");

    let pass = |label: &str| -> Vec<JsonValue> {
        let mut out = Vec::new();
        serve(requests.as_bytes(), &mut out, service, false).expect("serve pass");
        String::from_utf8(out)
            .expect("utf-8 responses")
            .lines()
            .map(|line| {
                JsonValue::parse(line)
                    .unwrap_or_else(|e| panic!("{label} response does not parse: {e}\n{line}"))
            })
            .collect()
    };
    let cold = pass("cold");
    let warm = pass("warm");
    assert_eq!(cold.len(), apps.len() + 2, "one response per request");
    assert_eq!(cold.len(), warm.len());

    let strip_timings = |report: &JsonValue| {
        report
            .clone()
            .without("extraction_ms")
            .without("verification_ms")
            .without("union_ms")
            .render()
    };

    // (1) Served app reports equal the direct API (measured timings excluded).
    let mut direct_analyses: Vec<soteria::AppAnalysis> = Vec::with_capacity(apps.len());
    for ((id, source), response) in apps.iter().zip(&cold) {
        assert_eq!(response.get("status").and_then(|v| v.as_str()), Some("ok"), "{id}");
        let direct = service.soteria().analyze_app(id, source).expect("running example parses");
        let direct_json = soteria::app_analysis_json(&direct);
        direct_analyses.push(direct);
        let served = response.get("report").unwrap_or_else(|| panic!("{id}: no report"));
        assert_eq!(
            strip_timings(served),
            strip_timings(&direct_json),
            "{id}: served JSON diverges from the direct API"
        );
    }
    // ... and the served environment equals the direct union analysis (over the
    // member analyses already computed above).
    let env_response = &cold[apps.len()];
    assert_eq!(env_response.get("kind").and_then(|v| v.as_str()), Some("env"));
    let direct_env =
        service.soteria().analyze_environment("RunningGroup", &direct_analyses[..3]);
    assert_eq!(
        strip_timings(env_response.get("report").expect("env report")),
        strip_timings(&soteria::environment_json(&direct_env)),
        "environment JSON diverges from the direct API"
    );

    // (2) The warm pass is served from the cache, byte-identical.
    for (cold_line, warm_line) in cold.iter().zip(&warm) {
        if warm_line.get("kind").and_then(|v| v.as_str()) == Some("stats") {
            continue;
        }
        assert_eq!(
            warm_line.get("cache").and_then(|v| v.as_str()),
            Some("hit"),
            "resubmission was not a cache hit: {}",
            warm_line.render()
        );
        assert_eq!(
            warm_line.get("report").map(JsonValue::render),
            cold_line.get("report").map(JsonValue::render),
            "cached report is not byte-identical"
        );
    }

    // (3) The `update` verb: resubmit one member with a semantically identical
    // source (an appended newline changes the content key, not the model) and
    // check the resident group re-verifies through the incremental path with a
    // report identical to the cold full analysis, modulo measured timings.
    let wld = apps
        .iter()
        .find(|(id, _)| *id == "WaterLeakDetector")
        .map(|(_, source)| *source)
        .expect("running example present");
    let update_request = format!(
        "update WaterLeakDetector inline:{}\n",
        protocol::escape(&format!("{wld}\n"))
    );
    let mut update_out = Vec::new();
    serve(update_request.as_bytes(), &mut update_out, service, false).expect("serve pass");
    let update_line = String::from_utf8(update_out).expect("utf-8 responses");
    let update = JsonValue::parse(update_line.trim()).expect("update response parses");
    assert_eq!(update.get("kind").and_then(|v| v.as_str()), Some("update"));
    assert_eq!(update.get("status").and_then(|v| v.as_str()), Some("ok"));
    let groups =
        update.get("environments").and_then(|v| v.as_array()).expect("environments array");
    assert_eq!(groups.len(), 1, "one resident group contains the updated member");
    assert_eq!(groups[0].get("name").and_then(|v| v.as_str()), Some("RunningGroup"));
    assert_eq!(groups[0].get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(
        strip_timings(groups[0].get("report").expect("updated env report")),
        strip_timings(env_response.get("report").expect("env report")),
        "incremental re-verification diverges from the cold analysis"
    );
    assert!(
        service.stats().env_incremental >= 1,
        "update did not route through the incremental path"
    );

    let stats = service.stats();
    println!(
        "soteria-serve smoke: OK ({} apps + 1 env served twice + 1 incremental update; \
         warm pass all hits; cache: {} hits / {} misses; {} pool tasks on {} workers)",
        apps.len(),
        stats.app_cache.hits + stats.env_cache.hits,
        stats.app_cache.misses + stats.env_cache.misses,
        stats.tasks_executed,
        stats.workers
    );
}

/// The backpressure + cancellation smoke leg: a 1-worker service with a 2-deep
/// rejecting queue, fed a heavy app first so the worker is pinned while the
/// remaining request lines arrive (microseconds apart). Deterministically:
/// the parked environment is cancellable (its member is still ingesting), and
/// with the worker pinned at least one later submission meets a full queue.
fn run_cancel_and_backpressure_smoke() {
    use soteria::JsonValue;

    let service = Service::new(
        soteria::Soteria::new(),
        ServiceOptions {
            workers: 1,
            max_pending: 2,
            admission: AdmissionPolicy::Reject,
            // Exact-count assertions below; keep the leg memory-only even when
            // the environment configures a store for the serving process.
            store_dir: None,
            ..ServiceOptions::default()
        },
    );
    // ThermostatEnergyControl dominates the cold running-example sweep — the
    // single worker chews on it for long enough that every line below is
    // submitted while it runs.
    let requests = "app heavy corpus:ThermostatEnergyControl\n\
                    env G heavy\n\
                    cancel G\n\
                    cancel ghost\n\
                    app a1 corpus:SmokeAlarm\n\
                    app a2 corpus:SmokeAlarm\n\
                    app a3 corpus:SmokeAlarm\n\
                    app a4 corpus:SmokeAlarm\n\
                    stats\n";
    let mut out = Vec::new();
    serve(requests.as_bytes(), &mut out, &service, false).expect("serve pass");
    let lines: Vec<JsonValue> = String::from_utf8(out)
        .expect("utf-8 responses")
        .lines()
        .map(|line| JsonValue::parse(line).expect("response parses"))
        .collect();
    assert_eq!(lines.len(), 9, "one response per request");

    let field = |v: &JsonValue, key: &str| -> String {
        v.get(key).and_then(|f| f.as_str()).unwrap_or_default().to_string()
    };
    // The parked environment was cancelled...
    assert_eq!(field(&lines[2], "kind"), "cancel");
    assert_eq!(lines[2].get("cancelled"), Some(&JsonValue::Bool(true)), "env not cancelled");
    // ... so its own response line reports status "cancelled"...
    assert_eq!(field(&lines[1], "kind"), "env");
    assert_eq!(field(&lines[1], "status"), "cancelled");
    // ... while cancelling an unknown name reports false without erroring.
    assert_eq!(lines[3].get("cancelled"), Some(&JsonValue::Bool(false)));
    // The heavy app itself completed normally.
    assert_eq!(field(&lines[0], "status"), "ok");
    // With the worker pinned and the queue 2 deep, the a1..a4 burst cannot all
    // be admitted: at least one line is a queue-full error, and at least one
    // was admitted and completed.
    let queue_full = lines
        .iter()
        .filter(|l| field(l, "status") == "error" && field(l, "error").starts_with("queue full"))
        .count();
    let completed = lines[4..8].iter().filter(|l| field(l, "status") == "ok").count();
    assert!(queue_full >= 1, "no submission met a full queue");
    assert!(completed >= 1, "no burst submission completed");
    let stats = service.stats();
    assert!(stats.rejected >= 1 && stats.cancelled >= 1);
    assert_eq!(stats.pending, 0, "pending jobs leaked after the drain");
    println!(
        "soteria-serve cancel/backpressure smoke: OK (1 env cancelled; {} of 4 burst \
         submissions rejected by the 2-deep queue; pending back to 0)",
        queue_full
    );
}

/// The crash-only smoke leg: a service with deterministic fault injection, fed
/// a panicking source repeatedly with `sync` serialization points so each
/// resubmission re-runs (and strikes) instead of coalescing. Checks the panic
/// surfaces as an `error` response (service alive), the second strike
/// quarantines the content, `faults` dumps both strikes, `drain` settles
/// everything exactly once, and post-drain submissions are rejected.
fn run_fault_and_drain_smoke() {
    use soteria::JsonValue;

    let service = Service::new(
        soteria::Soteria::new(),
        ServiceOptions {
            workers: 1,
            fault_marker: Some("chaos-panic".to_string()),
            // The `"faults":2` / `"quarantined":1` assertions are exact; a
            // store would add its own fault records under injection.
            store_dir: None,
            ..ServiceOptions::default()
        },
    );
    let requests = "app ok corpus:SmokeAlarm\n\
                    app bad inline:definition(name: \"chaos-panic\")\n\
                    sync\n\
                    app bad inline:definition(name: \"chaos-panic\")\n\
                    sync\n\
                    app bad inline:definition(name: \"chaos-panic\")\n\
                    faults\n\
                    stats\n\
                    drain 5000\n\
                    app late corpus:SmokeAlarm\n";
    let mut out = Vec::new();
    serve(requests.as_bytes(), &mut out, &service, false).expect("serve pass");
    let lines: Vec<JsonValue> = String::from_utf8(out)
        .expect("utf-8 responses")
        .lines()
        .map(|line| JsonValue::parse(line).expect("response parses"))
        .collect();
    assert_eq!(lines.len(), 10, "one response per request");
    let field = |v: &JsonValue, key: &str| -> String {
        v.get(key).and_then(|f| f.as_str()).unwrap_or_default().to_string()
    };

    // The healthy app is unaffected by its panicking neighbour.
    assert_eq!(field(&lines[0], "status"), "ok");
    // Strikes one and two surface as error responses (the service survived)...
    assert!(field(&lines[1], "error").contains("injected fault"), "{}", lines[1].render());
    assert!(field(&lines[3], "error").contains("injected fault"));
    // ... and the third submission is rejected at admission, quarantined.
    assert!(
        field(&lines[5], "error").contains("quarantined"),
        "third strike not quarantined: {}",
        lines[5].render()
    );
    // The fault log retains both panics, with matching fingerprints.
    let faults = lines[6].get("faults").and_then(|f| f.as_array()).expect("fault array");
    assert_eq!(faults.len(), 2, "expected exactly two fault records");
    assert_eq!(field(&faults[0], "key"), field(&faults[1], "key"), "strike keys differ");
    assert!(faults.iter().all(|f| field(f, "kind") == "panic"));
    // Counters agree.
    let stats = lines[7].get("stats").expect("stats object");
    assert_eq!(stats.get("faults"), Some(&JsonValue::Number(2.0)));
    assert_eq!(stats.get("quarantined"), Some(&JsonValue::Number(1.0)));
    // The drain settles with nothing left over, and later submissions bounce.
    let drain = lines[8].get("drain").expect("drain object");
    assert_eq!(drain.get("timed_out"), Some(&JsonValue::Number(0.0)), "drain timed out jobs");
    assert!(field(&lines[9], "error").contains("draining"), "{}", lines[9].render());
    assert_eq!(service.stats().pending, 0, "pending jobs leaked after the drain");
    println!(
        "soteria-serve fault/drain smoke: OK (2 injected panics -> quarantine on strike 3; \
         fault log + stats agree; drain settled; post-drain submission rejected)"
    );
}

fn main() {
    let mut options = ServiceOptions::default();
    let mut smoke = false;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                options.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number");
            }
            "--cache" => {
                options.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cache needs a number");
            }
            "--max-pending" => {
                options.max_pending = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-pending needs a number");
            }
            "--admission" => {
                options.admission = match args.next().as_deref() {
                    Some("block") => AdmissionPolicy::Block,
                    Some("reject") => AdmissionPolicy::Reject,
                    other => panic!("--admission needs block|reject, got {other:?}"),
                };
            }
            "--deadline-ms" => {
                let deadline = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .expect("--deadline-ms needs a number");
                let deadline =
                    (deadline > 0).then(|| std::time::Duration::from_millis(deadline));
                options.pending_deadline = deadline;
                options.running_deadline = deadline;
            }
            "--quarantine" => {
                options.quarantine_threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--quarantine needs a number (0 disables)");
            }
            "--fault-marker" => {
                options.fault_marker =
                    Some(args.next().expect("--fault-marker needs a marker string"));
            }
            "--stall-marker" => {
                options.stall_marker =
                    Some(args.next().expect("--stall-marker needs a marker string"));
            }
            "--store-dir" => {
                options.store_dir =
                    Some(args.next().expect("--store-dir needs a directory path").into());
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a file path").into());
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "unknown flag '{other}' (expected --workers N, --cache N, \
                     --max-pending N, --admission block|reject, --deadline-ms N, \
                     --quarantine N, --fault-marker S, --stall-marker S, \
                     --store-dir PATH, --trace-out PATH, --smoke)"
                );
                std::process::exit(2);
            }
        }
    }

    if trace_out.is_some() {
        soteria_obs::set_enabled(true);
    }
    let service = Service::new(soteria::Soteria::new(), options);
    if smoke {
        run_smoke(&service);
        run_cancel_and_backpressure_smoke();
        run_fault_and_drain_smoke();
        return;
    }
    let stdin = std::io::stdin();
    // `Stdout` locks internally per write and is `Send`, which the writer
    // thread needs; the serve loop flushes after every response line anyway.
    let mut out = std::io::stdout();
    serve(stdin.lock(), &mut out, &service, true).expect("serve loop");
    let _ = out.flush();
    let stats = service.stats();
    eprintln!(
        "soteria-serve: {} jobs ({} cache hits, {} coalesced) on {} workers",
        stats.submitted,
        stats.app_cache.hits + stats.env_cache.hits,
        stats.coalesced,
        stats.workers
    );
    if let Some(path) = trace_out {
        // Settling a job happens *inside* its pool task, before the worker's
        // own `pool.run` span closes and flushes the thread's span tree — so
        // the drain above does not mean every span is flushed yet. Quiesce is
        // the real barrier: it waits out the workers' task epilogues.
        service.quiesce();
        let spans = soteria_obs::drain_spans();
        match std::fs::write(&path, soteria_obs::chrome_trace_json(&spans)) {
            Ok(()) => eprintln!(
                "soteria-serve: wrote {} spans to {} (chrome://tracing format)",
                spans.len(),
                path.display()
            ),
            Err(e) => eprintln!("soteria-serve: cannot write {}: {e}", path.display()),
        }
        eprint!("{}", soteria_obs::slow_jobs_summary(&spans, 5));
    }
}
